"""Ablations of Sorrento's design choices (DESIGN.md §4).

Each test flips one knob the paper motivates and checks the mechanism
actually earns its keep.
"""

import random

import pytest

from repro.core.membership import ProviderInfo
from repro.core.placement import choose_provider
from repro.experiments.common import cluster_b_like, sorrento_on
from repro.workloads.bulk import populate, run_bulk

GB = 1 << 30
MB = 1 << 20


def _utilization_spread(alpha: float, seed: int = 3, n: int = 400):
    """Drive the placement formula with mixed load/space and report the
    fraction of picks landing on the emptiest vs least-loaded node."""
    rng = random.Random(seed)
    cands = {
        "empty-but-busy": ProviderInfo("empty-but-busy", load=0.9,
                                       available=100 * GB),
        "full-but-idle": ProviderInfo("full-but-idle", load=0.01,
                                      available=2 * GB),
    }
    picks = {"empty-but-busy": 0, "full-but-idle": 0}
    for _ in range(n):
        picks[choose_provider(rng, cands, 1 * GB, alpha)] += 1
    return picks


def test_ablation_alpha_sweeps_favoritism(benchmark):
    """alpha interpolates between space-driven and load-driven placement."""

    def run_sweep():
        return {a: _utilization_spread(a) for a in (0.0, 0.3, 0.5, 0.8, 1.0)}

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    # alpha=0: all about space -> the empty node wins despite its load.
    assert result[0.0]["empty-but-busy"] > 350
    # alpha=1: all about load -> the idle node wins despite being full.
    assert result[1.0]["full-but-idle"] > 350
    # Middle alphas mix.
    mid = result[0.5]
    assert mid["empty-but-busy"] > 40 and mid["full-but-idle"] > 40
    # Monotonic: higher alpha -> more weight on the idle node.
    idle_share = [result[a]["full-but-idle"] for a in (0.0, 0.3, 0.5, 0.8, 1.0)]
    assert idle_share == sorted(idle_share)


def test_ablation_home_boost_colocates_small_segments(once):
    """The 3N home-host boost makes small-file access one-hop."""

    def measure(boost: bool):
        dep = sorrento_on(cluster_b_like(n_storage=8), n_providers=8,
                          degree=1, seed=2, home_boost_enabled=boost)
        client = dep.clients_on_compute(1)[0]

        def session():
            colocated = 0
            for i in range(30):
                fh = yield from client.open(f"/hb{i}", "w", create=True)
                yield from client.write(fh, 0, 4096)
                yield from client.close(fh)
                home = client._home_of(fh.fileid)
                owner = fh.index_owner
                colocated += (home == owner)
            return colocated

        return dep.run(session())

    results = {}

    def runner():
        results["on"] = measure(True)
        results["off"] = measure(False)

    once(lambda: runner())
    # With the boost, the index segment usually lives on its home host.
    assert results["on"] >= 20
    assert results["on"] > results["off"] + 5


def test_ablation_lazy_vs_eager_vs_replication_off(once):
    """Write-path cost: r=1 > lazy r=2 > eager r=2 (throughput order)."""

    def measure(degree, eager):
        dep = sorrento_on(cluster_b_like(n_storage=8), n_providers=8,
                          degree=degree, seed=4, eager_propagation=eager)
        paths = populate(dep, 8, 32 * MB, degree=degree)
        return run_bulk(dep, 2, write=True, paths=paths, file_size=32 * MB,
                        per_client_bytes=16 * MB)

    rates = {}

    def runner():
        rates["r1"] = measure(1, False)
        rates["lazy"] = measure(2, False)
        rates["eager"] = measure(2, True)

    once(lambda: runner())
    assert rates["r1"] > rates["lazy"] > rates["eager"]


def test_ablation_migration_trigger_conservatism(benchmark):
    """The ±3σ + top-10% trigger stays quiet on mild imbalance and fires
    on real skew — unlike a naive 'migrate whenever above average'."""
    from repro.core.migration import imbalance_trigger

    def sweep():
        mild = [0.30, 0.32, 0.28, 0.35, 0.31, 0.29, 0.33, 0.30, 0.27, 0.34]
        skewed = [0.10] * 9 + [0.80]
        naive_mild = sum(1 for v in mild if v > sum(mild) / len(mild))
        paper_mild = sum(1 for v in mild if imbalance_trigger(v, mild))
        paper_skew = sum(1 for v in skewed if imbalance_trigger(v, skewed))
        return naive_mild, paper_mild, paper_skew

    naive_mild, paper_mild, paper_skew = benchmark.pedantic(
        sweep, rounds=1, iterations=1)
    assert naive_mild >= 4          # naive rule would thrash half the nodes
    assert paper_mild == 0          # paper's rule: no migration storm
    assert paper_skew == 1          # but the true outlier is caught


def test_ablation_segment_sizing(benchmark):
    """Exponential segment sizing: small files stay one-segment, huge
    files cap out at 512 MB segments (bounded metadata)."""
    from repro.core.layout import linear_segment_max, make_layout

    def build():
        import itertools
        ids = itertools.count(1)
        small = make_layout("linear", lambda: next(ids))
        small.grow_to(100 * 1024, lambda: next(ids))
        huge = make_layout("linear", lambda: next(ids))
        huge.grow_to(8 * GB, lambda: next(ids))
        return small, huge

    small, huge = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(small.segments) == 1
    # 8 GB with fixed 1 MB segments would need 8192 entries; the
    # exponential scheme needs ~40.
    assert len(huge.segments) < 50
    assert max(r.max_size for r in huge.segments) == linear_segment_max(10**6)


def test_ablation_data_organization_modes(once):
    """Figure 3's modes: striping buys wide-read bandwidth; linear keeps
    sequential simplicity; hybrid sits between and can grow."""

    def measure():
        # Gigabit links + single-disk providers: the disks are the
        # bottleneck, which is the regime striping is for.
        from repro.cluster import ClusterSpec, NodeSpec
        from repro.network.nic import GIGABIT_BPS

        nodes = [NodeSpec(name=f"g{i}", cpus=2, cpu_ghz=2.4,
                          disks=("barracuda-st336737",),
                          export_capacity=8 * GB, nic_rate=GIGABIT_BPS)
                 for i in range(8)]
        nodes.append(NodeSpec(name="gc0", cpus=2, cpu_ghz=2.4,
                              nic_rate=GIGABIT_BPS))
        dep = sorrento_on(ClusterSpec("gig", nodes), n_providers=8,
                          degree=1, seed=6)
        client = dep.clients_on_compute(1)[0]
        size = 16 * MB

        def build():
            fh = yield from client.open("/lin", "w", create=True)
            yield from client.write(fh, 0, size, sequential=True)
            yield from client.close(fh)
            fh = yield from client.open("/str", "w", create=True,
                                        organization="striped",
                                        stripe_count=8, fixed_size=size)
            yield from client.write(fh, 0, size, sequential=True)
            yield from client.close(fh)
            fh = yield from client.open("/hyb", "w", create=True,
                                        organization="hybrid",
                                        stripe_count=4)
            yield from client.write(fh, 0, size, sequential=True)
            yield from client.close(fh)

        dep.run(build())
        dep.sim.run(until=dep.sim.now + 5)
        times = {}
        for path in ("/lin", "/str", "/hyb"):
            def timed(path=path):
                fh = yield from client.open(path, "r")
                t0 = dep.sim.now
                yield from client.read(fh, 0, size, sequential=True)
                dt = dep.sim.now - t0
                yield from client.close(fh)
                return dt

            times[path] = dep.run(timed())
        return times

    times = once(lambda: measure())
    print(f"\n16 MB whole-file read: linear {times['/lin']:.2f}s, "
          f"striped {times['/str']:.2f}s, hybrid {times['/hyb']:.2f}s")
    # Striping fans a wide read over many providers' disks.
    assert times["/str"] < 0.75 * times["/lin"]
    # Hybrid gets at least part of that benefit.
    assert times["/hyb"] <= times["/lin"]


def test_ablation_refresh_period_staleness(once):
    """Shorter refresh cycles bound location-table staleness; the backup
    multicast scheme covers the gap either way."""

    def measure(cycle):
        dep = sorrento_on(cluster_b_like(n_storage=6), n_providers=6,
                          degree=1, seed=9, refresh_cycle=cycle)
        client = dep.clients_on_compute(1)[0]

        def scenario():
            fh = yield from client.open("/stale", "w", create=True)
            yield from client.write(fh, 0, 2 * MB)
            yield from client.close(fh)
            # Wipe every provider's location table (simulated mass state
            # loss) and see if the file is still reachable.
            for p in dep.providers.values():
                from repro.core.location import LocationTable
                p.loc = LocationTable()
            fh2 = yield from client.open("/stale", "r")
            data_ok = (yield from client.read(fh2, 0, 1024)) is not None or True
            return client.stats["probe_fallbacks"]

        return dep.run(scenario())

    fallbacks = once(lambda: measure(900.0))
    # The read above must have survived purely via the backup scheme.
    assert fallbacks >= 1
