"""Benchmark: regenerate Figure 11 (bulk read/write scaling)."""

from repro.experiments import fig11_bulk as fig11


def test_fig11_bulk_transfer_rates(once):
    counts = (1, 4, 8)
    results = once(fig11.run, client_counts=counts, scale=0.0625)
    print()
    print(fig11.report(results))

    read, write = results["read"], results["write"]
    # NFS flat-lines at a single-server ceiling.
    assert read["NFS"][8] < 1.5 * read["NFS"][4]
    assert read["NFS"][8] < 15
    # PVFS and Sorrento scale with clients.
    assert read["PVFS-8"][8] > 3 * read["PVFS-8"][1]
    assert read["Sorrento-(8,2)"][8] > 3 * read["Sorrento-(8,2)"][1]
    # Reads: Sorrento comparable with PVFS (within 2x).
    ratio = read["PVFS-8"][8] / read["Sorrento-(8,2)"][8]
    assert 0.5 < ratio < 2.0, f"read ratio {ratio:.2f}"
    # Writes: PVFS ~2x Sorrento (every Sorrento byte lands twice).
    wratio = write["PVFS-8"][8] / write["Sorrento-(8,2)"][8]
    assert 1.3 < wratio < 3.2, f"write ratio {wratio:.2f}"
    # Lazy propagation beats eager when the system is underloaded.
    assert write["Sorrento-(8,2)"][1] > write["Sorrento-(8,2),eager"][1]
