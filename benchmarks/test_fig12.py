"""Benchmark: regenerate Figure 12 (BTIO + PSM application replay)."""

from repro.experiments import fig12_apps as fig12


def test_fig12_btio(once):
    res = once(fig12.run_btio, scale=0.01)
    print()
    for name, s in res.items():
        print(f"BTIO {name}: avg {s['avg']:.1f}s "
              f"rd {s['read_rate']:.1f} MB/s wr {s['write_rate']:.1f} MB/s")
    assert all(s["errors"] == 0 for s in res.values())
    nfs, pvfs, sor = (res["NFS"]["avg"], res["PVFS-8"]["avg"],
                      res["Sorrento-(8,1)"]["avg"])
    # Paper: NFS ~10x slower; PVFS and Sorrento within ~15%.
    assert nfs > 3 * max(pvfs, sor)
    assert 0.5 < sor / pvfs < 2.0
    # Client processes finish together (balanced workload).  At bench
    # scale a single straggling phase weighs more, hence the loose bound
    # (the full-scale experiment is within ~10%).
    for s in res.values():
        assert s["max"] < 1.6 * s["min"]


def test_fig12_psm(once):
    res = once(fig12.run_psm, scale=0.01)
    print()
    for name, s in res.items():
        print(f"PSM {name}: avg {s['avg']:.1f}s rd {s['read_rate']:.1f} MB/s")
    assert all(s["errors"] == 0 for s in res.values())
    nfs, pvfs, sor = (res["NFS"]["avg"], res["PVFS-8"]["avg"],
                      res["Sorrento-(8,1)"]["avg"])
    assert nfs > 3 * max(pvfs, sor)
    # Paper: Sorrento slightly ahead of PVFS on PSM; accept comparable.
    assert 0.5 < sor / pvfs < 1.5
    # No writes in PSM.
    assert all(s["write_rate"] == 0 for s in res.values())
