"""Benchmark: regenerate Figure 10 (small-file session throughput)."""

from repro.experiments import fig10_small_throughput as fig10


def test_fig10_session_throughput(once):
    counts = (1, 2, 4, 8, 16)
    results = once(fig10.run, client_counts=counts, duration=15.0)
    print()
    print(fig10.report(results))
    assert fig10.checks(results) == []

    nfs = results["NFS"]
    pvfs = results["PVFS-8"]
    sor = results["Sorrento-(8,2)"]
    # NFS saturates in the several-hundreds-of-sessions band (paper ~700).
    assert 300 < max(nfs.values()) < 1500
    # PVFS saturates early and low (paper ~64/s).
    assert max(pvfs.values()) < 100
    # Sorrento's per-client scaling is near-linear through 16 clients.
    assert sor[16] > 6 * sor[1]
