"""Benchmark: regenerate the Figure 9 table (small-file response times)."""

from repro.experiments import fig09_small_response as fig09


def test_fig09_small_file_response(once):
    results = once(fig09.run, n_ops=25)
    print()
    print(fig09.report(results))

    nfs = results["NFS"]
    # NFS is the clear latency winner on every op.
    for op in fig09.OPS:
        assert nfs[op] < 6.0, f"NFS {op} too slow: {nfs[op]:.2f} ms"

    for n in (4, 8):
        sor = results[f"Sorrento-({n},1)"]
        pvfs = results[f"PVFS-{n}"]
        # Paper: Sorrento beats PVFS by 25-53% on create/read/write ...
        for op in ("create", "write", "read"):
            assert sor[op] < pvfs[op], (
                f"Sorrento-({n},1) {op} {sor[op]:.1f} should beat "
                f"PVFS-{n} {pvfs[op]:.1f}"
            )
        # ... but is slower on unlink (eager replica removal).
        assert sor["unlink"] > pvfs["unlink"]

    # Replication degree leaves create/write/read response flat and only
    # penalizes unlink.
    for n in (4, 8):
        r1, r2 = results[f"Sorrento-({n},1)"], results[f"Sorrento-({n},2)"]
        for op in ("create", "write", "read"):
            assert abs(r2[op] - r1[op]) < 0.3 * r1[op]
        assert r2["unlink"] > 1.15 * r1["unlink"]
