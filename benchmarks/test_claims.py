"""Benchmarks for the paper's in-text performance claims (Section 4.1.2)
plus engineering microbenches of the substrate itself."""

from repro.cluster import Node, small_cluster
from repro.core.namespace import NamespaceServer
from repro.core.params import SorrentoParams
from repro.network import Fabric
from repro.sim import Simulator


def test_claim_namespace_server_ops_per_second(once):
    """Paper: "a single namespace server is able to handle 1300 namespace
    operations per second" (on Cluster A hardware)."""

    def measure():
        sim = Simulator()
        fabric = Fabric(sim)
        spec = small_cluster(1, n_compute=8, cpu_ghz=0.4)  # P-II class
        nodes = {s.name: Node(sim, fabric, s) for s in spec.nodes}
        NamespaceServer(nodes["s00"], "vol0", SorrentoParams())
        n_ops = 300

        def hammer(client):
            for i in range(n_ops):
                yield from client.endpoint.call(
                    "s00", "ns_mkdir", f"/{client.hostid}-{i}", size=64)

        from repro.experiments.common import run_until_done

        t0 = sim.now
        procs = [sim.process(hammer(nodes[f"c0{i}"])) for i in range(8)]
        run_until_done(sim, procs)
        return 8 * n_ops / (sim.now - t0)

    rate = once(lambda: measure())
    print(f"\nnamespace ops/second (8 concurrent clients): {rate:.0f}")
    # Same order of magnitude as the paper's 1300/s.
    assert 400 < rate < 5000


def test_claim_session_upper_bound(once):
    """Paper: the namespace bound "would provide a theoretical upper
    bound of 400-500 sessions/second" — i.e. ~3 namespace ops/session."""
    from repro.experiments.common import cluster_a_like, sorrento_on
    from repro.workloads.smallfile import session_loop

    def measure():
        dep = sorrento_on(cluster_a_like(), n_providers=8, degree=2, seed=0)
        clients = dep.clients_on_compute(16)
        try:
            dep.run(clients[0].mkdir("/tput"))
        except Exception:
            pass
        counter = [0]
        duration = 15.0
        procs = [dep.sim.process(session_loop(c, f"c{i}", counter, duration))
                 for i, c in enumerate(clients)]
        dep.sim.run(until=dep.sim.now + duration + 5)
        assert all(p.triggered for p in procs)
        ns_rate = dep.ns.ops_served / duration
        session_rate = counter[0] / duration
        return ns_rate, session_rate

    ns_rate, session_rate = once(lambda: measure())
    print(f"\nsessions/s: {session_rate:.0f}; ns ops/s consumed: {ns_rate:.0f}")
    # Roughly 2-5 namespace operations per session.
    assert 1.5 < ns_rate / max(1e-9, session_rate) < 6.0


def test_substrate_event_throughput(benchmark):
    """Engineering: the DES kernel sustains enough events/second that the
    biggest experiment (Figure 14) runs in minutes of wall time."""

    def spin():
        sim = Simulator()

        def ticker():
            for _ in range(20000):
                yield sim.timeout(0.001)

        for _ in range(5):
            sim.process(ticker())
        sim.run()
        return sim._nprocessed

    nproc = benchmark(spin)
    assert nproc >= 100_000


def test_substrate_rpc_throughput(benchmark):
    """Engineering: end-to-end RPC cost through fabric + endpoints."""
    from repro.network import Endpoint
    from repro.network.switch import Host

    def spin():
        sim = Simulator()
        fabric = Fabric(sim)
        hosts = [Host(sim, f"n{i}") for i in range(2)]
        for h in hosts:
            fabric.attach(h)
        a, b = (Endpoint(sim, fabric, h) for h in hosts)
        b.register("echo", lambda p, s: (p, 64))

        def client():
            for i in range(3000):
                yield from a.call("n1", "echo", i, size=64)

        p = sim.process(client())
        sim.run()
        assert p.ok
        return 3000

    benchmark(spin)
