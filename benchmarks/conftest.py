"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures at reduced
scale (single round — these are end-to-end simulations, not microbenches)
and asserts its shape properties.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time one full experiment run and return its result."""
    result = {}

    def wrapper():
        result["value"] = fn(*args, **kwargs)

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    return result["value"]


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
