"""Benchmark: regenerate Figure 15 (locality-driven migration, PSM)."""

from repro.experiments import fig15_locality as fig15


def test_fig15_locality_migration(once):
    res = once(fig15.run, scale=0.02, n_queries=80, query_gap=3.0)
    print()
    print(fig15.report(res))
    problems = fig15.checks(res)
    assert problems == [], problems

    series = res["series"]
    start = sum(io for _, io in series[:2]) / 2
    end = sum(io for _, io in series[-3:]) / 3
    # Paper: 62 -> 46 ms/query (~26% better); require a clear drop.
    assert end < 0.9 * start
    assert res["migrations"] >= 10  # most partition segments moved
