"""Benchmark: regenerate Figure 13 (failure + join under load)."""

from repro.experiments import fig13_failure as fig13


def test_fig13_failure_and_join(once):
    res = once(fig13.run, scale=0.08, duration=120.0)
    print()
    print(fig13.report(res))
    problems = fig13.checks(res)
    assert problems == [], problems

    t, rate = res["t"], res["rate"]
    base = sum(r for x, r in zip(t, rate) if x <= res["fail_at"]) / \
        len([x for x in t if x <= res["fail_at"]])
    # Sustained service: the post-recovery average sits within the
    # paper's ~85-95% band (loosely: above 60%).
    tail = [r for x, r in zip(t, rate) if x > res["join_at"] + 20]
    assert sum(tail) / len(tail) > 0.6 * base
    # Lost replicas get re-created.
    assert res["replications"] > 0
