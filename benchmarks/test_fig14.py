"""Benchmark: regenerate Figure 14 (crawler storage balance)."""

from repro.experiments import fig14_crawler as fig14


def test_fig14_crawler_balance(once):
    results = once(fig14.run, scale=0.012, duration=1500.0)
    print()
    print(fig14.report(results))
    problems = fig14.checks(results)
    assert problems == [], problems

    # The orderings are the paper's core claim; also sanity-check the
    # magnitudes: random clearly uneven, migration clearly tighter.
    assert results["Sorrento-random"]["ratio"] > 1.8
    assert results["Sorrento-migration"]["ratio"] < \
        0.8 * results["Sorrento-random"]["ratio"]
    assert results["Sorrento-migration"]["migrations"] > 0
