"""Figure 14: load-aware placement & migration under the crawler workload.

50 crawlers (co-located 5-per-node with the 10 providers) append pages to
per-domain files; domain sizes are heavy-tailed and crawler speeds differ
>10x.  Three Sorrento variants:

* Sorrento-random    — uniform random placement, no migration;
* Sorrento-space     — alpha = 0 (storage-usage placement), no migration;
* Sorrento-migration — Sorrento-space with online migration enabled.

Metric: lowest/highest storage-usage fraction at the end, and the
*unevenness ratio* highest/lowest.  Paper: 4.97 / 2.88 / 1.81.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.experiments.common import cluster_b_like, format_table, sorrento_on
from repro.workloads.crawler import crawler_proc, make_plans

GB = 1 << 30
MB = 1 << 20

PAPER = {"Sorrento-random": 4.97, "Sorrento-space": 2.88,
         "Sorrento-migration": 1.81}

VARIANTS = {
    # (file placement policy, migration on, segment affinity)
    "Sorrento-random": ("random", False, 1.0),
    "Sorrento-space": ("load", False, 0.85),
    "Sorrento-migration": ("load", True, 0.85),
}


def run(scale: float = 0.02, duration: float = 2400.0,
        seed: int = 0) -> Dict[str, dict]:
    """Returns {variant: {min_pct, max_pct, ratio, migrations}}.

    ``scale=1`` is the paper's 243 GB over 12 h; the default writes
    ~5 GB over 20 simulated minutes, with per-node capacity shrunk so
    utilization lands in the paper's 7-40% band.
    """
    total_bytes = int(243 * GB * scale)
    # Headroom matters: with per-node capacity too close to the written
    # volume, full nodes clamp placement and every policy looks balanced.
    # The paper's 243 GB sat in 6.55 TB (~27x headroom); 5x keeps the
    # utilization percentages in the paper's readable 7-40% band without
    # letting saturation drive the result.
    capacity = total_bytes // 2
    results = {}
    for variant, (placement, migrate, affinity) in VARIANTS.items():
        dep = sorrento_on(
            cluster_b_like(n_storage=10, n_clients=1, capacity=capacity),
            n_providers=10, degree=1, seed=seed,
            heartbeat_interval=2.0,
            default_alpha=0.0,
            segment_affinity=affinity,
            # Keep the paper's once-a-minute decision cadence: shortening
            # it proportionally to the compressed duration destabilizes
            # the control loop (each round then moves a visible fraction
            # of a node's data and the cluster oscillates).
            migration_interval=(60.0 if migrate else 1e12),
        )
        hosts = sorted(dep.providers)
        dep.run(dep.client_on(hosts[0]).mkdir("/crawl"))
        plans = make_plans(n_crawlers=50, total_bytes=total_bytes,
                           seed=seed + 29)
        est_pages = total_bytes // (12 * 1024)
        mean_rate = est_pages / (50 * duration * 0.55)
        rng_pool = random.Random(seed + 7)
        procs = []
        for i, plan in enumerate(plans):
            plan.pages_per_second *= mean_rate
            client = dep.client_on(hosts[i % len(hosts)])
            procs.append(dep.sim.process(crawler_proc(
                client, plan, duration,
                rng=random.Random(rng_pool.random()),
                create_params={"placement": placement, "alpha": 0.0},
            )))
        dep.sim.run(until=dep.sim.now + duration + 120)
        utils = dep.storage_utilizations()
        lo, hi = min(utils.values()), max(utils.values())
        results[variant] = {
            "min_pct": 100 * lo, "max_pct": 100 * hi,
            "ratio": hi / lo if lo > 0 else float("inf"),
            "migrations": sum(p.stats["migrations"]
                              for p in dep.providers.values()),
        }
    return results


def report(results: Dict[str, dict]) -> str:
    rows = [
        [name, r["min_pct"], r["max_pct"], r["ratio"], PAPER[name],
         r["migrations"]]
        for name, r in results.items()
    ]
    return format_table(
        "Figure 14 - crawler storage usage across 10 providers "
        "[measured | paper ratio]",
        ["variant", "lowest %", "highest %", "ratio", "paper",
         "migrations"],
        rows)


def checks(results: Dict[str, dict]) -> list:
    bad = []
    rnd = results["Sorrento-random"]["ratio"]
    spc = results["Sorrento-space"]["ratio"]
    mig = results["Sorrento-migration"]["ratio"]
    if not rnd > spc:
        bad.append(f"random ({rnd:.2f}) should be more uneven than "
                   f"space-based ({spc:.2f})")
    if not spc > mig:
        bad.append(f"space-based ({spc:.2f}) should be more uneven than "
                   f"migration ({mig:.2f})")
    if results["Sorrento-migration"]["migrations"] == 0:
        bad.append("migration variant performed no migrations")
    return bad


def main(scale: float = 0.02, duration: float = 2400.0) -> str:
    results = run(scale=scale, duration=duration)
    text = report(results)
    for problem in checks(results):
        text += f"\nSHAPE VIOLATION: {problem}"
    print(text)
    return text


if __name__ == "__main__":
    main()
