"""Regenerate every paper table/figure in one go.

Usage::

    python -m repro.experiments.run_all [--quick] [--out report.txt] \
        [--parallel [N]]

``--quick`` uses smaller scales/durations (minutes instead of tens of
minutes).  ``--parallel`` runs the sections in N worker processes — with
no N, one per available CPU core (capped at the section count) — each
section is an independent simulation with its own Simulator, so the
report is identical to a sequential run, just faster.
Each section prints the same rows/series the paper reports, followed by
any shape violations (none expected).
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

from repro.experiments import fig11_bulk as fig11


def sections(quick: bool = False):
    """The report's sections as picklable (title, module, kwargs) specs."""
    return [
        ("Figure 9", "fig09_small_response",
         {"n_ops": 25 if quick else 40}),
        ("Figure 10", "fig10_small_throughput",
         {"duration": 12.0 if quick else 25.0}),
        ("Figure 11", "fig11_bulk",
         {"scale": 0.0625 if quick else 0.125,
          "client_counts": (1, 4, 8) if quick else fig11.CLIENT_COUNTS}),
        ("Figure 12", "fig12_apps", {"scale": 0.01 if quick else 0.02}),
        ("Figure 13", "fig13_failure", {"scale": 0.08 if quick else 0.1}),
        ("Figure 13 (partition)", "fig13_failure",
         {"scale": 0.08 if quick else 0.1, "variant": "partition"}),
        ("Figure 13 (slow disk)", "fig13_failure",
         {"scale": 0.08 if quick else 0.1, "variant": "slowdisk"}),
        ("Figure 14", "fig14_crawler",
         {"scale": 0.012 if quick else 0.02,
          "duration": 1200.0 if quick else 2400.0}),
        ("Figure 15", "fig15_locality", {"scale": 0.02 if quick else 0.03}),
        ("Tiered", "tiered",
         {"duration": 60.0 if quick else 90.0}),
        ("Tiered (WAN partition)", "tiered",
         {"variant": "wanpart", "duration": 90.0}),
        ("Scale", "scale", {"quick": quick}),
    ]


def _run_section(spec) -> str:
    """Worker: run one section (top-level so it pickles for --parallel)."""
    title, modname, kwargs = spec
    t0 = time.time()
    print(f"[run_all] {title} ...", file=sys.stderr, flush=True)
    try:
        mod = importlib.import_module(f"repro.experiments.{modname}")
        text = mod.main(**kwargs)
    except Exception as exc:  # noqa: BLE001 - keep the report going
        text = f"{title}: FAILED - {type(exc).__name__}: {exc}"
    dt = time.time() - t0
    return f"{text}\n[{dt:.0f}s wall]"


def run_all(quick: bool = False, parallel: int = 0) -> str:
    specs = sections(quick)
    if parallel:
        import os
        from concurrent.futures import ProcessPoolExecutor

        # parallel < 0 means "pick for me": one worker per CPU core.
        # More workers than cores just thrash a small machine, and more
        # than one per section never helps.
        if parallel < 0:
            parallel = os.cpu_count() or 1
        workers = min(parallel, len(specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # map() preserves section order regardless of completion order.
            results = list(pool.map(_run_section, specs))
    else:
        results = [_run_section(s) for s in specs]
    return "\n\n" + ("\n\n" + "=" * 72 + "\n\n").join(results)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller scales (faster, same shapes)")
    parser.add_argument("--out", default=None,
                        help="also write the report to this file")
    parser.add_argument("--parallel", nargs="?", type=int, const=-1, default=0,
                        metavar="N",
                        help="run sections in N worker processes (bare "
                             "--parallel: one per CPU core, capped at the "
                             "section count)")
    args = parser.parse_args()
    report = run_all(quick=args.quick, parallel=args.parallel)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"\nreport written to {args.out}", file=sys.stderr)


if __name__ == "__main__":
    main()
