"""Regenerate every paper table/figure in one go.

Usage::

    python -m repro.experiments.run_all [--quick] [--out report.txt]

``--quick`` uses smaller scales/durations (minutes instead of tens of
minutes).  Each section prints the same rows/series the paper reports,
followed by any shape violations (none expected).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    fig09_small_response as fig09,
    fig10_small_throughput as fig10,
    fig11_bulk as fig11,
    fig12_apps as fig12,
    fig13_failure as fig13,
    fig14_crawler as fig14,
    fig15_locality as fig15,
)


def run_all(quick: bool = False) -> str:
    sections = []

    def section(title, fn):
        t0 = time.time()
        print(f"[run_all] {title} ...", file=sys.stderr, flush=True)
        try:
            text = fn()
        except Exception as exc:  # noqa: BLE001 - keep the report going
            text = f"{title}: FAILED - {type(exc).__name__}: {exc}"
        dt = time.time() - t0
        sections.append(f"{text}\n[{dt:.0f}s wall]")

    section("Figure 9", lambda: fig09.main(n_ops=25 if quick else 40))
    section("Figure 10", lambda: fig10.main(duration=12.0 if quick else 25.0))
    section("Figure 11", lambda: fig11.main(
        scale=0.0625 if quick else 0.125,
        client_counts=(1, 4, 8) if quick else fig11.CLIENT_COUNTS))
    section("Figure 12", lambda: fig12.main(scale=0.01 if quick else 0.02))
    section("Figure 13", lambda: fig13.main(scale=0.08 if quick else 0.1))
    section("Figure 14", lambda: fig14.main(
        scale=0.012 if quick else 0.02,
        duration=1200.0 if quick else 2400.0))
    section("Figure 15", lambda: fig15.main(
        scale=0.02 if quick else 0.03,
        ))
    return "\n\n" + ("\n\n" + "=" * 72 + "\n\n").join(sections)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller scales (faster, same shapes)")
    parser.add_argument("--out", default=None,
                        help="also write the report to this file")
    args = parser.parse_args()
    report = run_all(quick=args.quick)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"\nreport written to {args.out}", file=sys.stderr)


if __name__ == "__main__":
    main()
