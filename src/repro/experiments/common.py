"""Shared experiment plumbing: deployment builders and report tables."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines import NFSDeployment, PVFSDeployment
from repro.cluster import ClusterSpec, NodeSpec
from repro.core import SorrentoConfig, SorrentoDeployment
from repro.core.params import SorrentoParams
from repro.runtime import MetricsRegistry

GB = 1 << 30
MB = 1 << 20


def cluster_a_like(n_storage: int = 10, n_clients: int = 17,
                   capacity: int = 21 * GB) -> ClusterSpec:
    """A reduced Cluster A: P-II 400 MHz duals, one SCSI disk per storage
    node (2 Cheetah + the rest Barracuda, as in Figure 8)."""
    nodes = []
    for i in range(n_storage):
        disk = "cheetah-st373405" if i < 2 else "barracuda-st336737"
        nodes.append(NodeSpec(name=f"a{i:02d}", cpus=2, cpu_ghz=0.4,
                              disks=(disk,), export_capacity=capacity))
    nodes += [NodeSpec(name=f"ac{i:02d}", cpus=2, cpu_ghz=0.4)
              for i in range(n_clients)]
    return ClusterSpec("cluster-a-like", nodes)


def cluster_b_like(n_storage: int = 10, n_clients: int = 17,
                   capacity: int = 176 * GB) -> ClusterSpec:
    """A reduced Cluster B: P-III 1.4 GHz duals, RAID-0 of three
    Ultrastars per storage node."""
    nodes = [
        NodeSpec(name=f"b{i:02d}", cpus=2, cpu_ghz=1.4, memory=4 * GB,
                 disks=("ultrastar-dk32ej",) * 3, export_capacity=capacity)
        for i in range(n_storage)
    ]
    nodes += [NodeSpec(name=f"bc{i:02d}", cpus=2, cpu_ghz=1.4, memory=4 * GB)
              for i in range(n_clients)]
    return ClusterSpec("cluster-b-like", nodes)


def sorrento_on(spec: ClusterSpec, n_providers: int, degree: int = 1,
                seed: int = 0, warm: float = 8.0,
                **param_overrides) -> SorrentoDeployment:
    """Sorrento-(n, r) on a cluster spec."""
    params = SorrentoParams(default_degree=degree, **param_overrides)
    dep = SorrentoDeployment(
        spec, SorrentoConfig(params=params, seed=seed, n_providers=n_providers)
    )
    dep.warm_up(warm)
    return dep


def pvfs_on(spec: ClusterSpec, n_iods: int, seed: int = 0) -> PVFSDeployment:
    """PVFS-n on a cluster spec (mgr takes one extra storage node)."""
    dep = PVFSDeployment(spec, n_iods=n_iods, seed=seed)
    dep.warm_up()
    return dep


def nfs_on(spec: ClusterSpec, seed: int = 0) -> NFSDeployment:
    dep = NFSDeployment(spec, seed=seed)
    dep.warm_up()
    return dep


def run_until_done(sim, procs, max_time: float = 1e7) -> None:
    """Advance the sim until every process finishes.

    Unlike ``sim.run(until=horizon)`` this does not grind through hours
    of heartbeat events after the workload completes.  Completion is a
    callback countdown, so the driver adds O(1) work per event instead
    of scanning every process per step.
    """
    remaining = len(procs)

    def _one_done(_ev):
        nonlocal remaining
        remaining -= 1

    for p in procs:
        if p.triggered:
            remaining -= 1
        else:
            p.add_callback(_one_done)
    while remaining > 0:
        if not sim.pending_events:
            raise RuntimeError("deadlock: processes pending, no events")
        if sim.now > max_time:
            raise RuntimeError(f"exceeded {max_time} simulated seconds")
        sim.step()


# ------------------------------------------------------------ RPC metrics
def metrics_rows(registry: MetricsRegistry,
                 scope: Optional[str] = None) -> List[Sequence]:
    """Per-service counter rows from a deployment's registry, ready for
    :func:`format_table`: (scope, service, calls, ok, timeouts, retries,
    oneways, mean latency in ms).  Rows are sorted by (scope, service) so
    reports are stable regardless of registration order."""
    return [
        [sc, service, st.calls, st.ok, st.timeouts, st.retries, st.oneways,
         st.latency_mean * 1e3]
        for (sc, service), st in sorted(registry.items(scope),
                                        key=lambda kv: kv[0])
    ]


def metrics_report(registry: MetricsRegistry,
                   scope: Optional[str] = None,
                   title: str = "RPC metrics by service") -> str:
    """A text table of a run's per-service RPC counters."""
    return format_table(
        title,
        ["scope", "service", "calls", "ok", "tmo", "retry", "1way",
         "mean_ms"],
        metrics_rows(registry, scope),
    )


# ----------------------------------------------------------------- report
def format_table(title: str, headers: Sequence[str],
                 rows: List[Sequence], widths: Optional[List[int]] = None) -> str:
    """Fixed-width text table in the style of the paper's figures."""
    cols = len(headers)
    if widths is None:
        widths = []
        for c in range(cols):
            cells = [str(headers[c])] + [_fmt(r[c]) for r in rows]
            widths.append(max(len(x) for x in cells) + 2)
    out = [title]
    out.append("".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    out.append("-" * sum(widths))
    for row in rows:
        out.append("".join(_fmt(v).rjust(w) for v, w in zip(row, widths)))
    return "\n".join(out)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 100:
            return f"{v:.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.2f}"
    return str(v)


def series_to_text(title: str, xs: Sequence[float], ys: Dict[str, Sequence[float]],
                   xlabel: str, ylabel: str) -> str:
    """Render time/size series as aligned columns (one per system)."""
    headers = [xlabel] + list(ys)
    rows = [[x] + [ys[k][i] for k in ys] for i, x in enumerate(xs)]
    return format_table(f"{title}  ({ylabel})", headers, rows)
