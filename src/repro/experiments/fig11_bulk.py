"""Figure 11: large-file read/write performance, Cluster B.

``bulkread``/``bulkwrite`` move 4 MB requests at random 4 KB-aligned
offsets within 512 MB files; each client moves 256 MB; clients use
disjoint file sets.  Systems: NFS, PVFS-8, Sorrento-(8,2) (lazy), plus
Sorrento-(8,2) with eager propagation for writes.

Shape targets: NFS flat-lines ~8 MB/s; PVFS and Sorrento scale with
clients until the storage-node links saturate; reads Sorrento ≈ PVFS;
writes PVFS ≈ 2x Sorrento (every Sorrento byte lands on two replicas);
lazy beats eager at low client counts, converges at saturation.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.common import (
    cluster_b_like,
    format_table,
    nfs_on,
    pvfs_on,
    sorrento_on,
)
from repro.workloads.bulk import populate, run_bulk

MB = 1 << 20
CLIENT_COUNTS = (1, 2, 4, 8, 12, 16)


def run(client_counts: Sequence[int] = CLIENT_COUNTS, scale: float = 0.125,
        seed: int = 0) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Returns {kind: {system: {n_clients: MB/s}}}.

    ``scale=1`` is the paper's setup (160 x 512 MB files, 256 MB moved
    per client); the default shrinks both eightfold.
    """
    file_size = max(16 * MB, int(512 * MB * scale))
    n_files = max(8, int(160 * scale))
    per_client = max(8 * MB, int(256 * MB * scale))
    out: Dict[str, Dict[str, Dict[int, float]]] = {"read": {}, "write": {}}

    def sweep(dep_factory, kind: str):
        rates = {}
        for n in client_counts:
            dep = dep_factory()
            paths = populate(dep, n_files, file_size,
                             degree=2 if hasattr(dep, "providers") else 1)
            rates[n] = run_bulk(dep, n, write=(kind == "write"), paths=paths,
                                file_size=file_size,
                                per_client_bytes=per_client, seed=seed)
        return rates

    make_nfs = lambda: nfs_on(cluster_b_like(n_storage=9), seed=seed)  # noqa: E731
    make_pvfs = lambda: pvfs_on(cluster_b_like(n_storage=9), n_iods=8,  # noqa: E731
                                seed=seed)
    make_sor = lambda: sorrento_on(cluster_b_like(n_storage=8),  # noqa: E731
                                   n_providers=8, degree=2, seed=seed)
    make_sor_eager = lambda: sorrento_on(cluster_b_like(n_storage=8),  # noqa: E731
                                         n_providers=8, degree=2, seed=seed,
                                         eager_propagation=True)

    out["read"]["NFS"] = sweep(make_nfs, "read")
    out["read"]["PVFS-8"] = sweep(make_pvfs, "read")
    out["read"]["Sorrento-(8,2)"] = sweep(make_sor, "read")
    out["write"]["NFS"] = sweep(make_nfs, "write")
    out["write"]["PVFS-8"] = sweep(make_pvfs, "write")
    out["write"]["Sorrento-(8,2)"] = sweep(make_sor, "write")
    out["write"]["Sorrento-(8,2),eager"] = sweep(make_sor_eager, "write")
    return out


def report(results) -> str:
    blocks = []
    for kind in ("read", "write"):
        systems = list(results[kind])
        counts = sorted(next(iter(results[kind].values())))
        rows = [[n] + [results[kind][s][n] for s in systems] for n in counts]
        blocks.append(format_table(
            f"Figure 11 - bulk{kind} aggregate transfer rate (MB/s)",
            ["clients"] + systems, rows))
    return "\n\n".join(blocks)


def checks(results) -> list:
    bad = []
    top = max(results["read"]["NFS"])
    r, w = results["read"], results["write"]
    if r["NFS"][top] > 14:
        bad.append("NFS read should saturate near 8 MB/s")
    if r["Sorrento-(8,2)"][top] < 3 * r["NFS"][top]:
        bad.append("Sorrento read should far exceed NFS at scale")
    ratio = w["PVFS-8"][top] / max(1e-9, w["Sorrento-(8,2)"][top])
    if not 1.4 < ratio < 3.0:
        bad.append(f"PVFS write should be ~2x Sorrento r=2 (got {ratio:.2f}x)")
    lazy1 = w["Sorrento-(8,2)"][min(w["Sorrento-(8,2)"])]
    eager1 = w["Sorrento-(8,2),eager"][min(w["Sorrento-(8,2),eager"])]
    if not lazy1 > eager1:
        bad.append("lazy propagation should beat eager at low client count")
    return bad


def main(scale: float = 0.125, client_counts=CLIENT_COUNTS) -> str:
    results = run(client_counts=client_counts, scale=scale)
    text = report(results)
    for problem in checks(results):
        text += f"\nSHAPE VIOLATION: {problem}"
    print(text)
    return text


if __name__ == "__main__":
    main()
