"""Figure 15: locality-driven data placement and migration (PSM service).

24 partitions on an 8-node volume under the ``locality`` placement
policy; 8 PSM service processes run co-located with the providers, each
statically assigned 3 partitions.  Initially only 4 partitions sit on
their reader's node; Sorrento must *discover* the access locality from
traffic and migrate partitions next to their processes, without service
interruption.

Shape targets (paper): I/O time per query starts ~62 ms, rises ~75 ms
while migration traffic competes with queries, then falls to ~46 ms
(~26% below start) once all partitions are local.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import cluster_b_like, format_table, sorrento_on
from repro.workloads import psm
from repro.workloads.replay import ReplayStats, replay

MB = 1 << 20


def run(scale: float = 0.03, n_queries: int = 120, query_gap: float = 4.0,
        seed: int = 0) -> Dict:
    dep = sorrento_on(
        cluster_b_like(n_storage=8, n_clients=1),
        n_providers=8, degree=1, seed=seed,
        migration_interval=30.0, locality_min_samples=10,
    )
    hosts = sorted(dep.providers)
    sizes = psm.partition_sizes(scale=scale)
    asg = psm.assignments()
    # Process p runs on hosts[p].  Pin partitions: the first 4 partitions
    # land on their reader's host; every other partition is deliberately
    # placed on a *different* host (paper: "only four partitions are
    # placed locally with their designated PSM service processes").
    local_map = []
    for p, parts in enumerate(asg):
        for j, part in enumerate(parts):
            reader = hosts[p % len(hosts)]
            if part < 4:
                local_map.append((part, reader))
            else:
                other = hosts[(p + 1 + j) % len(hosts)]
                local_map.append((part, other))
    psm.populate(dep, sizes, placement="locality", local_map=local_map)
    traces = psm.make_traces(sizes, n_queries=n_queries,
                             scan_fraction=0.04, query_gap=query_gap,
                             with_queries=True, seed=seed + 5)
    stats: List[ReplayStats] = [ReplayStats(name=t.name) for t in traces]
    procs = []
    for p, (trace, st) in enumerate(zip(traces, stats)):
        client = dep.client_on(hosts[p % len(hosts)])
        procs.append(dep.sim.process(
            replay(client, trace, mode="query", stats=st)))
    from repro.experiments.common import run_until_done

    run_until_done(dep.sim, procs)

    # Aggregate the per-query I/O times into 30-second buckets.
    events = sorted(
        (t, io) for st in stats for t, io in st.query_io_times
    )
    t0 = events[0][0] if events else 0.0
    buckets: Dict[int, List[float]] = {}
    for t, io in events:
        buckets.setdefault(int((t - t0) // 30), []).append(io)
    series = [(30 * (b + 1), 1000 * sum(v) / len(v))
              for b, v in sorted(buckets.items())]
    migrations = sum(p.stats["migrations"] for p in dep.providers.values())
    local_parts = _count_local(dep, hosts, asg, sizes)
    return {"series": series, "migrations": migrations,
            "finally_local": local_parts, "n_partitions": len(sizes)}


def _count_local(dep, hosts, asg, sizes) -> int:
    """Partitions whose data mostly lives on their reader's node."""
    from repro.tools import ClusterInspector

    insp = ClusterInspector(dep)
    replica_map = insp.replica_map()
    local = 0
    for p, parts in enumerate(asg):
        reader = hosts[p % len(hosts)]
        for part in parts:
            entry = dep.ns.db.get("f:" + psm.partition_path(part))
            if entry is None:
                continue
            meta = insp._index_meta(entry["fileid"])
            if meta is None or meta.get("layout") is None:
                continue
            segs = meta["layout"].segments
            on_reader = sum(
                1 for ref in segs
                if reader in replica_map.get(ref.segid, {})
            )
            if segs and on_reader >= 0.5 * len(segs):
                local += 1
    return local


def report(res: Dict) -> str:
    rows = [[t, io] for t, io in res["series"]]
    table = format_table(
        "Figure 15 - PSM I/O time per query under locality-driven "
        "migration (30 s buckets)",
        ["t (s)", "I/O ms/query"], rows)
    table += f"\nsegment migrations performed: {res['migrations']}"
    return table


def checks(res: Dict) -> list:
    bad = []
    series = res["series"]
    if len(series) < 4:
        return ["too few samples to judge the shape"]
    head = [io for _, io in series[:2]]
    tail = [io for _, io in series[-3:]]
    start = sum(head) / len(head)
    end = sum(tail) / len(tail)
    if res["migrations"] == 0:
        bad.append("no locality migrations happened")
    if not end < 0.9 * start:
        bad.append(f"I/O time should drop ≥10% (start {start:.1f} ms, "
                   f"end {end:.1f} ms)")
    return bad


def main(scale: float = 0.03) -> str:
    res = run(scale=scale)
    text = report(res)
    for problem in checks(res):
        text += f"\nSHAPE VIOLATION: {problem}"
    print(text)
    return text


if __name__ == "__main__":
    main()
