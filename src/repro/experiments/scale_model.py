"""The scale suite's workload model, shared by both executions.

`repro.experiments.scale` (the serial driver) and
`repro.experiments.partitioned` (the conservative-parallel driver) must
build byte-identical workloads — same tenant population, same Zipf and
diurnal weights, same cluster tunables — or the determinism contract
between them is meaningless.  The shared constants and pure helpers
live here so neither driver imports the other (the serial driver lazily
dispatches *to* the parallel one; the reverse edge would be a cycle).
"""

from __future__ import annotations

import math
from typing import List

from repro.core.params import SorrentoParams

KB = 1 << 10

N_TENANTS = 64
ZIPF_S = 1.1           # tenant popularity exponent
DIURNAL_WAVES = 2      # load peaks across the run
DIURNAL_AMPLITUDE = 0.8
FILE_SIZE = 16 * KB
READ_SIZE = 8 * KB
N_CLIENT_STUBS = 16
ARRIVAL_BINS = 96

#: Per-tenant file cap under ``--smoke-preload``: planting 10^5 files
#: dominates the CI smoke wall (≈17s preload vs ≈2s measured run at 100
#: providers), yet the measured region only ever opens a handful of hot
#: files per tenant.  The smoke path shrinks the population so CI budget
#: is spent on the region being measured; full runs are unaffected.
SMOKE_FILES_PER_TENANT = 32


def files_per_tenant(n_files: int, smoke_preload: bool = False) -> int:
    fpt = max(1, n_files // N_TENANTS)
    return min(fpt, SMOKE_FILES_PER_TENANT) if smoke_preload else fpt


def scale_params(n_providers: int) -> SorrentoParams:
    """Tunables for big-cluster runs.

    The heartbeat channel is O(providers^2) deliveries per interval —
    the protocol's real cost, which the suite deliberately simulates —
    so the announcement period grows with the cluster, as any real
    deployment's would.  Background optimizers (migration) idle: the
    suite measures the steady serving path.
    """
    if n_providers >= 1000:
        heartbeat, vnodes = 10.0, 8
    elif n_providers >= 300:
        heartbeat, vnodes = 5.0, 16
    elif n_providers >= 100:
        heartbeat, vnodes = 5.0, 64
    else:
        heartbeat, vnodes = 1.0, 64
    return SorrentoParams(
        heartbeat_interval=heartbeat,
        refresh_cycle=120.0,
        migration_interval=600.0,
        ring_vnodes=vnodes,
        # Cluster formation fires P^2 join-refresh tasks (every provider
        # refreshes toward every joined peer).  The suite drains that
        # storm against *empty* stores during warm-up — so the window
        # can be short — and only then preloads the file population.
        join_refresh_delay_max=2.0,
    )


def _tenant_file(tenant: int, i: int) -> str:
    return f"/t{tenant:02d}/f{i:06d}"


def _zipf_cum_weights(n: int, s: float) -> List[float]:
    total, cum = 0.0, []
    for rank in range(n):
        total += 1.0 / (rank + 1) ** s
        cum.append(total)
    return cum


def _diurnal_cum_weights(bins: int) -> List[float]:
    """Cumulative weights of a sinusoidal arrival-rate wave."""
    total, cum = 0.0, []
    for b in range(bins):
        t = (b + 0.5) / bins
        rate = 1.0 + DIURNAL_AMPLITUDE * math.sin(
            2.0 * math.pi * DIURNAL_WAVES * t - math.pi / 2.0)
        total += max(rate, 0.05)
        cum.append(total)
    return cum
