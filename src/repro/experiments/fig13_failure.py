"""Figure 13: handling node failures and additions.

Setup (paper): 10 Cluster-B providers, 200 x 512 MB files with three
replicas; constant background load of 3 bulkread + 2 bulkwrite clients
at ~50% capacity; throughput sampled every 3 seconds.  A provider is
killed at t = 30 s; a brand-new one joins at t = 45 s.

Shape targets: a dip right after the failure (requests to the dead node
time out), recovery to ~94% of the initial rate once location tables
adjust, a further slide toward ~85% while re-replication traffic runs,
and no interruption of service throughout.

Beyond the paper's crash-stop scenario, ``variant=`` replays the same
experiment under other injected faults from :mod:`repro.faults`:

* ``"crash"`` — the paper's scenario: fail-stop at ``fail_at``, a fresh
  node joins at ``join_at``;
* ``"partition"`` — the victim is cut off by the switch at ``fail_at``
  and reconnected at ``join_at`` (no replacement node: the cluster must
  route around it and re-absorb it);
* ``"slowdisk"`` — the victim's RAID limps at ``DISK_SLOWDOWN`` x
  service time from ``fail_at`` until ``join_at`` (a gray failure: the
  node stays up and keeps answering, just slowly).

Every run reports dip depth, MTTR, and post-recovery throughput from
:func:`repro.faults.recovery_metrics`, plus the executed fault timeline.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.cluster import NodeSpec
from repro.experiments.common import cluster_b_like, format_table, sorrento_on
from repro.faults import (
    DiskFault,
    DiskHeal,
    FaultController,
    FaultPlan,
    Heal,
    NodeCrash,
    Partition,
    format_recovery,
    recovery_metrics,
)
from repro.workloads.bulk import bulk_client, populate

GB = 1 << 30
MB = 1 << 20

SAMPLE = 3.0

VARIANTS = ("crash", "partition", "slowdisk")

#: Service-time multiplier for the gray-failure variant.
DISK_SLOWDOWN = 12.0


def _build_plan(variant: str, victim: str, fail_at: float,
                join_at: float) -> FaultPlan:
    if variant == "crash":
        # The node is replaced (add_provider), never restarted.
        return FaultPlan().at(fail_at, NodeCrash(victim))
    if variant == "partition":
        return (FaultPlan()
                .at(fail_at, Partition((victim,)))
                .at(join_at, Heal()))
    if variant == "slowdisk":
        return (FaultPlan()
                .at(fail_at, DiskFault(victim, slowdown=DISK_SLOWDOWN))
                .at(join_at, DiskHeal(victim)))
    raise ValueError(f"unknown variant {variant!r} (pick from {VARIANTS})")


def run(scale: float = 0.1, duration: float = 120.0, fail_at: float = 30.0,
        join_at: float = 45.0, seed: int = 0,
        variant: str = "crash") -> Dict:
    """Returns {"t": [...], "rate": [...], ...} sampled every 3 s."""
    n_files = max(10, int(200 * scale))
    file_size = max(16 * MB, int(512 * MB * scale))
    dep = sorrento_on(cluster_b_like(n_storage=10, n_clients=6),
                      n_providers=10, degree=3, seed=seed,
                      repair_delay=20.0, repair_bandwidth=2.5e6)
    paths = populate(dep, n_files, file_size, degree=3)
    progress: List[tuple] = []
    clients = dep.clients_on_compute(5)
    share = max(1, n_files // 5)
    t0 = dep.sim.now

    procs = []
    for i, c in enumerate(clients):
        mine = paths[i * share:(i + 1) * share] or paths[-share:]
        procs.append(dep.sim.process(bulk_client(
            c, mine, total_bytes=1 << 60, write=(i >= 3),
            rng=random.Random(seed + i), file_size=file_size,
            progress=progress, deadline=t0 + duration,
        )))

    victim = sorted(dep.providers)[3]
    if victim == dep.ns_host:
        victim = sorted(dep.providers)[4]

    controller = FaultController(dep, _build_plan(variant, victim,
                                                  fail_at, join_at))
    controller.start()

    if variant == "crash":
        # The paper's join half: a brand-new provider replaces the dead
        # one.  Capacity changes are operations, not faults, so this
        # stays outside the fault plan.
        def join_new_node():
            yield dep.sim.timeout(join_at)
            dep.add_provider(NodeSpec(
                name="bnew", cpus=2, cpu_ghz=1.4, memory=4 * GB,
                disks=("ultrastar-dk32ej",) * 3,
                export_capacity=int(176 * GB),
            ))

        dep.sim.process(join_new_node())

    dep.sim.run(until=t0 + duration)

    # Bucket progress into 3-second samples.
    n_samples = int(duration / SAMPLE)
    rates = [0.0] * n_samples
    for t, nbytes in progress:
        idx = int((t - t0) / SAMPLE)
        if 0 <= idx < n_samples:
            rates[idx] += nbytes / MB / SAMPLE
    times = [(i + 1) * SAMPLE for i in range(n_samples)]

    replicated = sum(p.stats["replications"]
                     for p in dep.providers.values() if p.node.alive)
    recovery = recovery_metrics(times, rates, fail_at)
    return {"t": times, "rate": rates, "victim": victim,
            "fail_at": fail_at, "join_at": join_at,
            "replications": replicated, "variant": variant,
            "recovery": recovery,
            "fault_timeline": [(t - t0, kind, repr(ev))
                               for t, kind, ev in controller.timeline]}


def report(res: Dict) -> str:
    rows = [[t, r] for t, r in zip(res["t"], res["rate"])]
    table = format_table(
        f"Figure 13 ({res['variant']}) - throughput around a fault "
        f"(t={res['fail_at']:g}s, node {res['victim']}) healed/joined at "
        f"t={res['join_at']:g}s",
        ["t (s)", "MB/s"], rows)
    table += f"\nrecovery: {format_recovery(res['recovery'])}"
    table += f"\nreplica-repair transfers completed: {res['replications']}"
    table += "\nfault timeline:"
    for t, kind, ev in res["fault_timeline"]:
        table += f"\n  t={t:8.3f}s  {kind:<13} {ev}"
    return table


def checks(res: Dict) -> list:
    bad = []
    t, rate = res["t"], res["rate"]
    before = [r for x, r in zip(t, rate) if x <= res["fail_at"]]
    dip = [r for x, r in zip(t, rate)
           if res["fail_at"] < x <= res["fail_at"] + 9]
    after = [r for x, r in zip(t, rate) if x > res["join_at"] + 15]
    base = sum(before) / len(before)
    # The gray-failure variant degrades rather than severs the victim, so
    # a hard dip is only demanded of crash and partition.
    if res["variant"] in ("crash", "partition") and min(dip) > 0.9 * base:
        bad.append("no visible dip right after the failure")
    if not after or sum(after) / len(after) < 0.6 * base:
        bad.append("throughput did not recover after the failure")
    if min(rate) <= 0:
        bad.append("service was interrupted (zero-throughput sample)")
    # Re-replication is only guaranteed for a permanent loss; a partition
    # or slow disk heals before the repair grace period forces copies.
    if res["variant"] == "crash" and res["replications"] == 0:
        bad.append("no re-replication happened")
    return bad


def main(scale: float = 0.1, variant: str = "crash") -> str:
    res = run(scale=scale, variant=variant)
    text = report(res)
    for problem in checks(res):
        text += f"\nSHAPE VIOLATION: {problem}"
    print(text)
    return text


if __name__ == "__main__":
    import sys

    main(variant=sys.argv[1] if len(sys.argv) > 1 else "crash")
