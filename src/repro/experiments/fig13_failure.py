"""Figure 13: handling node failures and additions.

Setup (paper): 10 Cluster-B providers, 200 x 512 MB files with three
replicas; constant background load of 3 bulkread + 2 bulkwrite clients
at ~50% capacity; throughput sampled every 3 seconds.  A provider is
killed at t = 30 s; a brand-new one joins at t = 45 s.

Shape targets: a dip right after the failure (requests to the dead node
time out), recovery to ~94% of the initial rate once location tables
adjust, a further slide toward ~85% while re-replication traffic runs,
and no interruption of service throughout.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.cluster import NodeSpec
from repro.experiments.common import cluster_b_like, format_table, sorrento_on
from repro.workloads.bulk import bulk_client, populate

GB = 1 << 30
MB = 1 << 20

SAMPLE = 3.0


def run(scale: float = 0.1, duration: float = 120.0, fail_at: float = 30.0,
        join_at: float = 45.0, seed: int = 0) -> Dict:
    """Returns {"t": [...], "rate": [...], ...} sampled every 3 s."""
    n_files = max(10, int(200 * scale))
    file_size = max(16 * MB, int(512 * MB * scale))
    dep = sorrento_on(cluster_b_like(n_storage=10, n_clients=6),
                      n_providers=10, degree=3, seed=seed,
                      repair_delay=20.0, repair_bandwidth=2.5e6)
    paths = populate(dep, n_files, file_size, degree=3)
    progress: List[tuple] = []
    clients = dep.clients_on_compute(5)
    share = max(1, n_files // 5)
    t0 = dep.sim.now

    procs = []
    for i, c in enumerate(clients):
        mine = paths[i * share:(i + 1) * share] or paths[-share:]
        procs.append(dep.sim.process(bulk_client(
            c, mine, total_bytes=1 << 60, write=(i >= 3),
            rng=random.Random(seed + i), file_size=file_size,
            progress=progress, deadline=t0 + duration,
        )))

    victim = sorted(dep.providers)[3]
    if victim == dep.ns_host:
        victim = sorted(dep.providers)[4]

    def orchestrate():
        yield dep.sim.timeout(fail_at)
        dep.crash_provider(victim)
        yield dep.sim.timeout(join_at - fail_at)
        dep.add_provider(NodeSpec(
            name="bnew", cpus=2, cpu_ghz=1.4, memory=4 * GB,
            disks=("ultrastar-dk32ej",) * 3,
            export_capacity=int(176 * GB),
        ))

    dep.sim.process(orchestrate())
    dep.sim.run(until=t0 + duration)

    # Bucket progress into 3-second samples.
    n_samples = int(duration / SAMPLE)
    rates = [0.0] * n_samples
    for t, nbytes in progress:
        idx = int((t - t0) / SAMPLE)
        if 0 <= idx < n_samples:
            rates[idx] += nbytes / MB / SAMPLE
    times = [(i + 1) * SAMPLE for i in range(n_samples)]

    replicated = sum(p.stats["replications"]
                     for p in dep.providers.values() if p.node.alive)
    return {"t": times, "rate": rates, "victim": victim,
            "fail_at": fail_at, "join_at": join_at,
            "replications": replicated}


def report(res: Dict) -> str:
    rows = [[t, r] for t, r in zip(res["t"], res["rate"])]
    table = format_table(
        f"Figure 13 - throughput around a failure (t={res['fail_at']:g}s, "
        f"node {res['victim']}) and a join (t={res['join_at']:g}s)",
        ["t (s)", "MB/s"], rows)
    table += f"\nreplica-repair transfers completed: {res['replications']}"
    return table


def checks(res: Dict) -> list:
    bad = []
    t, rate = res["t"], res["rate"]
    before = [r for x, r in zip(t, rate) if x <= res["fail_at"]]
    dip = [r for x, r in zip(t, rate)
           if res["fail_at"] < x <= res["fail_at"] + 9]
    after = [r for x, r in zip(t, rate) if x > res["join_at"] + 15]
    base = sum(before) / len(before)
    if min(dip) > 0.9 * base:
        bad.append("no visible dip right after the failure")
    if not after or sum(after) / len(after) < 0.6 * base:
        bad.append("throughput did not recover after the failure")
    if min(rate) <= 0:
        bad.append("service was interrupted (zero-throughput sample)")
    if res["replications"] == 0:
        bad.append("no re-replication happened")
    return bad


def main(scale: float = 0.1) -> str:
    res = run(scale=scale)
    text = report(res)
    for problem in checks(res):
        text += f"\nSHAPE VIOLATION: {problem}"
    print(text)
    return text


if __name__ == "__main__":
    main()
