"""Partitioned experiment drivers for the conservative-parallel kernel.

This module is the bridge between the window engine in
:mod:`repro.sim.parallel` and the repo's experiments: it packages the
scale suite and the reduced Figure-10 benchmark as *partition programs*
— builders that construct one partition's share of the simulated
cluster plus a phase list the coordinator drives under conservative
windows.

The same builder serves every backend.  With ``local_pid=None`` it
builds the whole model in one Simulator: the serial reference execution
of the *partitioned* model, against which the ``inproc`` and ``mp``
backends must be bit-identical (same seed, same partition map).  Every
builder therefore follows two rules:

* **Construct everything everywhere.**  Each worker builds the full
  deployment — remote hosts as dormant shells — so construction order
  and every named RNG stream match the serial build exactly.
* **Draw everything everywhere.**  Workload generators consume their
  RNG sequences in full on every worker and only *spawn* processes for
  hosts the worker owns, so a draw never shifts between backends.

Builders live at module top level because the ``mp`` backend pickles
``(builder, args)`` into forked workers.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, Optional

from repro.cluster import ClusterSpec, small_cluster
from repro.core import SorrentoConfig, SorrentoDeployment
from repro.core.params import SorrentoParams
from repro.experiments.common import cluster_a_like
from repro.experiments.scale_model import (
    ARRIVAL_BINS,
    FILE_SIZE,
    N_CLIENT_STUBS,
    N_TENANTS,
    READ_SIZE,
    ZIPF_S,
    _diurnal_cum_weights,
    _tenant_file,
    _zipf_cum_weights,
    files_per_tenant,
    scale_params,
)
from repro.sim.parallel import (
    DEFAULT_CROSS_LATENCY,
    PartitionMap,
    plan_partitions,
    refine,
    run_partitioned,
)
from repro.workloads.smallfile import session_loop

GB = 1 << 30


def partition_for_spec(spec: ClusterSpec, n_partitions: int,
                       cross_latency: float = DEFAULT_CROSS_LATENCY,
                       ) -> PartitionMap:
    """The planned cut for a cluster spec: storage chunked along rack
    (switch) boundaries, compute stubs spread round-robin."""
    storage = [n.name for n in spec.storage_nodes]
    compute = [n.name for n in spec.compute_nodes]
    racks = {n.name: n.rack for n in spec.nodes if n.rack} or None
    return plan_partitions(storage, compute, n_partitions,
                           racks=racks, cross_latency=cross_latency)


def _digest(obj) -> str:
    """Short stable digest of a picklable result (repr is exact for the
    ints/floats/strs these rows contain)."""
    return hashlib.sha256(repr(obj).encode()).hexdigest()[:16]


def _rss_tree_mb() -> float:
    """Peak RSS high-water mark across this process and exited children
    (the forked mp workers), in MB."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return 0.0
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    kids = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return max(own, kids) / 1024.0


class _PartitionProgram:
    """The duck type ``run_partitioned`` drives: a deployment plus the
    phase list and a picklable result collector."""

    def __init__(self, dep: SorrentoDeployment, phases, collect):
        self.dep = dep
        self.sim = dep.sim
        self.transit = dep.transit
        self._phases = phases
        self._collect = collect

    def phases(self):
        return self._phases

    def result(self):
        return self._collect(self)


def _quiet(gen):
    """Swallow workload exceptions, like ``dep.run``'s callers do."""
    try:
        yield from gen
    except Exception:
        pass


# ------------------------------------------------------------ scale suite
def _scale_session(client, idx, path, delay, counters, rows):
    """One scale-suite session, recording its completion for the
    serial-vs-parallel equivalence digest."""
    yield client.sim.timeout(delay)
    try:
        fh = yield from client.open(path, "r")
        yield from client.read(fh, 0, READ_SIZE)
        yield from client.close(fh)
        counters["done"] += 1
        rows.append((idx, client.sim.now, 1))
    except Exception:
        counters["failed"] += 1
        rows.append((idx, client.sim.now, 0))


def build_scale_program(point, seed, smoke_preload, pmap,
                        local_pid: Optional[int] = None) -> _PartitionProgram:
    """One partition's share of a scale-suite point (top-level for mp)."""
    n_providers, n_files, n_sessions, duration = point
    params = scale_params(n_providers)
    spec = small_cluster(n_providers, n_compute=N_CLIENT_STUBS + 4,
                         capacity_per_node=4 * GB,
                         name=f"scale-{n_providers}")
    dep = SorrentoDeployment(spec, SorrentoConfig(
        params=params, seed=seed,
        partition=pmap, local_partition=local_pid))
    fpt = files_per_tenant(n_files, smoke_preload)
    counters = {"done": 0, "failed": 0}
    rows = []

    def _preload(prog):
        # Every worker runs the full preload: placement math and RNG
        # draws are global, state is planted only on local providers.
        # The bulk fast path draws a fixed count per file from one
        # stream, so every worker stays aligned by construction.
        prog.dep.preload_files(
            ((_tenant_file(tenant, i), FILE_SIZE)
             for tenant in range(N_TENANTS) for i in range(fpt)),
            degree=1)

    def _sessions(prog):
        d = prog.dep
        rng = d.rngs.py("scale-sessions")
        clients = d.clients_on_compute(N_CLIENT_STUBS)
        tenant_cum = _zipf_cum_weights(N_TENANTS, ZIPF_S)
        diurnal_cum = _diurnal_cum_weights(ARRIVAL_BINS)
        tenants = rng.choices(range(N_TENANTS), cum_weights=tenant_cum,
                              k=n_sessions)
        arrival_bins = rng.choices(range(ARRIVAL_BINS),
                                   cum_weights=diurnal_cum, k=n_sessions)
        procs = []
        for i in range(n_sessions):
            # Draws first, ownership filter second: the stream position
            # after session i is identical on every worker.
            path = _tenant_file(tenants[i], rng.randrange(fpt))
            arrival = (arrival_bins[i] + rng.random()) \
                * (duration / ARRIVAL_BINS)
            client = clients[i % N_CLIENT_STUBS]
            if client.node.dormant:
                continue
            procs.append(d.sim.process(_scale_session(
                client, i, path, arrival, counters, rows)))
        return procs

    def _collect(prog):
        return {"done": counters["done"], "failed": counters["failed"],
                "rows": sorted(rows)}

    phases = [("until", None), ("call", _preload), ("procs", _sessions)]
    return _PartitionProgram(dep, phases, _collect)


def run_scale_point_partitioned(n_providers: int, n_files: int,
                                n_sessions: int, duration: float,
                                seed: int = 0, workers: int = 2,
                                backend: str = "mp",
                                cross_latency: Optional[float] = None,
                                adapt: bool = False,
                                smoke_preload: bool = False,
                                ) -> Dict[str, object]:
    """One scale point under the partitioned kernel; returns a metrics
    row shaped like :func:`repro.experiments.scale.run_point`'s, plus
    the parallel-run diagnostics (windows, barrier wall, per-worker
    busy wall and event counts, shipped records, equivalence digest)."""
    t_build = time.perf_counter()
    params = scale_params(n_providers)
    spec = small_cluster(n_providers, n_compute=N_CLIENT_STUBS + 4,
                         capacity_per_node=4 * GB,
                         name=f"scale-{n_providers}")
    xlat = DEFAULT_CROSS_LATENCY if cross_latency is None else cross_latency
    pmap = partition_for_spec(spec, workers, cross_latency=xlat)
    warm = params.join_refresh_delay_max + 1.0
    phase_meta = [("until", warm), ("call", None), ("procs", None)]
    moves = 0
    if adapt and workers > 1:
        # Self-clustering: a short serial probe of the same partitioned
        # model yields the cross-edge traffic matrix; refine() migrates
        # the chattering hosts before the real (possibly forked) run.
        probe_point = (n_providers, n_files,
                       max(64, n_sessions // 8), min(2.0, duration))
        probe = run_partitioned(
            build_scale_program, (probe_point, seed, True, pmap), pmap,
            phase_meta, backend="serial", fabric_latency=spec.latency)
        pmap, moves = refine(pmap, probe["traffic_out"],
                             probe["traffic_in"])
    point = (n_providers, n_files, n_sessions, duration)
    out = run_partitioned(
        build_scale_program, (point, seed, smoke_preload, pmap), pmap,
        phase_meta, backend=backend, fabric_latency=spec.latency)
    stats = out["stats"]
    meas = stats.phase_log[2]
    sim_elapsed = meas["t_end"] - meas["t_start"]
    wall = max(meas["wall_s"], 1e-9)
    events = sum(stats.events)
    rows = sorted(r for res in out["results"] for r in res["rows"])
    return {
        "providers": n_providers,
        "files": N_TENANTS * files_per_tenant(n_files, smoke_preload),
        "sessions_done": sum(r["done"] for r in out["results"]),
        "sessions_failed": sum(r["failed"] for r in out["results"]),
        "sim_s": round(sim_elapsed, 3),
        "wall_s": round(wall, 3),
        "sim_per_wall": round(sim_elapsed / wall, 3),
        "events": events,
        "events_per_s": round(events / wall, 1),
        "preload_wall_s": stats.phase_log[1]["wall_s"],
        "total_wall_s": round(time.perf_counter() - t_build, 3),
        "peak_rss_mb": round(_rss_tree_mb(), 1),
        "workers": pmap.n_partitions,
        "backend": backend,
        "lookahead_us": round(pmap.lookahead(spec.latency) * 1e6, 1),
        "windows": stats.windows,
        "grants": stats.grants,
        "windows_per_grant": stats.windows_per_grant,
        "fallback_rounds": stats.fallback_rounds,
        "records_shipped": stats.records_shipped,
        "shm_batches": stats.shm_batches,
        "shm_bytes": stats.shm_bytes,
        "shm_fallbacks": stats.shm_fallbacks,
        "barrier_wall_s": round(stats.barrier_wall_s, 3),
        "busy_wall_s": [round(b, 3) for b in stats.busy_wall_s],
        "worker_events": stats.events,
        "refine_moves": moves,
        "digest": _digest(rows),
    }


# ------------------------------------------------- reduced Figure 10 macro
def build_fig10_program(n_clients, duration, n_storage, seed, pmap,
                        local_pid: Optional[int] = None) -> _PartitionProgram:
    """One partition's share of the reduced Figure-10 run."""
    params = SorrentoParams(default_degree=2)
    spec = cluster_a_like(n_storage=n_storage, n_clients=n_clients)
    dep = SorrentoDeployment(spec, SorrentoConfig(
        params=params, seed=seed, n_providers=n_storage,
        partition=pmap, local_partition=local_pid))
    clients = dep.clients_on_compute(n_clients)
    tags = {f"c{i}": [0] for i in range(n_clients)}

    def _mkdir(prog):
        c0 = clients[0]
        if c0.node.dormant:
            return []
        return [prog.sim.process(_quiet(c0.mkdir("/tput")))]

    def _sessions(prog):
        procs = []
        for i, c in enumerate(clients):
            if c.node.dormant:
                continue
            procs.append(prog.sim.process(
                session_loop(c, f"c{i}", tags[f"c{i}"], duration)))
        return procs

    def _collect(prog):
        return {"tags": {t: n[0] for t, n in tags.items() if n[0]},
                "sessions": sum(n[0] for n in tags.values())}

    phases = [("until", None), ("procs", _mkdir), ("procs", _sessions)]
    return _PartitionProgram(dep, phases, _collect)


def run_fig10_partitioned(n_clients: int = 6, duration: float = 8.0,
                          n_storage: int = 8, seed: int = 0,
                          workers: int = 2, backend: str = "mp",
                          cross_latency: Optional[float] = None,
                          ) -> Dict[str, object]:
    """The reduced Figure-10 benchmark on the partitioned kernel;
    returns a macro-suite-compatible row."""
    t0 = time.perf_counter()
    spec = cluster_a_like(n_storage=n_storage, n_clients=n_clients)
    xlat = DEFAULT_CROSS_LATENCY if cross_latency is None else cross_latency
    pmap = partition_for_spec(spec, workers, cross_latency=xlat)
    phase_meta = [("until", 8.0), ("procs", None), ("procs", None)]
    out = run_partitioned(
        build_fig10_program,
        (n_clients, duration, n_storage, seed, pmap), pmap,
        phase_meta, backend=backend, fabric_latency=spec.latency)
    stats = out["stats"]
    sessions = sum(r["sessions"] for r in out["results"])
    tags: Dict[str, int] = {}
    for r in out["results"]:
        tags.update(r["tags"])
    meas = stats.phase_log[2]
    wall = max(meas["wall_s"], 1e-9)
    events = sum(stats.events)
    return {
        "wall_s": round(wall, 4),
        "sim_time_s": round(meas["t_end"], 6),
        "events": events,
        "events_per_s": round(events / wall, 1),
        "ops": sessions,
        "ops_per_s": round(sessions / wall, 1),
        "peak_pending": max(out["peaks"]),
        "sessions": sessions,
        "sessions_per_sim_s": round(sessions / duration, 1),
        "workers": pmap.n_partitions,
        "backend": backend,
        "windows": stats.windows,
        "records_shipped": stats.records_shipped,
        "barrier_wall_s": round(stats.barrier_wall_s, 4),
        "busy_wall_s": [round(b, 4) for b in stats.busy_wall_s],
        "worker_events": stats.events,
        "total_wall_s": round(time.perf_counter() - t0, 4),
        "digest": _digest(sorted(tags.items())),
        "tags": dict(sorted(tags.items())),
    }
