"""Scale suite: Sorrento state machinery at 100-1000 providers.

The paper's clusters top out at 46 nodes; Section 6 argues the design
"self-organizes" to much larger installations.  This suite puts that to
the test on the simulator itself: it builds clusters of 100, 300, and
1000 providers, preloads 10^5-scale file populations, and drives
thousands of short client sessions whose arrival pattern mimics a large
user base — tenants picked by a Zipf law (a few hot tenants, a long
tail) and arrival times following a diurnal wave (load peaks and
troughs) — then reports how fast the simulation itself runs
(sim-seconds per wall-second), how much memory the cluster state takes
(peak RSS), and whether the protocol stack kept up (session success
rate).

These numbers are the regression surface for the scale-out state
refactor: incremental hash ring, indexed segment store, expiry-wheel
membership, and owner-indexed location tables.  Before that refactor, a
1000-provider point did not finish in CI-feasible time.

Runs standalone::

    python -m repro.experiments.scale [--quick] [--point N]
        [--files F] [--sessions S] [--duration D] [--json]
        [--workers N] [--backend mp|inproc|serial] [--adapt]
        [--smoke-preload] [--cross-latency S]
        [--budget-wall S] [--budget-rss-mb M]

``--workers N`` runs the point on the conservative-parallel kernel:
the cluster is partitioned across N event loops (see
``repro.sim.parallel`` and ``repro.experiments.partitioned``).

``--json`` prints one machine-readable result dict per point (used by
``repro.bench.scale_bench``, which forks one process per point so peak
RSS is attributable).  The ``--budget-*`` flags make the process exit
non-zero when a budget is exceeded (the CI ``scale-smoke`` job).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster import small_cluster
from repro.core import SorrentoConfig, SorrentoDeployment
from repro.experiments.common import format_table, run_until_done
from repro.experiments.scale_model import (
    ARRIVAL_BINS,
    SMOKE_FILES_PER_TENANT,
    FILE_SIZE,
    N_CLIENT_STUBS,
    N_TENANTS,
    READ_SIZE,
    ZIPF_S,
    _diurnal_cum_weights,
    _tenant_file,
    _zipf_cum_weights,
    files_per_tenant,
    scale_params,
)

KB = 1 << 10
GB = 1 << 30

#: (providers, files, sessions, sim-seconds of measured traffic).
SCALE_POINTS: Tuple[Tuple[int, int, int, float], ...] = (
    (100, 100_000, 2_000, 10.0),
    (300, 200_000, 3_000, 10.0),
    (1000, 200_000, 4_000, 10.0),
)
QUICK_POINTS: Tuple[Tuple[int, int, int, float], ...] = (
    (100, 20_000, 500, 6.0),
)

def peak_rss_mb() -> float:
    """Peak resident set of this process in MB (0.0 if unsupported).

    ``ru_maxrss`` is monotone over the process lifetime, so a multi-point
    in-process run attributes every point the high-water mark of the
    whole run; ``scale_bench`` forks one process per point to get
    honest per-size numbers.
    """
    try:
        import resource
    except ImportError:  # non-POSIX
        return 0.0
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _session(client, path: str, delay: float, counters: Dict[str, int]):
    """One user session: arrive, open, read, close."""
    yield client.sim.timeout(delay)
    try:
        fh = yield from client.open(path, "r")
        yield from client.read(fh, 0, READ_SIZE)
        yield from client.close(fh)
        counters["done"] += 1
    except Exception:
        counters["failed"] += 1


def run_point(n_providers: int, n_files: int, n_sessions: int,
              duration: float, seed: int = 0,
              smoke_preload: bool = False) -> Dict[str, float]:
    """Build, preload, and drive one cluster size; returns the metrics row."""
    params = scale_params(n_providers)
    t_build = time.perf_counter()
    spec = small_cluster(n_providers, n_compute=N_CLIENT_STUBS + 4,
                         capacity_per_node=4 * GB, name=f"scale-{n_providers}")
    dep = SorrentoDeployment(spec, SorrentoConfig(params=params, seed=seed))

    # One heartbeat round populates every membership view, and the P^2
    # cluster-formation join-refresh storm drains while every store is
    # still empty (each of its tasks iterates committed_segments()).
    dep.warm_up(params.join_refresh_delay_max + 1.0)

    # Then preload the file population (planted directly through the
    # bulk fast path: no simulated I/O, so sim.now does not advance and
    # no protocol traffic fires).
    t_preload = time.perf_counter()
    fpt = files_per_tenant(n_files, smoke_preload)
    dep.preload_files(
        ((_tenant_file(tenant, i), FILE_SIZE)
         for tenant in range(N_TENANTS) for i in range(fpt)),
        degree=1)
    preload_wall = time.perf_counter() - t_preload

    # Thousands of sessions: Zipf tenant skew, diurnal arrival wave,
    # multiplexed over a fixed pool of client stubs.
    rng = dep.rngs.py("scale-sessions")
    clients = dep.clients_on_compute(N_CLIENT_STUBS)
    tenant_cum = _zipf_cum_weights(N_TENANTS, ZIPF_S)
    bins = ARRIVAL_BINS
    diurnal_cum = _diurnal_cum_weights(bins)
    tenants = rng.choices(range(N_TENANTS), cum_weights=tenant_cum,
                          k=n_sessions)
    arrival_bins = rng.choices(range(bins), cum_weights=diurnal_cum,
                               k=n_sessions)
    counters = {"done": 0, "failed": 0}
    procs = []
    for i in range(n_sessions):
        path = _tenant_file(tenants[i],
                            rng.randrange(fpt))
        arrival = (arrival_bins[i] + rng.random()) * (duration / bins)
        procs.append(dep.sim.process(_session(
            clients[i % N_CLIENT_STUBS], path, arrival, counters)))

    t_run = time.perf_counter()
    sim_start = dep.sim.now
    run_until_done(dep.sim, procs, max_time=dep.sim.now + duration + 300.0)
    wall = time.perf_counter() - t_run
    sim_elapsed = dep.sim.now - sim_start

    return {
        "providers": n_providers,
        "files": N_TENANTS * fpt,
        "sessions_done": counters["done"],
        "sessions_failed": counters["failed"],
        "sim_s": round(sim_elapsed, 3),
        "wall_s": round(wall, 3),
        "sim_per_wall": round(sim_elapsed / max(wall, 1e-9), 3),
        "events": dep.sim._nprocessed,
        "events_per_s": round(dep.sim._nprocessed / max(wall, 1e-9), 1),
        "preload_wall_s": round(preload_wall, 3),
        "total_wall_s": round(time.perf_counter() - t_build, 3),
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }


def run(points: Optional[Sequence[Tuple[int, int, int, float]]] = None,
        quick: bool = False, seed: int = 0, smoke_preload: bool = False,
        workers: int = 0, backend: str = "mp", adapt: bool = False,
        cross_latency: Optional[float] = None) -> Dict[int, Dict[str, float]]:
    """Returns {n_providers: metrics row}.

    With ``workers > 0`` each point runs on the conservative-parallel
    kernel (``repro.experiments.partitioned``): the cluster is cut into
    ``workers`` partitions along the planned switch boundaries and
    driven by the chosen backend (``mp`` forks one process per
    partition; ``inproc``/``serial`` are the single-process reference
    executions of the same partitioned model).
    """
    if points is None:
        points = QUICK_POINTS if quick else SCALE_POINTS
    results: Dict[int, Dict[str, float]] = {}
    for n_providers, n_files, n_sessions, duration in points:
        if workers > 0:
            from repro.experiments.partitioned import (
                run_scale_point_partitioned,
            )
            results[n_providers] = run_scale_point_partitioned(
                n_providers, n_files, n_sessions, duration, seed=seed,
                workers=workers, backend=backend, adapt=adapt,
                cross_latency=cross_latency, smoke_preload=smoke_preload)
        else:
            results[n_providers] = run_point(
                n_providers, n_files, n_sessions, duration, seed=seed,
                smoke_preload=smoke_preload)
    return results


def report(results: Dict[int, Dict[str, float]]) -> str:
    cols = ["providers", "files", "sessions_done", "sessions_failed",
            "sim_s", "wall_s", "sim_per_wall", "events", "preload_wall_s",
            "peak_rss_mb"]
    rows = [[results[n][c] for c in cols] for n in sorted(results)]
    return format_table(
        "Scale - cluster state machinery at 100-1000 providers", cols, rows)


def checks(results: Dict[int, Dict[str, float]]) -> List[str]:
    """Shape assertions; returns a list of violated expectations."""
    bad = []
    for n, row in sorted(results.items()):
        total = row["sessions_done"] + row["sessions_failed"]
        if total == 0 or row["sessions_done"] < 0.95 * total:
            bad.append(f"{n} providers: only {row['sessions_done']}/{total} "
                       "sessions succeeded")
        if row["sim_s"] <= 0:
            bad.append(f"{n} providers: simulation did not advance")
    return bad


def main(quick: bool = False, seed: int = 0) -> str:
    results = run(quick=quick, seed=seed)
    text = report(results)
    for problem in checks(results):
        text += f"\nSHAPE VIOLATION: {problem}"
    print(text)
    return text


def _cli(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--point", type=int, default=None,
                        help="run only this provider count")
    parser.add_argument("--files", type=int, default=None)
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument("--duration", type=float, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=0,
                        help="partition the model across N worker event "
                             "loops (0 = classic single-loop run)")
    parser.add_argument("--backend", default="mp",
                        choices=("mp", "inproc", "serial"),
                        help="parallel backend: forked processes, "
                             "round-robin in-process loops, or the serial "
                             "reference execution of the partitioned model")
    parser.add_argument("--adapt", action="store_true",
                        help="self-clustering: refine the partition map "
                             "from a short serial traffic probe first")
    parser.add_argument("--cross-latency", type=float, default=None,
                        help="extra one-way seconds on cut edges "
                             "(default: repro.sim.parallel uplink model)")
    parser.add_argument("--smoke-preload", action="store_true",
                        help=f"cap preload at {SMOKE_FILES_PER_TENANT} "
                             "files/tenant so CI smoke budget goes to the "
                             "measured region, not setup")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable rows on stdout")
    parser.add_argument("--budget-wall", type=float, default=None,
                        help="fail if any point's wall_s exceeds this")
    parser.add_argument("--budget-rss-mb", type=float, default=None,
                        help="fail if peak RSS exceeds this")
    args = parser.parse_args(argv)

    points = QUICK_POINTS if args.quick else SCALE_POINTS
    if args.point is not None:
        base = next((p for p in SCALE_POINTS + QUICK_POINTS
                     if p[0] == args.point),
                    (args.point, 50_000, 1_000, 8.0))
        points = [base]
    if args.files or args.sessions or args.duration:
        points = [(n, args.files or f, args.sessions or s,
                   args.duration or d) for n, f, s, d in points]

    results = run(points=points, seed=args.seed,
                  smoke_preload=args.smoke_preload, workers=args.workers,
                  backend=args.backend, adapt=args.adapt,
                  cross_latency=args.cross_latency)
    if args.json:
        for n in sorted(results):
            print(json.dumps(results[n]))
    else:
        print(report(results))

    failures = checks(results)
    for n, row in sorted(results.items()):
        if args.budget_wall is not None and row["wall_s"] > args.budget_wall:
            failures.append(f"{n} providers: wall {row['wall_s']}s over "
                            f"budget {args.budget_wall}s")
        if args.budget_rss_mb is not None \
                and row["peak_rss_mb"] > args.budget_rss_mb:
            failures.append(f"{n} providers: peak RSS {row['peak_rss_mb']}MB "
                            f"over budget {args.budget_rss_mb}MB")
    for problem in failures:
        print(f"SCALE BUDGET/SHAPE VIOLATION: {problem}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(_cli())
