"""Tiered deployment: a central cluster plus satellite replica tiers.

Section 6 sketches Sorrento installations that outgrow one machine
room.  This experiment models the smallest interesting shape: one
central tier (the sharded namespace plus all storage providers) and K
satellite tiers connected over high-latency, bandwidth-capped WAN
links.  Each satellite runs a full-tree namespace *mirror* fed by
scheduled bulk WAL batches from every shard (``add_namespace_mirror``),
and a sync agent that scans the mirror for freshly committed files and
pulls their data across the WAN — scheduled bulk metadata + segment
replication, not per-operation synchrony.

The WAN is part of the fault plane: the links are shaped with
``LinkDegrade`` events (extra latency, jitter, a bandwidth cap) executed
by the :class:`~repro.faults.FaultController`, so the ``wanpart``
variant composes naturally — it cuts the first satellite off with a
``Partition`` mid-run and heals it later.  Because shard servers *call*
``nsr_apply_batch`` (re-buffering on timeout) instead of
fire-and-forgetting it, the mirror converges after the heal; the sync
agent's backlog drains, and :func:`repro.faults.recovery_metrics` over
its sampled sync rate quantifies the outage.

Variants:

* ``"steady"`` — shaped WAN only: satellites must keep up with the
  central create stream (bounded backlog, every shard ships batches);
* ``"wanpart"`` — satellite 0 is partitioned at ``fail_at`` and healed
  at ``heal_at``: sync stalls, the batch shipper retries, and both the
  metadata mirror and the data backlog must converge by the end.

Runs standalone::

    python -m repro.experiments.tiered [--variant steady|wanpart]
        [--shards N] [--satellites K] [--scale S] [--duration D]
        [--seed N] [--json] [--budget-wall S] [--budget-rss-mb M]

``--json`` prints one machine-readable result dict; the ``--budget-*``
flags make the process exit non-zero when a budget is exceeded (the CI
``shard-smoke`` job).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.cluster import ClusterSpec, NodeSpec
from repro.core import SorrentoConfig, SorrentoDeployment
from repro.core.client.handle import SorrentoError
from repro.core.params import SorrentoParams
from repro.experiments.common import format_table
from repro.faults import (
    FaultController,
    FaultPlan,
    Heal,
    LinkDegrade,
    Partition,
    format_recovery,
    recovery_metrics,
)
from repro.network.message import RpcRemoteError, RpcTimeout
from repro.sim import gather

GB = 1 << 30
MB = 1 << 20
KB = 1 << 10

SAMPLE = 3.0

VARIANTS = ("steady", "wanpart")

#: WAN shaping applied to every central<->satellite link at t=0.
WAN_LATENCY = 0.040          # one-way extra seconds
WAN_JITTER = 0.005
WAN_BANDWIDTH = 12.5e6       # bytes/s (~100 Mbit/s)

#: Scheduled replication cadences.
SHIP_INTERVAL = 5.0          # shard -> mirror bulk metadata batches
SYNC_INTERVAL = 6.0          # satellite data-pull scan period
SYNC_FANOUT = 4              # concurrent fetches per sync cycle


def tiered_cluster(n_storage: int, n_clients: int,
                   n_satellites: int) -> ClusterSpec:
    """Central Cluster-B-like tier plus K satellite nodes.

    Satellites carry disks (the mirror's WAL needs one) but export no
    capacity, so they never join the provider ring — their only roles
    are the namespace mirror and the sync agent.
    """
    nodes = [
        NodeSpec(name=f"b{i:02d}", cpus=2, cpu_ghz=1.4, memory=4 * GB,
                 disks=("ultrastar-dk32ej",) * 3, export_capacity=176 * GB)
        for i in range(n_storage)
    ]
    nodes += [NodeSpec(name=f"bc{i:02d}", cpus=2, cpu_ghz=1.4, memory=4 * GB)
              for i in range(n_clients)]
    nodes += [NodeSpec(name=f"sat{k}", cpus=2, cpu_ghz=1.4, memory=4 * GB,
                       disks=("ultrastar-dk32ej",) * 3, export_capacity=0)
              for k in range(n_satellites)]
    return ClusterSpec("tiered", nodes)


def _build_plan(variant: str, sats: List[str], fail_at: float,
                heal_at: float) -> FaultPlan:
    """WAN shaping for every satellite link, plus the variant's faults.

    Plan times are relative to ``controller.start()``; the caller starts
    the controller *before* warm-up (the WAN exists from the first
    heartbeat) and passes ``fail_at``/``heal_at`` already offset so they
    land at the advertised measurement-relative instants.
    """
    plan = FaultPlan()
    for s in sats:
        plan.at(0.0, LinkDegrade(src=s, dst="*", extra_latency=WAN_LATENCY,
                                 jitter=WAN_JITTER,
                                 bandwidth_cap=WAN_BANDWIDTH))
        plan.at(0.0, LinkDegrade(src="*", dst=s, extra_latency=WAN_LATENCY,
                                 jitter=WAN_JITTER,
                                 bandwidth_cap=WAN_BANDWIDTH))
    if variant == "wanpart":
        plan.at(fail_at, Partition((sats[0],)))
        plan.at(heal_at, Heal())
    elif variant != "steady":
        raise ValueError(f"unknown variant {variant!r} (pick from {VARIANTS})")
    return plan


def _central_writer(client, dirpath: str, file_size: int, pause: float,
                    created: List[tuple], progress: List[tuple],
                    deadline: float):
    """Create-write-commit small files under one top-level directory.

    One top-level directory per writer: the shard map assigns whole
    top-level subtrees, so several writers spread the create stream
    across every namespace shard.
    """
    sim = client.sim
    yield from client.mkdir(dirpath)
    i = 0
    while sim.now < deadline:
        path = f"{dirpath}/f{i:04d}"
        fh = yield from client.open(path, "w", create=True)
        yield from client.write(fh, 0, file_size)
        yield from client.close(fh)
        created.append((sim.now, path))
        progress.append((sim.now, file_size))
        i += 1
        yield sim.timeout(pause)


def _fetch(client, path: str, progress: List[tuple], seen: Dict[str, int],
           version: int):
    """Pull one file's data across the WAN; tolerate mid-flight faults."""
    sim = client.sim
    try:
        fh = yield from client.open(path, "r")
        size = fh.size
        if size:
            yield from client.read(fh, 0, size)
        yield from client.close(fh)
    except (SorrentoError, RpcTimeout, RpcRemoteError):
        return  # partitioned or racing a commit: retry next scan
    seen[path] = version
    progress.append((sim.now, size))


def _satellite_sync(dep, sat: str, client, seen: Dict[str, int],
                    progress: List[tuple], stop_at: float):
    """The satellite's sync agent.

    Discovery is local and free: it scans the mirror's own DB (state
    inspection of the last bulk batch applied) for committed files it
    has not fetched yet, then pulls their data through a regular client
    session over the shaped WAN — ``SYNC_FANOUT`` transfers at a time.
    """
    sim = dep.sim
    mirror = dep.ns_mirrors[sat]
    while sim.now < stop_at:
        yield sim.timeout(SYNC_INTERVAL)
        todo = []
        for key, entry in list(mirror.db.items()):
            if not (isinstance(key, str) and key.startswith("f:")):
                continue
            if not isinstance(entry, dict) or entry.get("version", 0) < 1:
                continue
            path = entry["path"]
            if seen.get(path, 0) < entry["version"]:
                todo.append((path, entry["version"]))
        for i in range(0, len(todo), SYNC_FANOUT):
            if sim.now >= stop_at:
                break
            chunk = todo[i:i + SYNC_FANOUT]
            yield from gather(sim, [
                _fetch(client, path, progress, seen, version)
                for path, version in chunk])


def _lag_sampler(dep, sats: List[str], series: Dict[str, List[tuple]],
                 stop_at: float):
    """Sample each mirror's unshipped-mutation backlog every SAMPLE s."""
    sources = (list(dep.ns_shard_servers.values())
               if dep.ns_shard_servers else [dep.ns])
    while dep.sim.now < stop_at:
        yield dep.sim.timeout(SAMPLE)
        for s in sats:
            lag = sum(srv.replication_lag().get(s, 0) for srv in sources)
            series[s].append((dep.sim.now, lag))


def _bucket(progress: List[tuple], t0: float, duration: float,
            scale: float = 1.0) -> List[float]:
    n = int(duration / SAMPLE)
    out = [0.0] * n
    for t, v in progress:
        idx = int((t - t0) / SAMPLE)
        if 0 <= idx < n:
            out[idx] += v * scale
    return out


def run(scale: float = 1.0, duration: float = 90.0, n_shards: int = 2,
        n_satellites: int = 2, fail_at: float = 30.0, heal_at: float = 51.0,
        seed: int = 0, variant: str = "steady") -> Dict:
    """Drive one tiered run; returns sampled series plus totals."""
    n_storage, n_writers = 6, 4
    file_size = max(64 * KB, int(256 * KB * scale))
    pause = 1.2
    sats = [f"sat{k}" for k in range(n_satellites)]

    t_wall = time.perf_counter()
    warm = 8.0
    params = SorrentoParams(default_degree=1)
    dep = SorrentoDeployment(
        tiered_cluster(n_storage, n_writers + 1, n_satellites),
        SorrentoConfig(params=params, seed=seed, n_providers=n_storage,
                       namespace_shards=n_shards))
    for s in sats:
        dep.add_namespace_mirror(s, interval=SHIP_INTERVAL)

    # The WAN exists from t=0: shaping is fault-plane state, so the
    # controller owns it (and the wanpart variant's cut rides the same
    # plan).  Start before warm-up so even heartbeats feel the latency;
    # the variant's fault instants are offset past the warm-up so they
    # hit at t0 + fail_at on the measured clock.
    controller = FaultController(
        dep, _build_plan(variant, sats, fail_at + warm, heal_at + warm))
    controller.start()
    dep.warm_up(warm)
    t0 = dep.sim.now

    created: List[tuple] = []
    central_progress: List[tuple] = []
    writers = [dep.client_on(f"bc{i:02d}") for i in range(n_writers)]
    procs = [dep.sim.process(_central_writer(
        c, f"/w{i}", file_size, pause, created, central_progress,
        t0 + duration)) for i, c in enumerate(writers)]

    sync_progress: Dict[str, List[tuple]] = {s: [] for s in sats}
    seen: Dict[str, Dict[str, int]] = {s: {} for s in sats}
    sat_clients = {s: dep.client_on(s) for s in sats}
    for s in sats:
        procs.append(dep.sim.process(_satellite_sync(
            dep, s, sat_clients[s], seen[s], sync_progress[s],
            t0 + duration)))
    lag_series: Dict[str, List[tuple]] = {s: [] for s in sats}
    dep.sim.process(_lag_sampler(dep, sats, lag_series, t0 + duration))

    dep.sim.run(until=t0 + duration)

    times = [(i + 1) * SAMPLE for i in range(int(duration / SAMPLE))]
    central_rate = _bucket(central_progress, t0, duration, 1.0 / MB / SAMPLE)
    sources = (list(dep.ns_shard_servers.values())
               if dep.ns_shard_servers else [dep.ns])
    central_entries = sum(
        1 for srv in sources for key, _ in srv.db.items()
        if isinstance(key, str) and key.startswith("f:"))

    # A file is only *owed* to a satellite once a metadata batch and a
    # sync scan have plausibly run since its commit.
    grace = SHIP_INTERVAL + 2 * SYNC_INTERVAL
    eligible = sum(1 for t, _ in created if t <= t0 + duration - grace)
    sat_rows = {}
    for s in sats:
        mirror_entries = sum(
            1 for key, _ in dep.ns_mirrors[s].db.items()
            if isinstance(key, str) and key.startswith("f:"))
        sat_rows[s] = {
            "files_synced": len(seen[s]),
            "bytes_synced": sum(v for _, v in sync_progress[s]),
            "sync_rate": _bucket(sync_progress[s], t0, duration,
                                 1.0 / MB / SAMPLE),
            "mirror_entries": mirror_entries,
            "lag_final": lag_series[s][-1][1] if lag_series[s] else 0,
            "lag_max": max((v for _, v in lag_series[s]), default=0),
            # Geo-aware reads: the satellite's read-only metadata ops
            # served by its own mirror vs bounced to the central tier.
            "mirror_hits": sat_clients[s].stats["mirror_hits"],
            "mirror_fallbacks": sat_clients[s].stats["mirror_fallbacks"],
        }

    res = {
        "variant": variant, "shards": n_shards, "satellites": sats,
        "t": times, "central_rate": central_rate,
        "files_created": len(created), "eligible": eligible,
        "central_entries": central_entries,
        "shipped_batches": sum(srv.shipped_batches for srv in sources),
        "shipped_mb": round(sum(srv.shipped_bytes for srv in sources) / MB, 3),
        "sats": sat_rows,
        "fail_at": fail_at, "heal_at": heal_at,
        "wall_s": round(time.perf_counter() - t_wall, 3),
        "fault_timeline": [(t - t0, kind, repr(ev))
                           for t, kind, ev in controller.timeline],
    }
    if variant == "wanpart":
        res["recovery"] = recovery_metrics(
            times, sat_rows[sats[0]]["sync_rate"], fail_at,
            recovered_frac=0.5)
    return res


def report(res: Dict) -> str:
    header = (f"Tiered ({res['variant']}) - {res['shards']}-shard central "
              f"tier, {len(res['satellites'])} satellite(s) over a shaped "
              f"WAN")
    rows = [[t, c] + [res["sats"][s]["sync_rate"][i]
                      for s in res["satellites"]]
            for i, (t, c) in enumerate(zip(res["t"], res["central_rate"]))]
    table = format_table(header,
                         ["t (s)", "central MB/s"]
                         + [f"{s} MB/s" for s in res["satellites"]], rows)
    table += (f"\nfiles created: {res['files_created']} "
              f"(namespace entries: {res['central_entries']}); "
              f"metadata batches shipped: {res['shipped_batches']} "
              f"({res['shipped_mb']} MB)")
    for s in res["satellites"]:
        row = res["sats"][s]
        table += (f"\n{s}: synced {row['files_synced']} files / "
                  f"{row['bytes_synced'] / MB:.1f} MB, mirror holds "
                  f"{row['mirror_entries']} entries, ship lag "
                  f"max {row['lag_max']} final {row['lag_final']}, "
                  f"metadata reads {row['mirror_hits']} local / "
                  f"{row['mirror_fallbacks']} WAN")
    if "recovery" in res:
        table += (f"\nWAN partition of {res['satellites'][0]} at "
                  f"t={res['fail_at']:g}s, healed t={res['heal_at']:g}s")
        table += f"\nrecovery: {format_recovery(res['recovery'])}"
    table += "\nfault timeline:"
    for t, kind, ev in res["fault_timeline"]:
        table += f"\n  t={t:8.3f}s  {kind:<13} {ev}"
    return table


def checks(res: Dict) -> list:
    bad = []
    if res["files_created"] < 10:
        bad.append("central tier created almost no files")
    if res["shipped_batches"] < len(res["satellites"]):
        bad.append("scheduled metadata batches did not ship")
    partitioned = ((res["satellites"][0],)
                   if res["variant"] == "wanpart" else ())
    for s in res["satellites"]:
        row = res["sats"][s]
        if row["mirror_entries"] < 0.8 * res["central_entries"]:
            bad.append(f"{s}: mirror missed metadata "
                       f"({row['mirror_entries']}/{res['central_entries']} "
                       "entries)")
        floor = (0.6 if s in partitioned else 0.8) * res["eligible"]
        if row["files_synced"] < floor:
            bad.append(f"{s}: data sync fell behind "
                       f"({row['files_synced']}/{res['eligible']} eligible)")
        if row["files_synced"] and row["mirror_hits"] == 0:
            bad.append(f"{s}: satellite reads bypassed its local "
                       "namespace mirror")
        if res["variant"] == "steady" and row["mirror_fallbacks"] > 0:
            # The sync agent only opens paths its mirror already holds,
            # so in steady state *zero* metadata ops may cross the WAN.
            bad.append(f"{s}: {row['mirror_fallbacks']} WAN metadata "
                       "roundtrips in steady state")
    if res["variant"] == "wanpart":
        s0 = res["satellites"][0]
        t, rate = res["t"], res["sats"][s0]["sync_rate"]
        dark = sum(r for x, r in zip(t, rate)
                   if res["fail_at"] < x <= res["heal_at"])
        bright = sum(r for x, r in zip(t, rate)
                     if res["heal_at"] < x
                     <= res["heal_at"] + (res["heal_at"] - res["fail_at"]))
        if bright <= dark:
            bad.append("no catch-up burst after the WAN heal")
        if res["sats"][s0]["lag_final"] > res["sats"][s0]["lag_max"] / 2 \
                and res["sats"][s0]["lag_final"] > 10:
            bad.append("metadata ship backlog did not drain after the heal")
    return bad


def main(scale: float = 1.0, duration: float = 90.0,
         variant: str = "steady", n_shards: int = 2) -> str:
    res = run(scale=scale, duration=duration, variant=variant,
              n_shards=n_shards)
    text = report(res)
    for problem in checks(res):
        text += f"\nSHAPE VIOLATION: {problem}"
    print(text)
    return text


def _cli(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--variant", default="steady", choices=VARIANTS)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--satellites", type=int, default=2)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--duration", type=float, default=90.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true",
                        help="machine-readable result on stdout")
    parser.add_argument("--budget-wall", type=float, default=None,
                        help="fail if wall_s exceeds this")
    parser.add_argument("--budget-rss-mb", type=float, default=None,
                        help="fail if peak RSS exceeds this")
    args = parser.parse_args(argv)

    res = run(scale=args.scale, duration=args.duration,
              n_shards=args.shards, n_satellites=args.satellites,
              seed=args.seed, variant=args.variant)
    if args.json:
        print(json.dumps(res))
    else:
        print(report(res))

    failures = checks(res)
    if args.budget_wall is not None and res["wall_s"] > args.budget_wall:
        failures.append(f"wall {res['wall_s']}s over budget "
                        f"{args.budget_wall}s")
    if args.budget_rss_mb is not None:
        from repro.experiments.scale import peak_rss_mb
        rss = peak_rss_mb()
        if rss > args.budget_rss_mb:
            failures.append(f"peak RSS {rss:.0f}MB over budget "
                            f"{args.budget_rss_mb}MB")
    for problem in failures:
        print(f"TIERED BUDGET/SHAPE VIOLATION: {problem}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(_cli())
