"""Compute scenarios: scheduling jobs where their bytes live.

The paper stops at storage self-organization; this family drives the
compute plane built on top of it (``repro.compute``) and measures what
data-locality scheduling buys.  Three scenarios:

* ``map_scan`` — the PSM trace generalized: one full-file scan task per
  partition file, partitions pinned across providers (a seeded shuffle,
  so no baseline accidentally aligns with the data).  The headline is
  **network bytes moved** — remote input bytes pulled by tasks plus
  bytes moved by the scheduler's pre-staging — and **makespan**.
* ``shuffle``  — the same scans, each followed by a spill write of a
  quarter of its input to a task-unique output file (reduce-side
  pressure: outputs place by load, so even perfect input locality
  still moves bytes).
* ``waves``    — multi-tenant job waves: tenants picked by a Zipf law,
  one job bundle per wave, waves arriving on an interval.  The
  scale-suite traffic shape, aimed at the queue instead of raw I/O.

Every scenario runs under each scheduling ``policy`` — ``locality``
(score = resident bytes + access-history affinity, with migration
pre-staging), ``random``, and ``round_robin`` — which is the ablation
recorded by ``repro.bench.compute_bench``.

Runs standalone::

    python -m repro.experiments.compute [--quick]
        [--scenario map_scan|shuffle|waves|all] [--policy P|all]
        [--files N] [--file-mb M] [--providers N] [--seed S] [--json]
        [--budget-wall S] [--budget-rss-mb M]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.api.session import connect
from repro.cluster import small_cluster
from repro.compute import POLICIES, start_compute
from repro.experiments.common import format_table, run_until_done, sorrento_on
from repro.experiments.scale import peak_rss_mb

GB = 1 << 30
MB = 1 << 20

SCENARIOS = ("map_scan", "shuffle", "waves")

#: Zipf skew for the waves scenario's tenant popularity.
ZIPF_S = 1.2


# --------------------------------------------------------------- builders
def _build(n_providers: int, n_files: int, file_mb: int, seed: int):
    """A cluster with ``n_files`` partition files pinned to a seeded
    shuffle of the providers (degree 1: byte attribution is exact)."""
    spec = small_cluster(n_providers, n_compute=2,
                         capacity_per_node=16 * GB,
                         name=f"compute-{n_providers}")
    dep = sorrento_on(spec, n_providers, degree=1, seed=seed, warm=6.0)
    providers = sorted(dep.providers)
    pin_rng = dep.rngs.py("compute:pin")
    pins = [providers[pin_rng.randrange(len(providers))]
            for _ in range(n_files)]
    paths = []
    for i, pin in enumerate(pins):
        path = f"/part/{i:04d}"
        dep.preload_file(path, file_mb * MB, degree=1, on=[pin])
        paths.append(path)
    return dep, paths


def _zipf_cum_weights(n: int, s: float = ZIPF_S) -> List[float]:
    acc, out = 0.0, []
    for rank in range(1, n + 1):
        acc += 1.0 / rank ** s
        out.append(acc)
    return out


# ------------------------------------------------------------- run points
def run_point(scenario: str, policy: str, *, n_providers: int = 6,
              n_files: int = 24, file_mb: int = 2, seed: int = 11,
              n_waves: int = 3, tasks_per_wave: int = 12,
              wave_interval: float = 2.0,
              prestage: bool = True) -> Dict[str, float]:
    """One (scenario, policy) cell of the ablation; returns a row."""
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}")
    t_build = time.perf_counter()
    dep, paths = _build(n_providers, n_files, file_mb, seed)
    # Waves run workers on half the providers only (a compute-dedicated
    # subset): inputs living elsewhere *must* move, so this is the
    # scenario that exercises pre-staging — locality moves a hot file
    # once and re-hits it, the baselines pull it wave after wave.
    workers = sorted(dep.providers)
    if scenario == "waves":
        workers = workers[:max(2, len(workers) // 2)]
    queue = start_compute(dep, policy=policy, prestage=prestage,
                          workers=workers)
    api = connect(dep, "c01").compute.bind(queue.host)
    results: List[dict] = []

    if scenario == "waves":
        rng = dep.rngs.py("compute:waves")
        cum = _zipf_cum_weights(n_files)

        def wave(w):
            yield dep.sim.timeout(w * wave_interval)
            picks = rng.choices(range(n_files), cum_weights=cum,
                                k=tasks_per_wave)
            st = yield from api.run([{"path": paths[i]} for i in picks],
                                    job=f"wave-{w}")
            results.append(st)

        procs = [dep.sim.process(wave(w)) for w in range(n_waves)]
    else:
        tasks = []
        for i, path in enumerate(paths):
            spec = {"path": path}
            if scenario == "shuffle":
                spec["kind"] = "shuffle"
                spec["out"] = f"/spill/{policy}-{i:04d}"
                spec["out_size"] = file_mb * MB // 4
            tasks.append(spec)

        def job():
            if scenario == "shuffle":
                yield from api.client.mkdir("/spill")
            st = yield from api.run(tasks, job=scenario)
            results.append(st)

        procs = [dep.sim.process(job())]

    t_run = time.perf_counter()
    sim_start = dep.sim.now
    run_until_done(dep.sim, procs, max_time=dep.sim.now + 600.0)
    wall = time.perf_counter() - t_run
    # Drain in-flight pre-stage transfers so every byte the scheduler
    # moved is counted before the row is read.
    drain_until = dep.sim.now + 120.0
    while queue.prestage_inflight and dep.sim.now < drain_until:
        dep.sim.run(until=dep.sim.now + 0.5)

    st = queue.stats
    total = sum(r["total"] for r in results)
    done = sum(r["done"] for r in results)
    makespan = max((r["makespan"] or 0.0) for r in results) \
        if results else 0.0
    net_bytes = st["task_remote_bytes"] + st["prestage_bytes"]
    return {
        "scenario": scenario, "policy": policy,
        "providers": n_providers, "tasks": total, "done": done,
        "failed": sum(r["failed"] for r in results),
        "makespan_s": round(makespan, 4),
        "net_mb": round(net_bytes / MB, 2),
        "remote_mb": round(st["task_remote_bytes"] / MB, 2),
        "prestage_mb": round(st["prestage_bytes"] / MB, 2),
        "local_mb": round(st["task_local_bytes"] / MB, 2),
        "out_mb": round(st["task_out_bytes"] / MB, 2),
        "local": st["class_local"], "prestaged": st["class_prestaged"],
        "pulled": st["class_pulled"], "requeued": st["requeued"],
        "sim_s": round(dep.sim.now - sim_start, 3),
        "wall_s": round(time.perf_counter() - t_run, 3),
        "total_wall_s": round(time.perf_counter() - t_build, 3),
        "events": dep.sim._nprocessed,
        "events_per_s": round(dep.sim._nprocessed / max(wall, 1e-9), 1),
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }


def run(scenarios: Optional[List[str]] = None,
        policies: Optional[List[str]] = None, quick: bool = False,
        seed: int = 11, **overrides) -> List[Dict[str, float]]:
    """The full ablation grid; returns one row per (scenario, policy)."""
    sizes = dict(n_providers=4, n_files=12, file_mb=1,
                 n_waves=2, tasks_per_wave=8) if quick else {}
    sizes.update(overrides)
    rows = []
    for scenario in scenarios or SCENARIOS:
        for policy in policies or POLICIES:
            rows.append(run_point(scenario, policy, seed=seed, **sizes))
    return rows


def report(rows: List[Dict[str, float]]) -> str:
    cols = ["scenario", "policy", "tasks", "done", "failed", "makespan_s",
            "net_mb", "remote_mb", "prestage_mb", "local", "prestaged",
            "pulled", "wall_s"]
    return format_table("Compute - locality-aware scheduling ablation",
                        cols, [[r[c] for c in cols] for r in rows])


def checks(rows: List[Dict[str, float]]) -> List[str]:
    """Shape assertions; returns a list of violated expectations."""
    bad = []
    by_cell = {(r["scenario"], r["policy"]): r for r in rows}
    for r in rows:
        if r["done"] < r["tasks"] or r["failed"]:
            bad.append(f"{r['scenario']}/{r['policy']}: "
                       f"{r['done']}/{r['tasks']} done, "
                       f"{r['failed']} failed")
    for scenario in SCENARIOS:
        loc = by_cell.get((scenario, "locality"))
        rnd = by_cell.get((scenario, "random"))
        if loc is None or rnd is None:
            continue
        # The acceptance bar: locality moves >= 40% fewer network bytes
        # than random scheduling on the scan-shaped scenarios.
        if scenario in ("map_scan", "shuffle") \
                and loc["net_mb"] > 0.6 * rnd["net_mb"]:
            bad.append(f"{scenario}: locality moved {loc['net_mb']} MB "
                       f"vs random {rnd['net_mb']} MB (< 40% saving)")
        if loc["local"] <= rnd["local"]:
            bad.append(f"{scenario}: locality placed {loc['local']} tasks "
                       f"on their bytes vs random {rnd['local']}")
    return bad


def main(quick: bool = False, seed: int = 11) -> str:
    rows = run(quick=quick, seed=seed)
    text = report(rows)
    for problem in checks(rows):
        text += f"\nSHAPE VIOLATION: {problem}"
    print(text)
    return text


def _cli(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--scenario", default="all",
                        choices=SCENARIOS + ("all",))
    parser.add_argument("--policy", default="all",
                        choices=POLICIES + ("all",))
    parser.add_argument("--providers", type=int, default=None)
    parser.add_argument("--files", type=int, default=None)
    parser.add_argument("--file-mb", type=int, default=None)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--json", action="store_true",
                        help="print one machine-readable dict per row")
    parser.add_argument("--budget-wall", type=float, default=None,
                        help="fail if any row's wall time exceeds this")
    parser.add_argument("--budget-rss-mb", type=float, default=None,
                        help="fail if peak RSS exceeds this")
    args = parser.parse_args(argv)

    overrides = {}
    if args.providers is not None:
        overrides["n_providers"] = args.providers
    if args.files is not None:
        overrides["n_files"] = args.files
    if args.file_mb is not None:
        overrides["file_mb"] = args.file_mb
    scenarios = list(SCENARIOS) if args.scenario == "all" \
        else [args.scenario]
    policies = list(POLICIES) if args.policy == "all" else [args.policy]
    rows = run(scenarios, policies, quick=args.quick, seed=args.seed,
               **overrides)

    if args.json:
        for row in rows:
            print(json.dumps(row))
    else:
        print(report(rows))

    problems = checks(rows)
    for row in rows:
        if args.budget_wall is not None and row["wall_s"] > args.budget_wall:
            problems.append(
                f"{row['scenario']}/{row['policy']}: wall {row['wall_s']}s "
                f"over budget {args.budget_wall}s")
        if args.budget_rss_mb is not None \
                and row["peak_rss_mb"] > args.budget_rss_mb:
            problems.append(
                f"{row['scenario']}/{row['policy']}: peak RSS "
                f"{row['peak_rss_mb']}MB over budget {args.budget_rss_mb}MB")
    for problem in problems:
        print(f"COMPUTE BUDGET/SHAPE VIOLATION: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(_cli())
