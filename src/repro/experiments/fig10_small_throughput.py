"""Figure 10: sustained small-file session throughput, Cluster A.

Clients loop create/write-12KB/close sessions; y-axis is completed
sessions per second, x-axis the number of concurrent clients (1-16).

Shape targets (paper): NFS highest, saturating ~700 sessions/s; PVFS
saturates early at ~64 sessions/s (metadata-server disk bound); Sorrento
scales nearly linearly through 16 clients (they could not saturate it;
the namespace server's theoretical bound is 400-500 sessions/s).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import (
    cluster_a_like,
    format_table,
    nfs_on,
    pvfs_on,
    sorrento_on,
)
from repro.workloads.smallfile import run_figure10

CLIENT_COUNTS = (1, 2, 4, 8, 12, 16)


def run(client_counts=CLIENT_COUNTS, duration: float = 20.0,
        seed: int = 0) -> Dict[str, Dict[int, float]]:
    """Returns {system: {n_clients: sessions_per_second}}."""
    results: Dict[str, Dict[int, float]] = {}
    results["NFS"] = run_figure10(
        lambda: nfs_on(cluster_a_like(), seed=seed), client_counts, duration)
    results["PVFS-8"] = run_figure10(
        lambda: pvfs_on(cluster_a_like(), n_iods=8, seed=seed),
        client_counts, duration)
    results["Sorrento-(8,2)"] = run_figure10(
        lambda: sorrento_on(cluster_a_like(), n_providers=8, degree=2,
                            seed=seed),
        client_counts, duration)
    return results


def report(results: Dict[str, Dict[int, float]]) -> str:
    systems = list(results)
    counts: List[int] = sorted(next(iter(results.values())))
    rows = [[n] + [results[s][n] for s in systems] for n in counts]
    return format_table(
        "Figure 10 - small file I/O throughput (sessions/second)",
        ["clients"] + systems, rows)


def checks(results: Dict[str, Dict[int, float]]) -> List[str]:
    """Shape assertions; returns a list of violated expectations."""
    bad = []
    nfs, pvfs, sor = (results["NFS"], results["PVFS-8"],
                      results["Sorrento-(8,2)"])
    top = max(nfs)
    if not nfs[top] > sor[top] > pvfs[top]:
        bad.append("expected NFS > Sorrento > PVFS at max clients")
    # PVFS saturates: doubling clients from 8 to 16 gains < 25%.
    if 16 in pvfs and 8 in pvfs and pvfs[16] > pvfs[8] * 1.25:
        bad.append("PVFS did not saturate")
    # Sorrento scales: 16 clients >= 3x throughput of 2 clients.
    if 16 in sor and 2 in sor and sor[16] < 3 * sor[2]:
        bad.append("Sorrento throughput did not scale")
    return bad


def main(duration: float = 20.0) -> str:
    results = run(duration=duration)
    text = report(results)
    for problem in checks(results):
        text += f"\nSHAPE VIOLATION: {problem}"
    print(text)
    return text


if __name__ == "__main__":
    main()
