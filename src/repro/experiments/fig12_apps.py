"""Figure 12: application benchmarks via trace replay, Cluster B.

BTIO: 4 replayers write 2.7 GB and read 1.7 GB against one shared file
(versioning disabled, byte-range writes).  PSM: 8 replayers read 3.1 GB
from their assigned protein-database partitions.  Replay is
as-fast-as-possible; systems: NFS, PVFS-8, Sorrento-(8,1).

Shape targets: NFS roughly 10x slower than the other two; Sorrento within
~15% of PVFS on BTIO (PVFS slightly ahead — it is tailored for this);
Sorrento slightly ahead on PSM.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import (
    cluster_b_like,
    format_table,
    nfs_on,
    pvfs_on,
    sorrento_on,
)
from repro.workloads import btio, psm
from repro.workloads.replay import replay

MB = 1 << 20

PAPER = {
    "BTIO": {"NFS": (1426.1, 1509.7, 1472.8),
             "PVFS-8": (140.2, 141.5, 140.9),
             "Sorrento-(8,1)": (156.3, 158.1, 157.2)},
    "PSM": {"NFS": (1196.0, 1274.7, 1235.7),
            "PVFS-8": (213.8, 233.4, 226.3),
            "Sorrento-(8,1)": (200.7, 222.5, 214.8)},
}


def _deployments(seed: int, scale: float):
    def make_nfs():
        dep = nfs_on(cluster_b_like(n_storage=9), seed=seed)
        # The paper's datasets did not fit the server's page cache; keep
        # that true when volumes are scaled down.
        dep.server.cache.budget = int(dep.server.cache.budget * scale)
        return dep

    return {
        "NFS": make_nfs,
        "PVFS-8": lambda: pvfs_on(cluster_b_like(n_storage=9), n_iods=8,
                                  seed=seed),
        "Sorrento-(8,1)": lambda: sorrento_on(cluster_b_like(n_storage=8),
                                              n_providers=8, degree=1,
                                              seed=seed),
    }


def _replay_all(dep, traces, clients) -> List:
    from repro.experiments.common import run_until_done

    procs = [dep.sim.process(replay(c, t)) for c, t in zip(clients, traces)]
    run_until_done(dep.sim, procs)
    return [p.value for p in procs]


def run_btio(scale: float = 0.02, seed: int = 0) -> Dict[str, dict]:
    results = {}
    traces = btio.make_traces(n_procs=4, scale=scale)
    for name, make in _deployments(seed, scale).items():
        dep = make()
        btio.create_shared_file(dep, scale=scale)
        clients = dep.clients_on_compute(4)
        stats = _replay_all(dep, traces, clients)
        results[name] = _summarize(stats)
    return results


def run_psm(scale: float = 0.02, seed: int = 0) -> Dict[str, dict]:
    results = {}
    sizes = psm.partition_sizes(scale=scale)
    # scan_fraction chosen so total reads ~ 3.1 GB at the paper's scale.
    total = sum(sizes) * 3  # each partition scanned once per query round
    n_queries = 4
    scan_fraction = min(0.9, (3.1 * (1 << 30) * scale) / (total * n_queries) * 3)
    traces = psm.make_traces(sizes, n_queries=n_queries,
                             scan_fraction=scan_fraction)
    for name, make in _deployments(seed, scale).items():
        dep = make()
        for i, size in enumerate(sizes):
            dep.preload_file(psm.partition_path(i), size)
        clients = dep.clients_on_compute(8)
        stats = _replay_all(dep, traces, clients)
        results[name] = _summarize(stats)
    return results


def _summarize(stats) -> dict:
    times = [s.elapsed for s in stats]
    read_bytes = sum(s.bytes_read for s in stats)
    write_bytes = sum(s.bytes_written for s in stats)
    span = max(s.finished_at for s in stats) - min(s.started_at for s in stats)
    return {
        "min": min(times), "max": max(times),
        "avg": sum(times) / len(times),
        "read_rate": read_bytes / MB / span if span else 0.0,
        "write_rate": write_bytes / MB / span if span else 0.0,
        "errors": sum(s.errors for s in stats),
    }


def report(btio_res: Dict[str, dict], psm_res: Dict[str, dict]) -> str:
    rows = []
    for app, res in (("BTIO", btio_res), ("PSM", psm_res)):
        for name, s in res.items():
            rows.append([app, name, s["min"], s["max"], s["avg"],
                         s["read_rate"], s["write_rate"], s["errors"]])
    return format_table(
        "Figure 12 - NPB BTIO and PSM trace replay "
        "(times scale with the chosen data scale; compare ratios)",
        ["app", "system", "min(s)", "max(s)", "avg(s)",
         "rd MB/s", "wr MB/s", "errs"],
        rows)


def checks(btio_res, psm_res) -> list:
    bad = []
    for app, res in (("BTIO", btio_res), ("PSM", psm_res)):
        nfs = res["NFS"]["avg"]
        pvfs = res["PVFS-8"]["avg"]
        sor = res["Sorrento-(8,1)"]["avg"]
        if nfs < 3 * max(pvfs, sor):
            bad.append(f"{app}: NFS should be several times slower")
        if not 0.5 < sor / pvfs < 2.0:
            bad.append(f"{app}: Sorrento and PVFS should be comparable "
                       f"(ratio {sor / pvfs:.2f})")
        if any(r["errors"] for r in res.values()):
            bad.append(f"{app}: replay errors present")
    return bad


def main(scale: float = 0.02) -> str:
    btio_res = run_btio(scale=scale)
    psm_res = run_psm(scale=scale)
    text = report(btio_res, psm_res)
    for problem in checks(btio_res, psm_res):
        text += f"\nSHAPE VIOLATION: {problem}"
    print(text)
    return text


if __name__ == "__main__":
    main()
