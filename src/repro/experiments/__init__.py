"""Experiment harnesses — one module per table/figure of Section 4.

Each module exposes ``run(scale=...)`` returning a structured result and
``main()`` printing it in the paper's format.  ``scale < 1`` shrinks data
volumes and durations proportionally (the DES makes shapes, not absolute
numbers; see EXPERIMENTS.md).

- :mod:`repro.experiments.fig09_small_response` — Figure 9 table
- :mod:`repro.experiments.fig10_small_throughput` — Figure 10
- :mod:`repro.experiments.fig11_bulk` — Figure 11
- :mod:`repro.experiments.fig12_apps` — Figure 12 table
- :mod:`repro.experiments.fig13_failure` — Figure 13
- :mod:`repro.experiments.fig14_crawler` — Figure 14 table
- :mod:`repro.experiments.fig15_locality` — Figure 15
"""
