"""Figure 9: small-file I/O response times (ms), Cluster A.

A single client sequentially runs create / write-12KB / read-12KB /
unlink against an idle system.  Paper's table:

                create  write   read  unlink
    NFS           0.67   2.42   2.93    0.71
    PVFS-4        50.3   60.1   60.1    19.4
    PVFS-8        60.1   60.3   70.2    22.9
    Sorrento-(4,1) 31.4  43.5   33.5    32.4
    Sorrento-(4,2) 31.3  44.0   33.7    44.3
    Sorrento-(8,1) 32.6  45.4   34.4    32.2
    Sorrento-(8,2) 33.2  46.7   34.8    42.2

Shape targets: NFS sub-5 ms everywhere; PVFS slowest on create/read/
write but quick unlink; Sorrento beats PVFS on create/read/write by
25-53%, loses to it on unlink, and r=2 only penalizes unlink.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import (
    cluster_a_like,
    format_table,
    nfs_on,
    pvfs_on,
    sorrento_on,
)
from repro.workloads.smallfile import run_figure9

PAPER = {
    "NFS": {"create": 0.67, "write": 2.42, "read": 2.93, "unlink": 0.71},
    "PVFS-4": {"create": 50.3, "write": 60.1, "read": 60.1, "unlink": 19.4},
    "PVFS-8": {"create": 60.1, "write": 60.3, "read": 70.2, "unlink": 22.9},
    "Sorrento-(4,1)": {"create": 31.4, "write": 43.5, "read": 33.5, "unlink": 32.4},
    "Sorrento-(4,2)": {"create": 31.3, "write": 44.0, "read": 33.7, "unlink": 44.3},
    "Sorrento-(8,1)": {"create": 32.6, "write": 45.4, "read": 34.4, "unlink": 32.2},
    "Sorrento-(8,2)": {"create": 33.2, "write": 46.7, "read": 34.8, "unlink": 42.2},
}

OPS = ("create", "write", "read", "unlink")


def run(n_ops: int = 40, seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Measure every Figure 9 row; returns {system: {op: mean_ms}}."""
    results: Dict[str, Dict[str, float]] = {}

    spec = cluster_a_like()
    results["NFS"] = run_figure9(nfs_on(spec, seed=seed), n_ops)
    for n in (4, 8):
        spec = cluster_a_like()
        results[f"PVFS-{n}"] = run_figure9(pvfs_on(spec, n_iods=n, seed=seed),
                                           n_ops)
    for n in (4, 8):
        for r in (1, 2):
            spec = cluster_a_like()
            dep = sorrento_on(spec, n_providers=n, degree=r, seed=seed)
            results[f"Sorrento-({n},{r})"] = run_figure9(dep, n_ops)
    return results


def run_sorrento_instrumented(n_providers: int = 4, degree: int = 1,
                              n_ops: int = 10, seed: int = 0, **overrides):
    """One Sorrento Figure-9 row plus its RPC metrics.

    Returns ``(results, dep)``: the per-op mean response times and the
    deployment, whose ``dep.metrics`` registry holds the per-service
    call counters the runtime layer recorded (open/read/write paths:
    ``ns_lookup``, ``seg_read``, ``seg_write``, ...).  ``overrides`` are
    forwarded into :class:`SorrentoParams` — e.g. ``meta_cache_enabled=
    False`` to observe the uncached RPC mapping.
    """
    spec = cluster_a_like(n_storage=n_providers, n_clients=2)
    dep = sorrento_on(spec, n_providers=n_providers, degree=degree,
                      seed=seed, **overrides)
    results = run_figure9(dep, n_ops)
    return results, dep


def report(results: Dict[str, Dict[str, float]]) -> str:
    rows = [[name] + [results[name][op] for op in OPS]
            + [PAPER[name][op] for op in OPS]
            for name in PAPER if name in results]
    return format_table(
        "Figure 9 - small file I/O response time (ms) "
        "[measured | paper]",
        ["system"] + [f"{op}" for op in OPS] + [f"{op}*" for op in OPS],
        rows,
    )


def main(n_ops: int = 40) -> str:
    text = report(run(n_ops=n_ops))
    print(text)
    return text


if __name__ == "__main__":
    main()
