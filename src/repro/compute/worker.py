"""Per-provider worker daemon: poll the queue, run tasks, report bytes.

A worker is a plain polling loop co-located with a storage provider.
It executes two task kinds through the ordinary client data path (so
caching, vectored reads, and fault handling all apply):

* ``scan``    — read ``[offset, offset+length)`` of the input file and
  charge ``cpu`` seconds (default proportional to bytes scanned);
* ``shuffle`` — a scan followed by writing ``out_size`` bytes to a
  task-unique output path (the shuffle spill).

Byte attribution: before reading, the worker resolves each input piece
to the owner the read will hit and splits the range into *local* bytes
(owner is this very node) and *remote* bytes (pulled over the fabric).
``task_done`` carries the split back to the queue — that, plus the
queue's own pre-staging counter, is the bench's network-bytes headline.
The split is exact at replication degree 1; with replicas it is the
scheduler-visible expectation (the read may land on another replica).

Workers set ``client.prefer_local`` so that once a segment *is* local
— resident from the start, or pre-staged while the task queued — the
read actually short-circuits to the local copy.
"""

from __future__ import annotations

from repro.core.client.handle import SorrentoError
from repro.network.message import RpcRemoteError, RpcTimeout

#: Default compute charge per input byte (seconds of node CPU).
CPU_PER_BYTE = 2e-10


class Worker:
    """Task-execution daemon bound to one node and one queue host."""

    def __init__(self, node, client, queue_host: str, *,
                 poll: float = 0.2, cpu_per_byte: float = CPU_PER_BYTE):
        self.node = node
        self.sim = node.sim
        self.host = node.hostid
        self.client = client
        self.client.prefer_local = True
        self.rpc = client.rpc
        self.queue_host = queue_host
        self.poll = poll
        self.cpu_per_byte = cpu_per_byte
        self.stats = {"executed": 0, "failed": 0, "local_bytes": 0,
                      "remote_bytes": 0, "out_bytes": 0}
        self.proc = node.spawn(self._loop(),
                               name=f"compute-worker:{self.host}")

    # ------------------------------------------------------------- loop
    def _loop(self):
        while True:
            try:
                resp = yield from self.rpc.call(
                    self.queue_host, "task_next",
                    {"worker": self.host}, size=48)
            except (RpcTimeout, RpcRemoteError):
                yield self.sim.timeout(self.poll)
                continue
            task = resp.get("task")
            if task is None:
                yield self.sim.timeout(self.poll)
                continue
            yield from self._execute(task)

    def _execute(self, task: dict):
        try:
            local, remote, out_bytes = yield from self._run_task(task)
        except (SorrentoError, RpcTimeout, RpcRemoteError) as exc:
            self.stats["failed"] += 1
            try:
                yield from self.rpc.call(
                    self.queue_host, "task_fail",
                    {"task": task["id"], "worker": self.host,
                     "error": str(exc)}, size=96)
            except (RpcTimeout, RpcRemoteError):
                pass
            return
        self.stats["executed"] += 1
        self.stats["local_bytes"] += local
        self.stats["remote_bytes"] += remote
        self.stats["out_bytes"] += out_bytes
        try:
            yield from self.rpc.call(
                self.queue_host, "task_done",
                {"task": task["id"], "worker": self.host,
                 "local_bytes": local, "remote_bytes": remote,
                 "out_bytes": out_bytes}, size=96)
        except (RpcTimeout, RpcRemoteError):
            pass  # lease expiry re-queues it; task_done dedups by id

    # ------------------------------------------------------------- tasks
    def _run_task(self, task: dict):
        fh = yield from self.client.open(task["path"], "r")
        try:
            offset = task.get("offset") or 0
            length = task.get("length")
            if length is None:
                length = max(0, fh.size - offset)
            length = min(length, max(0, fh.size - offset))
            pieces = fh.layout.locate(offset, length)
            owners = yield from self.client._resolve_read_owners(fh, pieces)
            local = remote = 0
            for seg_idx, _seg_off, n in pieces:
                owner, _version = owners[seg_idx]
                if owner == self.host:
                    local += n
                else:
                    remote += n
            if length > 0:
                yield from self.client.read(fh, offset, length,
                                            sequential=True)
        finally:
            yield from self.client.close(fh)
        cpu = task.get("cpu") or length * self.cpu_per_byte
        if cpu > 0:
            yield self.node.cpu(cpu)
        out_bytes = 0
        if task.get("kind") == "shuffle" and task.get("out"):
            out_bytes = task.get("out_size") or max(1, length // 4)
            ofh = yield from self.client.open(task["out"], "w", create=True)
            try:
                yield from self.client.write(ofh, 0, out_bytes)
            finally:
                yield from self.client.close(ofh)
        return local, remote, out_bytes
