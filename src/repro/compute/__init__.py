"""Data-locality-aware compute on top of the storage cluster.

The paper's access-history and migration machinery (§3.7.2) exists to
move bytes toward their consumers; this package closes the loop by
moving the *compute* toward the bytes.  See ``docs/compute.md``.
"""

from repro.compute.api import ComputeAPI
from repro.compute.queue import POLICIES, TaskQueue, start_compute
from repro.compute.worker import Worker

__all__ = ["ComputeAPI", "POLICIES", "TaskQueue", "Worker",
           "start_compute"]
