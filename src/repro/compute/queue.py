"""The task-queue service: schedule compute where the bytes live.

Sorrento's providers already maintain everything a compute scheduler
needs — the location table says *who holds* a segment, and the
per-segment access history (§3.7.2) says *who has been reading* it.
``TaskQueue`` is a small service (PYME's ActionManager is the idiom
reference) that exploits both: clients submit DAG-free bundles of
map-style scan tasks and shuffle-heavy reduce tasks, and the queue
assigns each task to the worker holding the most of its input bytes.

Scoring.  For each input segment the queue resolves owners and access
history through the home host (one ``loc_lookup`` with the opt-in
``affinity`` flag, TTL-cached queue-side), then scores every candidate
worker::

    score(w) = resident_bytes(w) + 0.5 * min(affinity_bytes(w), need)

``resident_bytes`` are input bytes the worker already holds;
``affinity_bytes`` are bytes the home host has recently served *to*
that worker — a predictor of page-cache warmth and of where the
locality migrator (§3.7.2) is about to move the segment anyway.  The
pick is ``min(candidates, key=(-score, load, hostid))``: deterministic,
load-balanced among equals.

Locality classes.  Each assignment is labelled:

* ``local``     — ≥ half the input bytes are already resident;
* ``pre-staged``— cold input, but the queue issued ``seg_replicate``
  toward the assigned worker so the bytes migrate while the task waits
  its turn (the provider's ``already``-guard makes this race-safe
  against concurrent locality migration — no duplicate ingests);
* ``pulled``    — the worker will read the bytes remotely.

Leases.  ``task_next`` hands a task out under a lease; a sweeper
re-queues tasks whose lease expired (worker crashed or wedged) and
drains queues of dead workers, so a FaultPlan crash costs one lease
TTL, not the job.

The ablation knob: ``policy`` ∈ {``locality``, ``random``,
``round_robin``} — the latter two ignore the score and are the
baselines the bench compares against.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.core.location import TtlCache
from repro.core.params import SorrentoParams
from repro.network.message import RpcRemoteError, RpcTimeout

POLICIES = ("locality", "random", "round_robin")

#: Input-resident fraction at or above which a task counts as "local".
LOCAL_FRACTION = 0.5
#: Weight of access-history affinity relative to resident bytes.
AFFINITY_WEIGHT = 0.5
#: Give up on a task after this many failed attempts.
MAX_ATTEMPTS = 3


class TaskQueue:
    """Locality-aware task queue service hosted on one node.

    Tasks are dicts: ``{"kind": "scan"|"shuffle", "path": str,
    "offset": int, "length": int | None, "out": str, "out_size": int,
    "cpu": float}`` — only ``path`` is required.  ``shuffle`` tasks
    additionally write ``out_size`` bytes to ``out`` after scanning.
    """

    SERVICES = ("task_submit", "task_next", "task_done", "task_fail",
                "task_status")

    def __init__(self, node, client, workers: List[str],
                 params: SorrentoParams, rng: random.Random, *,
                 policy: str = "locality", prestage: bool = True,
                 lease_ttl: float = 15.0):
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}")
        self.node = node
        self.sim = node.sim
        self.host = node.hostid
        self.client = client
        self.rpc = client.rpc
        self.params = params
        self.rng = rng
        self.policy = policy
        self.prestage = prestage and policy == "locality"
        self.lease_ttl = lease_ttl
        self.workers = sorted(workers)
        self._queues: Dict[str, deque] = {w: deque() for w in self.workers}
        self._load = {w: 0 for w in self.workers}
        self._leased: Dict[int, dict] = {}
        self._tasks: Dict[int, dict] = {}
        self._finished: set = set()
        self._failed: set = set()
        self._rr = 0
        self._next_id = 1
        #: Pre-stage transfers issued but not yet accounted (drained by
        #: experiments before reading byte counters).
        self.prestage_inflight = 0
        # Queue-side (owners, affinity, version) cache — the same TTL as
        # the clients' location cache, so staleness bounds match.
        self._seg_cache = TtlCache(params.loc_cache_ttl, 4096)
        self.jobs: Dict[str, dict] = {}
        #: (task_id, worker, locality_class) in assignment order — the
        #: determinism tests replay this verbatim.
        self.assignments: List[Tuple[int, str, str]] = []
        self.stats = {
            "submitted": 0, "completed": 0, "failed": 0, "requeued": 0,
            "class_local": 0, "class_prestaged": 0, "class_pulled": 0,
            "prestage_segments": 0, "prestage_already": 0,
            "prestage_bytes": 0,
            "task_local_bytes": 0, "task_remote_bytes": 0,
            "task_out_bytes": 0,
        }
        for svc in self.SERVICES:
            self.rpc.register(svc, getattr(self, "_h_" + svc), replace=True)
        node.spawn(self._sweeper(), name=f"task-sweeper:{self.host}")

    # ------------------------------------------------------------ scoring
    def _candidates(self) -> List[str]:
        """Live workers, in stable order (falls back to the full set so a
        fully-partitioned membership view cannot wedge the queue)."""
        mm = self.client.membership
        if mm is not None:
            live = set(mm.live_providers())
            alive = [w for w in self.workers if w in live]
            if alive:
                return alive
        return list(self.workers)

    def _seg_info(self, segid: int):
        """(owners, affinity) for one segment via its home host, cached."""
        now = self.sim.now
        hit = self._seg_cache.get(segid, now)
        if hit is not None:
            return hit
        owners: List[Tuple[str, int]] = []
        affinity: Dict[str, int] = {}
        try:
            home = self.client._home_of(segid)
            resp = yield from self.rpc.call(
                home, "loc_lookup",
                {"segid": segid, "affinity": True}, size=64)
            owners = resp["owners"] or []
            affinity = resp.get("affinity") or {}
        except (RpcTimeout, RpcRemoteError):
            pass
        info = (owners, affinity)
        self._seg_cache.put(segid, info, now)
        return info

    def _inputs(self, task: dict):
        """Resolve the task's input range into per-segment need/owners.

        Returns ``(segs, total)`` where ``segs`` is a list of
        ``(segid, version, need_bytes, seg_size, owner_hosts, affinity)``.
        """
        fh = yield from self.client.open(task["path"], "r", meta_only=True)
        try:
            offset = task.get("offset") or 0
            length = task.get("length")
            if length is None:
                length = max(0, fh.size - offset)
            length = min(length, max(0, fh.size - offset))
            task["length"] = length
            segs, total = [], 0
            for seg_idx, _seg_off, n in fh.layout.locate(offset, length):
                ref = fh.layout.segments[seg_idx]
                owners, affinity = yield from self._seg_info(ref.segid)
                segs.append((ref.segid, ref.version, n, ref.size,
                             {h for h, _v in owners}, owners, affinity))
                total += n
        finally:
            yield from self.client.close(fh)
        return segs, total

    def _choose(self, segs, candidates: List[str]) -> str:
        if self.policy == "round_robin":
            worker = candidates[self._rr % len(candidates)]
            self._rr += 1
            return worker
        if self.policy == "random":
            return self.rng.choice(candidates)
        score = {w: 0.0 for w in candidates}
        for _segid, _v, need, _size, hosts, _owners, affinity in segs:
            for w in candidates:
                if w in hosts:
                    score[w] += need
                warmth = affinity.get(w)
                if warmth:
                    score[w] += AFFINITY_WEIGHT * min(warmth, need)
        return min(candidates, key=lambda w: (-score[w], self._load[w], w))

    def _classify(self, segs, total: int, worker: str) -> str:
        resident = sum(need for _s, _v, need, _sz, hosts, _o, _a in segs
                       if worker in hosts)
        if total == 0 or resident >= LOCAL_FRACTION * total:
            return "local"
        return "pre-staged" if self.prestage else "pulled"

    # -------------------------------------------------------- pre-staging
    def _prestage_task(self, segs, worker: str) -> None:
        for segid, _v, _need, size, hosts, owners, _aff in segs:
            if worker in hosts or not owners:
                continue
            best = max(v for _h, v in owners)
            src = min(h for h, v in owners if v == best)
            self.node.spawn(
                self._prestage_one(worker, segid, best, src, size),
                name=f"prestage:{segid & 0xFFFF:04x}")

    def _prestage_one(self, worker: str, segid: int, version: int,
                      src: str, size: int):
        """Hint one segment toward its assigned worker.

        ``seg_replicate`` is the same idempotent ingest the migration and
        repair paths use: if a concurrent locality migration beat us to
        it, the provider answers ``already`` and no second copy moves.
        """
        self.prestage_inflight += 1
        try:
            resp = yield from self.rpc.call(
                worker, "seg_replicate",
                {"segid": segid, "version": version, "from": src},
                size=64, timeout=60.0)
        except (RpcTimeout, RpcRemoteError):
            return
        finally:
            self.prestage_inflight -= 1
        self.stats["prestage_segments"] += 1
        if resp.get("already"):
            self.stats["prestage_already"] += 1
        else:
            self.stats["prestage_bytes"] += size

    # --------------------------------------------------------- placement
    def _place(self, task: dict):
        segs, total = yield from self._inputs(task)
        candidates = self._candidates()
        worker = self._choose(segs, candidates)
        cls = self._classify(segs, total, worker)
        if cls == "pre-staged":
            self._prestage_task(segs, worker)
        task["class"] = cls
        task["worker"] = worker
        self._queues[worker].append(task)
        self._load[worker] += 1
        self.assignments.append((task["id"], worker, cls))
        key = {"local": "class_local", "pre-staged": "class_prestaged",
               "pulled": "class_pulled"}[cls]
        self.stats[key] += 1

    # ---------------------------------------------------------- services
    def _h_task_submit(self, req: dict, src: str):
        job = req.get("job") or f"job-{len(self.jobs)}"
        rec = self.jobs.setdefault(job, {
            "total": 0, "done": 0, "failed": 0,
            "submitted": self.sim.now, "finished": None,
        })
        ids = []
        for spec in req["tasks"]:
            task = {
                "id": self._next_id, "job": job,
                "kind": spec.get("kind", "scan"),
                "path": spec["path"],
                "offset": spec.get("offset") or 0,
                "length": spec.get("length"),
                "out": spec.get("out"),
                "out_size": spec.get("out_size") or 0,
                "cpu": spec.get("cpu") or 0.0,
                "attempts": 0,
            }
            self._next_id += 1
            self._tasks[task["id"]] = task
            rec["total"] += 1
            self.stats["submitted"] += 1
            ids.append(task["id"])
            yield from self._place(task)
        return {"job": job, "tasks": ids}, 64 + 8 * len(ids)

    def _h_task_next(self, req: dict, src: str):
        q = self._queues.get(req["worker"])
        while q:
            task = q.popleft()
            if task["id"] in self._finished or task["id"] in self._failed:
                # A stale copy (completed elsewhere after a lease expiry):
                # drop it and release its load accounting.
                self._load[req["worker"]] -= 1
                continue
            task["lease"] = self.sim.now + self.lease_ttl
            self._leased[task["id"]] = task
            wire = {k: task[k] for k in
                    ("id", "job", "kind", "path", "offset", "length",
                     "out", "out_size", "cpu", "class")}
            return {"task": wire}, 192
        return {"task": None}, 48

    def _job_account(self, job: str, *, failed: bool = False) -> None:
        rec = self.jobs[job]
        rec["failed" if failed else "done"] += 1
        if rec["done"] + rec["failed"] >= rec["total"] \
                and rec["finished"] is None:
            rec["finished"] = self.sim.now

    def _h_task_done(self, req: dict, src: str):
        tid = req["task"]
        task = self._tasks.get(tid)
        if task is None or tid in self._finished or tid in self._failed:
            return {"ok": False}, 48
        self._finished.add(tid)
        if self._leased.pop(tid, None) is not None:
            self._load[task["worker"]] -= 1
        self.stats["completed"] += 1
        self.stats["task_local_bytes"] += req.get("local_bytes", 0)
        self.stats["task_remote_bytes"] += req.get("remote_bytes", 0)
        self.stats["task_out_bytes"] += req.get("out_bytes", 0)
        self._job_account(task["job"])
        return {"ok": True}, 48

    def _h_task_fail(self, req: dict, src: str):
        tid = req["task"]
        task = self._tasks.get(tid)
        if task is None or tid in self._finished or tid in self._failed:
            return {"ok": False}, 48
        if self._leased.pop(tid, None) is not None:
            self._load[task["worker"]] -= 1
        task["attempts"] += 1
        if task["attempts"] >= MAX_ATTEMPTS:
            self._failed.add(tid)
            self.stats["failed"] += 1
            self._job_account(task["job"], failed=True)
            return {"ok": True, "requeued": False}, 48
        self.stats["requeued"] += 1
        yield from self._place(task)
        return {"ok": True, "requeued": True}, 48

    def _h_task_status(self, req: dict, src: str):
        rec = self.jobs.get(req["job"])
        if rec is None:
            return {"found": False}, 48
        makespan = None
        if rec["finished"] is not None:
            makespan = rec["finished"] - rec["submitted"]
        return {
            "found": True, "total": rec["total"], "done": rec["done"],
            "failed": rec["failed"],
            "finished": rec["finished"] is not None,
            "makespan": makespan,
        }, 96

    # ------------------------------------------------------------ leases
    def _sweeper(self):
        """Re-queue expired leases and drain dead workers' queues."""
        while True:
            yield self.sim.timeout(self.lease_ttl / 2)
            now = self.sim.now
            live = set(self._candidates())
            expired = [t for t in self._leased.values()
                       if t["lease"] <= now]
            for task in expired:
                del self._leased[task["id"]]
                self._load[task["worker"]] -= 1
                self.stats["requeued"] += 1
                yield from self._place(task)
            for w in self.workers:
                if w in live or not self._queues[w]:
                    continue
                orphans = [t for t in self._queues[w]
                           if t["id"] not in self._finished]
                self._queues[w].clear()
                for task in orphans:
                    self._load[w] -= 1
                    self.stats["requeued"] += 1
                    yield from self._place(task)

    # --------------------------------------------------------- inspection
    def pending_count(self) -> int:
        return sum(1 for q in self._queues.values()
                   for t in q if t["id"] not in self._finished)

    def leased_count(self) -> int:
        return len(self._leased)

    def by_class(self) -> Dict[str, int]:
        return {"local": self.stats["class_local"],
                "pre-staged": self.stats["class_prestaged"],
                "pulled": self.stats["class_pulled"]}


def start_compute(dep, on: Optional[str] = None,
                  workers: Optional[List[str]] = None, *,
                  policy: str = "locality", prestage: bool = True,
                  lease_ttl: float = 15.0) -> TaskQueue:
    """Stand up the compute plane on a deployment.

    Hosts the queue on ``on`` (default: the first compute node, else the
    namespace host) and one :class:`~repro.compute.worker.Worker` daemon
    per provider (or per ``workers`` entry).  Returns the queue, also
    reachable as ``dep.compute``; the workers as ``dep.compute_workers``.
    """
    from repro.compute.worker import Worker

    if on is None:
        spare = [h for h in sorted(dep.nodes)
                 if h not in dep.providers and h != dep.ns_host]
        on = spare[0] if spare else dep.ns_host
    queue = TaskQueue(
        dep.nodes[on], dep.client_on(on),
        sorted(workers if workers is not None else dep.providers),
        dep.params, dep.rngs.py("compute:queue"),
        policy=policy, prestage=prestage, lease_ttl=lease_ttl)
    dep.compute = queue
    dep.compute_workers = {
        w: Worker(dep.nodes[w], dep.client_on(w), on)
        for w in queue.workers
    }
    return queue
