"""Client-side front door to the compute plane (``Session.compute``).

A thin RPC wrapper over the queue's services: ``submit`` a bundle of
task specs, ``status``/``wait`` on the returned job handle, or ``run``
for submit-and-wait.  All methods are simulation generators, driven
like any other client op (``dep.run(...)`` / ``sim.process(...)``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.client.handle import SorrentoError, TimeoutError


class ComputeAPI:
    """Bound to a client stub; targets one queue host at a time."""

    def __init__(self, client, queue_host: Optional[str] = None):
        self.client = client
        self.queue_host = queue_host

    def bind(self, host: str) -> "ComputeAPI":
        """Point this API at the node hosting the TaskQueue service."""
        self.queue_host = host
        return self

    def _target(self) -> str:
        if self.queue_host is None:
            raise SorrentoError(
                "compute API not bound: call .bind(queue_host) first")
        return self.queue_host

    def submit(self, tasks: List[dict], job: Optional[str] = None):
        """Submit task specs; returns ``{"job": ..., "tasks": [ids]}``.

        Submission resolves every input's layout and owners queue-side,
        so the call is sized (and timed out) for a bundle, not an op.
        """
        resp = yield from self.client.rpc.call(
            self._target(), "task_submit",
            {"tasks": list(tasks), "job": job},
            size=64 + 96 * len(tasks), timeout=120.0)
        return resp

    def status(self, job: str):
        resp = yield from self.client.rpc.call(
            self._target(), "task_status", {"job": job}, size=48)
        return resp

    def wait(self, job: str, poll: float = 0.25,
             timeout: Optional[float] = None):
        """Poll until the job finishes; returns the final status row."""
        sim = self.client.sim
        deadline = sim.now + timeout if timeout is not None else None
        while True:
            st = yield from self.status(job)
            if st.get("finished"):
                return st
            if deadline is not None and sim.now >= deadline:
                raise TimeoutError(f"job {job} still running at deadline")
            yield sim.timeout(poll)

    def run(self, tasks: List[dict], job: Optional[str] = None,
            poll: float = 0.25, timeout: Optional[float] = None):
        """Submit and wait; returns the job's final status row."""
        resp = yield from self.submit(tasks, job=job)
        st = yield from self.wait(resp["job"], poll=poll, timeout=timeout)
        return st
