"""Small-file workloads (Sections 4.1.1 and 4.1.2).

Figure 9: a single client sequentially runs four op types against an idle
system — ``create`` (create+close), ``write`` (open, write 12 KB, close),
``read`` (open, read 12 KB, close), ``unlink``.

Figure 10: many clients each loop create/write-12KB/close sessions; the
metric is completed sessions per second.
"""

from __future__ import annotations

from typing import Dict, List

SMALL_IO = 12 * 1024


def bench_create(client, n: int, prefix: str = "/small"):
    """Generator: repeatedly create then close; returns per-op latencies."""
    latencies = []
    for i in range(n):
        t0 = client.sim.now
        fh = yield from client.open(f"{prefix}/f{i:05d}", "w", create=True)
        yield from client.close(fh)
        latencies.append(client.sim.now - t0)
    return latencies


def bench_write(client, n: int, prefix: str = "/small"):
    """Open each created file, write 12 KB, close."""
    latencies = []
    for i in range(n):
        t0 = client.sim.now
        fh = yield from client.open(f"{prefix}/f{i:05d}", "w")
        yield from client.write(fh, 0, SMALL_IO)
        yield from client.close(fh)
        latencies.append(client.sim.now - t0)
    return latencies


def bench_read(client, n: int, prefix: str = "/small"):
    """Open each written file, read 12 KB, close."""
    latencies = []
    for i in range(n):
        t0 = client.sim.now
        fh = yield from client.open(f"{prefix}/f{i:05d}", "r")
        yield from client.read(fh, 0, SMALL_IO)
        yield from client.close(fh)
        latencies.append(client.sim.now - t0)
    return latencies


def bench_unlink(client, n: int, prefix: str = "/small"):
    """Unlink all the created files."""
    latencies = []
    for i in range(n):
        t0 = client.sim.now
        yield from client.unlink(f"{prefix}/f{i:05d}")
        latencies.append(client.sim.now - t0)
    return latencies


def session_loop(client, tag: str, counter: List[int], duration: float,
                 prefix: str = "/tput"):
    """Figure 10 driver: create/write-12KB/close sessions until the
    deadline; each completion bumps ``counter[0]``."""
    sim = client.sim
    deadline = sim.now + duration
    i = 0
    while sim.now < deadline:
        path = f"{prefix}/{tag}-{i:06d}"
        try:
            fh = yield from client.open(path, "w", create=True)
            yield from client.write(fh, 0, SMALL_IO)
            yield from client.close(fh)
            counter[0] += 1
        except Exception:
            pass
        i += 1


def run_figure9(dep, n: int = 30, client_host: str = None,
                prefix: str = "/small") -> Dict[str, float]:
    """All four Figure 9 columns against one deployment; mean ms per op."""
    client = dep.client_on(client_host) if client_host else \
        dep.clients_on_compute(1)[0]
    mkdir = getattr(client, "mkdir", None)
    if mkdir is not None:
        try:
            dep.run(mkdir(prefix))
        except Exception:
            pass
    out = {}
    for name, bench in (("create", bench_create), ("write", bench_write),
                        ("read", bench_read), ("unlink", bench_unlink)):
        if name == "unlink":
            # The paper ran these benches as separate jobs; give lazy
            # replication its window so unlink sees the full degree.
            dep.sim.run(until=dep.sim.now + 45.0)
        lats = dep.run(bench(client, n, prefix=prefix))
        out[name] = 1000.0 * sum(lats) / len(lats)
    return out


def run_figure10(dep_factory, client_counts, duration: float = 30.0):
    """Sessions/second versus client count (one fresh deployment each)."""
    results = {}
    for n_clients in client_counts:
        dep = dep_factory()
        clients = dep.clients_on_compute(n_clients)
        try:
            dep.run(clients[0].mkdir("/tput"))
        except Exception:
            pass
        counter = [0]
        procs = [
            dep.sim.process(session_loop(c, f"c{i}", counter, duration))
            for i, c in enumerate(clients)
        ]
        dep.sim.run(until=dep.sim.now + duration + 5)
        assert all(p.triggered for p in procs)
        results[n_clients] = counter[0] / duration
    return results
