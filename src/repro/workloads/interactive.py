"""General interactive file-system workload (Section 4.1's framing).

The paper contrasts its target workload with "file systems used in
interactive environments such as desktop PCs", citing the Sprite and
Windows NT measurement studies [9, 43].  This generator reproduces their
headline distributional facts:

* most files are small (lognormal sizes, median a few KB) with a long
  tail;
* most accesses are whole-file sequential reads; writes mostly create or
  fully overwrite;
* opens cluster in bursts with think time between bursts;
* a small fraction of deletes, and re-reads concentrate on recently
  used files (temporal locality via an LRU-biased pick).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

from repro.workloads.trace import Trace

KB = 1 << 10


@dataclass
class InteractiveProfile:
    """Tunable workload mix (defaults follow the measurement studies)."""

    read_fraction: float = 0.7      # share of sessions that only read
    delete_fraction: float = 0.05   # share of sessions that unlink
    size_median: int = 4 * KB       # lognormal median file size
    size_sigma: float = 1.4         # lognormal shape (long tail)
    max_size: int = 4 * (1 << 20)   # tail clamp
    burst_len: int = 6              # sessions per burst
    think_time: float = 2.0         # mean gap between bursts (seconds)
    locality_bias: float = 0.7      # probability of touching a recent file


def make_trace(n_sessions: int, profile: InteractiveProfile = None,
               prefix: str = "/home", seed: int = 0,
               name: str = "interactive") -> Trace:
    """Generate an interactive-user trace of ``n_sessions`` file sessions."""
    p = profile or InteractiveProfile()
    rng = random.Random(seed)
    tr = Trace(name=name)
    t = 0.0
    recent: List[str] = []
    created: List[str] = []
    sizes = {}
    next_id = 0

    def file_size() -> int:
        mu = math.log(p.size_median)
        return max(256, min(p.max_size, int(rng.lognormvariate(mu, p.size_sigma))))

    for s in range(n_sessions):
        if s % p.burst_len == 0 and s > 0:
            gap = rng.expovariate(1.0 / p.think_time)
            tr.add("think", t=t, dur=gap)
            t += gap
        roll = rng.random()
        if created and roll < p.delete_fraction:
            victim = rng.choice(created)
            created.remove(victim)
            sizes.pop(victim, None)
            if victim in recent:
                recent.remove(victim)
            tr.add("unlink", t=t, path=victim)
        elif created and roll < p.delete_fraction + p.read_fraction:
            # Whole-file sequential read, biased to recent files.
            if recent and rng.random() < p.locality_bias:
                path = rng.choice([r for r in recent[-10:] if r in sizes]
                                  or created)
            else:
                path = rng.choice(created)
            size = sizes[path]
            tr.add("open", t=t, path=path, mode="r")
            pos = 0
            while pos < size:
                n = min(64 * KB, size - pos)
                tr.add("read", t=t, path=path, offset=pos, size=n,
                       sequential=True)
                pos += n
            tr.add("close", t=t, path=path)
            _touch(recent, path)
        else:
            # Create (or truncate-overwrite) and write the whole file.
            path = f"{prefix}/f{next_id:06d}"
            next_id += 1
            size = file_size()
            tr.add("open", t=t, path=path, mode="w", create=True)
            pos = 0
            while pos < size:
                n = min(64 * KB, size - pos)
                tr.add("write", t=t, path=path, offset=pos, size=n,
                       sequential=True)
                pos += n
            tr.add("close", t=t, path=path)
            created.append(path)
            sizes[path] = size
            _touch(recent, path)
    return tr


def _touch(recent: List[str], path: str) -> None:
    if path in recent:
        recent.remove(path)
    recent.append(path)
    if len(recent) > 64:
        recent.pop(0)
