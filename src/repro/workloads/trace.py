"""Trace format.

Mirrors what the paper's interception utilities collected: one record per
I/O request "with accurate timing information for the starting and ending
time of each request".  ``t`` is the request's start time relative to the
trace's origin; the replayer decides whether to honour it (paced modes)
or ignore it (as-fast-as-possible modes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

OPS = ("open", "read", "write", "close", "unlink", "think",
       "query_start", "query_end")


@dataclass
class TraceRecord:
    """One traced request."""

    t: float                 # start time, seconds from trace origin
    op: str
    path: str = ""
    offset: int = 0
    size: int = 0
    mode: str = "r"          # for open
    create: bool = False     # for open
    sequential: bool = False
    dur: float = 0.0         # think/gap duration for pacing ops

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown trace op {self.op!r}")


@dataclass
class Trace:
    """An ordered sequence of requests for one replayer process."""

    name: str
    records: List[TraceRecord] = field(default_factory=list)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def add(self, op: str, *, t: Optional[float] = None, **kw) -> TraceRecord:
        """Append a record (timestamp defaults to the previous one)."""
        if t is None:
            t = self.records[-1].t if self.records else 0.0
        rec = TraceRecord(t=t, op=op, **kw)
        self.records.append(rec)
        return rec

    @property
    def bytes_read(self) -> int:
        return sum(r.size for r in self.records if r.op == "read")

    @property
    def bytes_written(self) -> int:
        return sum(r.size for r in self.records if r.op == "write")

    @property
    def duration(self) -> float:
        return self.records[-1].t if self.records else 0.0
