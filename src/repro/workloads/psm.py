"""Parallel Protein Sequence Matching workload (Sections 4.2.2, 4.5).

A Blast-style service: the protein database is split into 24 partitions
of 1–1.5 GB; each of 8 service processes is statically assigned 3
partitions and serves queries by scanning its partitions, sending results
to an aggregator (not I/O, ignored here).

Figure 12 replays the I/O as fast as possible (8 replayers, 3.1 GB read
total).  Figure 15 replays with query boundaries preserved, partitions
created under the locality-driven placement policy, and only some
partitions initially co-located — the experiment watches the per-query
I/O time fall as Sorrento migrates partitions to their readers.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.workloads.trace import Trace

MB = 1 << 20

N_PARTITIONS = 24
N_PROCS = 8
PARTS_PER_PROC = 3

#: Paper: partitions are 1–1.5 GB; total read 3.1 GB over the Fig. 12 run.
PART_MIN = 1024 * MB
PART_MAX = 1536 * MB


def partition_sizes(scale: float = 1.0, seed: int = 13) -> List[int]:
    rng = random.Random(seed)
    return [int(rng.uniform(PART_MIN, PART_MAX) * scale)
            for _ in range(N_PARTITIONS)]


def partition_path(i: int) -> str:
    return f"/psm/part{i:02d}"


def assignments() -> List[List[int]]:
    """Process p owns partitions [3p, 3p+1, 3p+2] (static, disjoint)."""
    return [list(range(p * PARTS_PER_PROC, (p + 1) * PARTS_PER_PROC))
            for p in range(N_PROCS)]


def make_traces(sizes: List[int], *, n_queries: int, scan_fraction: float,
                query_gap: float = 0.0, chunk: int = 1 * MB,
                seed: int = 17, with_queries: bool = False) -> List[Trace]:
    """One trace per service process.

    Per query the process scans ``scan_fraction`` of each of its
    partitions in ``chunk``-size sequential reads starting at a random
    block (a Blast pass over the resident index region).
    """
    rng = random.Random(seed)
    traces = []
    for p, parts in enumerate(assignments()):
        tr = Trace(name=f"psm-proc{p}")
        for i in parts:
            tr.add("open", path=partition_path(i), mode="r")
        for _q in range(n_queries):
            if with_queries:
                tr.add("query_start")
            for i in parts:
                size = sizes[i]
                span = max(chunk, int(size * scan_fraction))
                start = rng.randrange(0, max(1, size - span))
                off = start
                while off < start + span:
                    n = min(chunk, start + span - off, size - off)
                    if n <= 0:
                        break
                    tr.add("read", path=partition_path(i), offset=off,
                           size=n, sequential=(off != start))
                    off += n
            if with_queries:
                tr.add("query_end", dur=query_gap)
        for i in parts:
            tr.add("close", path=partition_path(i))
        traces.append(tr)
    return traces


def populate(dep, sizes: List[int], placement: str = "load",
             hosts: List[str] = None, local_map: List[Tuple[int, str]] = None):
    """Create the partitions; ``local_map`` pins chosen partitions to
    specific providers (Figure 15 starts with only 4 of 24 co-located)."""
    pinned = dict(local_map or [])
    for i, size in enumerate(sizes):
        on = [pinned[i]] if i in pinned else hosts
        dep.preload_file(partition_path(i), size, degree=1,
                         placement=placement, on=on)
