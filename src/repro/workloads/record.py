"""Trace collection by client interception.

The paper built "two trace collection utilities: one intercepts file
system calls through glibc modification and the other intercepts PVFS
calls by changing the PVFS library".  This is the same idea for the
simulated systems: wrap any client stub and every call is recorded —
with start timestamps — into a :class:`Trace` that ``replay`` can later
drive against any other system.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.workloads.trace import Trace


class RecordingClient:
    """A transparent recorder around any system's client stub.

    Supports the common surface (open/read/write/close/unlink/mkdir and
    atomic_append); everything else passes through unrecorded.
    """

    def __init__(self, inner, name: str = "recorded"):
        self.inner = inner
        self.sim = inner.sim
        self.trace = Trace(name=name)
        self._t0: Optional[float] = None
        self._paths: Dict[int, str] = {}

    # ------------------------------------------------------------ plumbing
    def _now(self) -> float:
        if self._t0 is None:
            self._t0 = self.sim.now
        return self.sim.now - self._t0

    def __getattr__(self, name):
        return getattr(self.inner, name)

    # ------------------------------------------------------------ surface
    def open(self, path: str, mode: str = "r", create: bool = False, **kw):
        """Record an open, then delegate."""
        t = self._now()
        fh = yield from self.inner.open(path, mode, create=create, **kw)
        self.trace.add("open", t=t, path=path, mode=mode, create=create)
        self._paths[id(fh)] = path
        return fh

    def read(self, fh, offset: int, length: int, sequential: bool = False):
        """Record a read, then delegate."""
        t = self._now()
        data = yield from self.inner.read(fh, offset, length,
                                          sequential=sequential)
        self.trace.add("read", t=t, path=self._paths.get(id(fh), ""),
                       offset=offset, size=length, sequential=sequential)
        return data

    def write(self, fh, offset: int, length: int, data=None,
              sequential: bool = False):
        """Record a write, then delegate."""
        t = self._now()
        result = yield from self.inner.write(fh, offset, length, data=data,
                                             sequential=sequential)
        self.trace.add("write", t=t, path=self._paths.get(id(fh), ""),
                       offset=offset, size=length, sequential=sequential)
        return result

    def close(self, fh, **kw):
        """Record a close, then delegate."""
        t = self._now()
        version = yield from self.inner.close(fh, **kw)
        self.trace.add("close", t=t, path=self._paths.pop(id(fh), ""))
        return version

    def unlink(self, path: str):
        """Record an unlink, then delegate."""
        t = self._now()
        entry = yield from self.inner.unlink(path)
        self.trace.add("unlink", t=t, path=path)
        return entry

    def mkdir(self, path: str):
        """Delegate (namespace setup is not part of the I/O trace)."""
        result = yield from self.inner.mkdir(path)
        return result

    def atomic_append(self, path: str, length: int, data=None, **kw):
        """Recorded as open/write/close.  The append offset is recorded
        as 0 (the recorder cannot know the file size without an extra
        stat); replaying appends faithfully needs the caller to go
        through open/write/close so the true offsets are captured."""
        t = self._now()
        result = yield from self.inner.atomic_append(path, length,
                                                     data=data, **kw)
        self.trace.add("open", t=t, path=path, mode="w", create=True)
        self.trace.add("write", t=t, path=path, offset=0, size=length,
                       sequential=True)
        self.trace.add("close", t=t, path=path)
        return result
