"""Bulk I/O workloads (Sections 4.2.1 and 4.3).

Figure 11's microbenchmarks: ``bulkread`` repeatedly reads 4 MB at random
4 KB-aligned offsets from a set of 512 MB files; ``bulkwrite`` writes
4 MB likewise.  Client processes access disjoint file sets; each client
moves a fixed volume (256 MB in the paper) per run.

Figure 13 uses continuous bulkread/bulkwrite processes whose completed
bytes are sampled every three seconds.
"""

from __future__ import annotations

import random
from typing import List, Optional

MB = 1 << 20
REQUEST = 4 * MB
ALIGN = 4 * 1024


def populate(dep, n_files: int, file_size: int, prefix: str = "/bulk",
             degree: int = 1) -> List[str]:
    """Pre-populate the dataset via direct state injection."""
    paths = [f"{prefix}/file{i:04d}" for i in range(n_files)]
    for p in paths:
        dep.preload_file(p, file_size, degree=degree)
    return paths


def _random_offset(rng: random.Random, file_size: int) -> int:
    return rng.randrange(0, max(1, (file_size - REQUEST) // ALIGN)) * ALIGN


def bulk_client(client, paths: List[str], total_bytes: int, *,
                write: bool, rng: random.Random, file_size: int,
                request: int = REQUEST, progress: Optional[list] = None,
                deadline: Optional[float] = None):
    """Generator: move ``total_bytes`` in ``request``-size random I/Os."""
    sim = client.sim
    moved = 0
    handles = {}
    while moved < total_bytes and (deadline is None or sim.now < deadline):
        path = rng.choice(paths)
        fh = handles.get(path)
        try:
            if fh is None:
                fh = yield from client.open(path, "w" if write else "r")
                handles[path] = fh
            off = _random_offset(rng, file_size)
            if write:
                yield from client.write(fh, off, request)
            else:
                yield from client.read(fh, off, request)
            moved += request
            if progress is not None:
                progress.append((sim.now, request))
            if write:
                # Each request is an independent update: commit it so the
                # version scheme (and replica propagation) is exercised.
                commit = getattr(client, "commit", None)
                if commit is not None:
                    yield from commit(fh)
        except Exception:
            handles.pop(path, None)
            yield sim.timeout(0.2)
    for fh in handles.values():
        try:
            yield from client.close(fh)
        except Exception:
            pass
    return moved


def run_bulk(dep, n_clients: int, *, write: bool, paths: List[str],
             file_size: int, per_client_bytes: int = 256 * MB,
             seed: int = 7, max_seconds: float = 3600.0):
    """Figure 11 driver: aggregate MB/s for ``n_clients`` movers.

    Clients get disjoint slices of the file set, as in the paper.
    """
    clients = dep.clients_on_compute(n_clients)
    share = max(1, len(paths) // n_clients)
    done_at = []

    def one(i, c):
        mine = paths[i * share:(i + 1) * share] or paths[-share:]
        rng = random.Random(seed + i)
        yield from bulk_client(c, mine, per_client_bytes, write=write,
                               rng=rng, file_size=file_size)
        done_at.append(c.sim.now)

    t0 = dep.sim.now
    procs = [dep.sim.process(one(i, c)) for i, c in enumerate(clients)]
    dep.sim.run(until=t0 + max_seconds)
    if not all(p.triggered for p in procs):
        raise RuntimeError("bulk run did not finish within the time cap")
    elapsed = max(done_at) - t0
    return n_clients * per_client_bytes / MB / elapsed
