"""Ask Jeeves crawler workload (Section 4.4, Figure 14).

The paper's statistical facts, reproduced synthetically:

* crawlers get disjoint seed-URL/domain sets; pages from one domain go to
  a single file, appended as they arrive;
* "the number of pages from a single domain can range from hundreds to
  millions" — heavy-tailed (Zipf) domain sizes;
* "there is typically a speed discrepancy of more than ten folds among
  crawlers" — lognormal per-crawler fetch rates;
* crawl latency is emulated by blocking between appends;
* page files are not replicated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

KB = 1 << 10
MB = 1 << 20

PAGE_BYTES = 12 * KB


@dataclass
class CrawlerPlan:
    """One crawler's assignment: domains and a fetch rate."""

    name: str
    domains: List[str]
    domain_pages: List[int]
    pages_per_second: float

    @property
    def total_bytes(self) -> int:
        return sum(self.domain_pages) * PAGE_BYTES


def make_plans(n_crawlers: int = 50, domains_per_crawler: int = 6,
               total_bytes: int = 2 * 1024 * MB, zipf_s: float = 0.95,
               max_domain_share: float = 0.12,
               speed_spread: float = 10.0, seed: int = 23) -> List[CrawlerPlan]:
    """Build crawler assignments with the paper's skew properties.

    Domain sizes are Zipf with the head capped at ``max_domain_share`` of
    the total: the paper's largest domains (millions of pages) were
    ~5-10% of the 243 GB corpus, not half of it.
    """
    rng = random.Random(seed)
    n_domains = n_crawlers * domains_per_crawler
    # Zipf page counts, scaled so the sum matches total_bytes.
    raw = [1.0 / (k + 1) ** zipf_s for k in range(n_domains)]
    cap = max_domain_share * sum(raw)
    raw = [min(r, cap) for r in raw]
    rng.shuffle(raw)
    total_pages = total_bytes // PAGE_BYTES
    scale = total_pages / sum(raw)
    pages = [max(1, int(r * scale)) for r in raw]
    # Lognormal speeds with >= `speed_spread` ratio between p95 and p5.
    import math
    sigma = math.log(speed_spread) / 3.29  # p95/p5 = exp(3.29 sigma)
    speeds = [math.exp(rng.gauss(0.0, sigma)) for _ in range(n_crawlers)]
    plans = []
    for c in range(n_crawlers):
        dom = [f"/crawl/c{c:02d}-d{j}" for j in range(domains_per_crawler)]
        counts = pages[c * domains_per_crawler:(c + 1) * domains_per_crawler]
        plans.append(CrawlerPlan(
            name=f"crawler{c:02d}", domains=dom, domain_pages=counts,
            pages_per_second=speeds[c] * 8.0,
        ))
    return plans


def crawler_proc(client, plan: CrawlerPlan, duration: float,
                 rng: random.Random, batch_pages: int = 16,
                 create_params: dict = None):
    """Generator: crawl until done or the deadline.

    Pages append to the current domain's file in batches (crawlers buffer
    pages); the think time between batches reflects the crawler's speed
    (Internet latency emulation).
    """
    sim = client.sim
    deadline = sim.now + duration
    work = [(d, n) for d, n in zip(plan.domains, plan.domain_pages)]
    handles = {}
    offsets = {}
    for domain, n_pages in work:
        remaining = n_pages
        failures = 0
        while remaining > 0 and sim.now < deadline and failures < 5:
            batch = min(batch_pages, remaining)
            think = batch / plan.pages_per_second
            yield sim.timeout(rng.uniform(0.5, 1.5) * think)
            try:
                fh = handles.get(domain)
                if fh is None:
                    fh = yield from client.open(domain, "w", create=True,
                                                **(create_params or {}))
                    handles[domain] = fh
                    offsets[domain] = getattr(fh, "size", 0)
                nbytes = batch * PAGE_BYTES
                yield from client.write(fh, offsets[domain], nbytes,
                                        sequential=True)
                offsets[domain] += nbytes
                commit = getattr(client, "commit", None)
                if commit is not None:
                    yield from commit(fh)
            except Exception:
                failures += 1
                handles.pop(domain, None)
                yield sim.timeout(1.0)
                continue
            failures = 0
            remaining -= batch
        fh = handles.pop(domain, None)
        if fh is not None:
            try:
                yield from client.close(fh)
            except Exception:
                pass
    return plan.name
