"""Trace replay engine.

Three pacing modes, matching how the paper drove each experiment:

* ``asap`` — "the trace replayers are launched simultaneously, and they
  issue requests sequentially as fast as they can" (BTIO, PSM Fig. 12);
* ``paced`` — honour each record's timestamp gap (crawlers "emulate the
  effect of Internet latency ... by blocking themselves for the same
  amount of time", Fig. 14);
* ``query`` — as-fast-as-possible within a query, then block for the gap
  between the query-end mark and the next query-start (PSM Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.workloads.trace import Trace


@dataclass
class ReplayStats:
    """What one replayer observed."""

    name: str
    started_at: float = 0.0
    finished_at: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0
    requests: int = 0
    errors: int = 0
    op_seconds: Dict[str, float] = field(default_factory=dict)
    query_io_times: List[tuple] = field(default_factory=list)
    #   (query_end_sim_time, io_seconds) per query (Figure 15's metric)

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at

    def rate(self, kind: str = "read") -> float:
        """Average MB/s over the replay."""
        nbytes = self.bytes_read if kind == "read" else self.bytes_written
        return nbytes / (1 << 20) / self.elapsed if self.elapsed > 0 else 0.0


def replay(client, trace: Trace, mode: str = "asap",
           stats: Optional[ReplayStats] = None,
           progress: Optional[list] = None):
    """Generator: replay ``trace`` through ``client`` (any system's stub).

    ``progress``, when given, receives ``(sim_time, bytes_moved)`` tuples
    after every data request — the experiments use it for time-series
    plots (Figure 13).
    """
    if mode not in ("asap", "paced", "query"):
        raise ValueError(f"unknown replay mode {mode!r}")
    sim = client.sim
    st = stats or ReplayStats(name=trace.name)
    st.started_at = sim.now
    handles: Dict[str, object] = {}
    origin = sim.now
    prev_t = 0.0
    query_io = 0.0
    in_query = False

    for rec in trace:
        if mode == "paced" and rec.t > prev_t:
            # Honour the absolute schedule: wait out whatever think time
            # the original run spent before this request.
            elapsed = sim.now - origin
            if rec.t > elapsed:
                yield sim.timeout(rec.t - elapsed)
        prev_t = rec.t

        if rec.op == "think":
            yield sim.timeout(rec.dur)
            continue
        if rec.op == "query_start":
            in_query = True
            query_io = 0.0
            continue
        if rec.op == "query_end":
            in_query = False
            st.query_io_times.append((sim.now, query_io))
            if mode == "query" and rec.dur > 0:
                yield sim.timeout(rec.dur)
            continue

        t0 = sim.now
        try:
            if rec.op == "open":
                fh = yield from client.open(rec.path, rec.mode,
                                            create=rec.create)
                handles[rec.path] = fh
            elif rec.op == "read":
                fh = handles.get(rec.path)
                if fh is None:
                    fh = yield from client.open(rec.path, "r")
                    handles[rec.path] = fh
                yield from client.read(fh, rec.offset, rec.size,
                                       sequential=rec.sequential)
                st.bytes_read += rec.size
                if progress is not None:
                    progress.append((sim.now, rec.size))
            elif rec.op == "write":
                fh = handles.get(rec.path)
                if fh is None:
                    fh = yield from client.open(rec.path, "w", create=True)
                    handles[rec.path] = fh
                yield from client.write(fh, rec.offset, rec.size,
                                        sequential=rec.sequential)
                st.bytes_written += rec.size
                if progress is not None:
                    progress.append((sim.now, rec.size))
            elif rec.op == "close":
                fh = handles.pop(rec.path, None)
                if fh is not None:
                    yield from client.close(fh)
            elif rec.op == "unlink":
                yield from client.unlink(rec.path)
            st.requests += 1
        except Exception:
            st.errors += 1
        dt = sim.now - t0
        st.op_seconds[rec.op] = st.op_seconds.get(rec.op, 0.0) + dt
        if in_query and rec.op in ("read", "write"):
            query_io += dt

    # Close anything the trace left open.
    for fh in list(handles.values()):
        try:
            yield from client.close(fh)
        except Exception:
            st.errors += 1
    st.finished_at = sim.now
    return st
