"""NPB BTIO-style workload (Section 4.2.2, Figure 12).

BTIO (class B, "full" MPI-IO mode) solves a block-tridiagonal system on a
102³ grid over 200 timesteps, writing the 5-double solution vector every
5 steps (40 write phases) through collective list-writes, then reading
the whole solution back to verify.  With 4 processes that is ~2.7 GB
written and ~1.7 GB read in total, matching the paper's replay volumes.

The replay (like the paper's) disables version-based management so
concurrent byte-range writes to the shared solution file work ("we
disabled version-based data management to support concurrent writes to
different byte ranges"); the list-write becomes a sequence of strided
chunk writes.
"""

from __future__ import annotations

from typing import List

from repro.workloads.trace import Trace

MB = 1 << 20

#: Paper volumes for the 4-replayer class-B run.
TOTAL_WRITE = int(2.7 * 1024 * MB)
TOTAL_READ = int(1.7 * 1024 * MB)
WRITE_PHASES = 40

#: Each process's appendix of a write phase arrives as strided chunks
#: (one per cell row owned by the process).
CHUNKS_PER_PHASE = 24


def make_traces(n_procs: int = 4, scale: float = 1.0,
                path: str = "/btio/solution") -> List[Trace]:
    """One trace per MPI rank.

    ``scale`` shrinks the *volume* (fewer write phases), never the
    request granularity — scaled runs must keep the paper's per-request
    sizes or they exercise a different regime entirely.
    """
    total_write = int(TOTAL_WRITE * scale)
    total_read = int(TOTAL_READ * scale)
    per_proc_write = total_write // n_procs
    # Full-scale geometry: ~700 KB list-write chunks.
    full_chunk = TOTAL_WRITE // n_procs // WRITE_PHASES // CHUNKS_PER_PHASE
    phases = max(2, min(WRITE_PHASES, per_proc_write // (full_chunk * 4)))
    per_phase = per_proc_write // phases
    chunk = min(full_chunk, per_phase)
    file_size = total_write  # solution file holds everything written
    traces = []
    for rank in range(n_procs):
        tr = Trace(name=f"btio-rank{rank}")
        tr.add("open", path=path, mode="w", create=(rank == 0))
        pos = rank * per_proc_write
        for _phase in range(phases):
            # Strided list-write: rank's chunks interleave with others'.
            off = pos
            for _c in range(max(1, per_phase // chunk)):
                offset = min(off % file_size, file_size - chunk)
                tr.add("write", path=path, offset=max(0, offset),
                       size=chunk, sequential=False)
                off += chunk * n_procs
            pos += per_phase
        tr.add("close", path=path)
        # Verification read-back: large sequential reads of this rank's
        # share of the solution.
        tr.add("open", path=path, mode="r")
        per_proc_read = total_read // n_procs
        read_chunk = 4 * MB
        off = rank * per_proc_read
        while off < (rank + 1) * per_proc_read:
            n = min(read_chunk, (rank + 1) * per_proc_read - off)
            offset = max(0, min(off % file_size, file_size - n))
            tr.add("read", path=path, offset=offset, size=n, sequential=True)
            off += n
        tr.add("close", path=path)
        traces.append(tr)
    return traces


def create_shared_file(dep, path: str = "/btio/solution", scale: float = 1.0,
                       degree: int = 1) -> None:
    """Set up the shared, versioning-disabled solution file."""
    size = int(TOTAL_WRITE * scale)
    if hasattr(dep, "preload_file"):
        entry = dep.preload_file(path, size, degree=degree)
        if isinstance(entry, dict):
            entry["versioning"] = False
            from repro.core.namespace import _file_key
            dep.ns.db.put(_file_key(path), entry)
