"""Workload generators and trace replay (evaluation Section 4).

The paper evaluates with microbenchmarks plus trace replay of real
applications.  We generate traces with the distributional properties the
paper states (see DESIGN.md for the substitution table) and replay them
through any of the three systems' client stubs:

- :mod:`repro.workloads.smallfile` — Figure 9/10 small-file ops
- :mod:`repro.workloads.bulk` — Figure 11/13 bulkread/bulkwrite
- :mod:`repro.workloads.btio` — NPB BTIO class-B I/O pattern (Figure 12)
- :mod:`repro.workloads.psm` — parallel Protein Sequence Matching
  (Figures 12 and 15)
- :mod:`repro.workloads.crawler` — Ask Jeeves crawler (Figure 14)
- :mod:`repro.workloads.interactive` — desktop-style workload (the
  [9, 43] studies Section 4.1 cites)
- :mod:`repro.workloads.record` — trace collection by client interception
"""

from repro.workloads.replay import ReplayStats, replay
from repro.workloads.trace import Trace, TraceRecord

__all__ = ["Trace", "TraceRecord", "ReplayStats", "replay"]
