"""Baseline systems the paper compares against: NFS and PVFS.

Both are architectural models, not reimplementations: they reproduce the
structural properties the paper's evaluation exercises —

* **NFS**: one kernel-space server, very low per-op overhead, page-cached
  metadata, small wire chunks through a serialized daemon → unbeatable
  small-file latency, but a hard single-server ceiling on throughput and
  large I/O.
* **PVFS**: one metadata server storing each inode as a small file on its
  local FS (the paper's stated bottleneck) plus user-level I/O daemons
  with 64 KB striping → slow small-file ops, scalable large I/O.
"""

from repro.baselines.nfs import NFSDeployment
from repro.baselines.pvfs import PVFSDeployment

__all__ = ["NFSDeployment", "PVFSDeployment"]
