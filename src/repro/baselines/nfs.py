"""NFS v3 baseline: a single kernel-space file server.

Model highlights (why NFS behaves the way Figure 9-12 show):

* Kernel server with tightly-optimized request handling → tiny per-op CPU.
* Metadata updates are journaled asynchronously → create/unlink need no
  synchronous disk I/O.
* Writes are NFSv3 *unstable*: acknowledged from memory, flushed in the
  background.
* Reads hit the server page cache when resident, disk otherwise.  The
  cache is modelled as an LRU of per-file resident prefixes.
* The wire moves data in small chunks (rsize/wsize) through a serialized
  daemon, which is what pins large-I/O throughput near 8 MB/s and
  saturates sessions at several hundred per second.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster import ClusterSpec, Node
from repro.network import Fabric
from repro.runtime import CallPolicy, MetricsRegistry
from repro.sim import Resource, RngStreams, Simulator

#: NFS transfer size per wire request (Linux 2.4 over UDP commonly 8 KB).
CHUNK = 8 * 1024

#: Server CPU work per request, reference-GHz-seconds.
OP_CPU = 2.0e-4

#: Fixed per-request service time through the (serialized) nfsd path:
#: interrupt, RPC decode, VFS crossing.
SERVICE_SECONDS = 2.0e-4

#: Additional service time per payload byte (copies, checksums).  Sets
#: the large-I/O ceiling: ~8 KB chunks at ~0.92 ms each ≈ 8-10 MB/s.
BYTE_SECONDS = 7e-8

#: Client-side stub work per request.
CLIENT_CPU = 2e-5

#: Fraction of server memory usable as page cache.
CACHE_FRACTION = 0.5


class NFSError(Exception):
    """NFS-side failure (ENOENT and friends)."""
    pass


@dataclass
class NFSHandle:
    """An open NFS file session."""
    path: str
    mode: str
    closed: bool = False


class _PageCache:
    """LRU of per-file resident prefixes (bytes cached from offset 0).

    Random-offset reads into a partially resident file hit iff the offset
    falls inside the resident prefix — which makes the hit rate equal the
    resident fraction, the right aggregate behaviour for random access.
    """

    def __init__(self, budget: int):
        self.budget = budget
        self.resident: "OrderedDict[str, int]" = OrderedDict()
        self.used = 0

    def touch(self, path: str, nbytes: int) -> None:
        """Mark a prefix of the file resident (write or read fill)."""
        cur = self.resident.pop(path, 0)
        new = max(cur, nbytes)
        self.resident[path] = new
        self.used += new - cur
        while self.used > self.budget and self.resident:
            victim, size = self.resident.popitem(last=False)
            self.used -= size

    def resident_bytes(self, path: str) -> int:
        """How many leading bytes of the file are cached."""
        return self.resident.get(path, 0)

    def drop(self, path: str) -> None:
        """Evict a file entirely (unlink)."""
        self.used -= self.resident.pop(path, 0)


class NFSServer:
    """The single NFS daemon on one node."""

    def __init__(self, node: Node, params: Optional[dict] = None):
        if node.fs is None:
            raise ValueError("NFS server needs a local disk")
        self.node = node
        self.sim = node.sim
        self.files: Dict[str, int] = {}   # path -> size
        self.cache = _PageCache(int(node.spec.memory * CACHE_FRACTION))
        # nfsd threads serialize on shared kernel structures; model the
        # service path as a single queue.
        self.daemon = Resource(node.sim, capacity=1)
        self.ops = 0
        self.rpc = node.runtime
        for svc in ("nfs_lookup", "nfs_create", "nfs_read", "nfs_write",
                    "nfs_unlink", "nfs_commit"):
            self.rpc.register(svc, getattr(self, "_h_" + svc[4:]),
                              replace=True)
        node.spawn(self._flusher(), name="nfs-flush")
        self._dirty = 0

    def _serve(self, cpu_work: float, nbytes: int = 0):
        grant = self.daemon.request()
        yield grant
        try:
            self.ops += 1
            yield self.node.cpu(cpu_work)
            yield self.sim.timeout(SERVICE_SECONDS + nbytes * BYTE_SECONDS)
        finally:
            self.daemon.release()

    def _flusher(self):
        """Background write-back of dirty pages."""
        while True:
            yield self.sim.timeout(5.0)
            if self._dirty > 0 and self.node.fs is not None:
                nbytes, self._dirty = self._dirty, 0
                yield self.node.fs.device.io(nbytes, sequential=True)

    # ----------------------------------------------------------- handlers
    def _h_lookup(self, path: str, src: str):
        yield from self._serve(OP_CPU)
        size = self.files.get(path)
        if size is None:
            raise NFSError(f"ENOENT {path}")
        return {"size": size}, 96

    def _h_create(self, path: str, src: str):
        yield from self._serve(OP_CPU)
        if path in self.files:
            return {"size": self.files[path]}, 96
        self.files[path] = 0
        self._dirty += 4096  # journal entry, flushed asynchronously
        return {"size": 0}, 96

    def _h_read(self, req: dict, src: str):
        yield from self._serve(OP_CPU, req["length"])
        path, offset, length = req["path"], req["offset"], req["length"]
        size = self.files.get(path)
        if size is None:
            raise NFSError(f"ENOENT {path}")
        length = min(length, max(0, size - offset))
        if offset + length > self.cache.resident_bytes(path):
            # Page-cache miss: read from disk (sequential within a chunk
            # run; charge positioning once per request).
            yield self.node.fs.device.io(length, sequential=req.get("seq", False))
        return {"length": length}, 32 + length

    def _h_write(self, req: dict, src: str):
        yield from self._serve(OP_CPU, req["length"])
        path = req["path"]
        if path not in self.files:
            raise NFSError(f"ENOENT {path}")
        end = req["offset"] + req["length"]
        self.files[path] = max(self.files[path], end)
        self.cache.touch(path, min(self.files[path], end))
        self._dirty += req["length"]   # unstable write: flushed later
        return {"length": req["length"]}, 64

    def _h_unlink(self, path: str, src: str):
        yield from self._serve(OP_CPU)
        if path not in self.files:
            raise NFSError(f"ENOENT {path}")
        del self.files[path]
        self.cache.drop(path)
        self._dirty += 4096
        return True, 64

    def _h_commit(self, path: str, src: str):
        # NFSv3 COMMIT: our model's flusher owns durability; ack cheaply.
        yield from self._serve(OP_CPU)
        return True, 32


class NFSClient:
    """Client stub: chunked wire ops against the single server."""

    def __init__(self, node: Node, server: str, rpc_timeout: float = 5.0):
        self.node = node
        self.sim = node.sim
        self.server = server
        self.rpc_timeout = rpc_timeout
        self.rpc = node.runtime
        self.rpc.configure(policy=CallPolicy(timeout=rpc_timeout))
        self.stats = {"reads": 0, "writes": 0, "opens": 0}

    def _call(self, svc: str, payload, size: int = 64):
        result = yield from self.rpc.call(self.server, svc, payload, size=size)
        return result

    def open(self, path: str, mode: str = "r", create: bool = False, **_kw):
        """LOOKUP (optionally CREATE); returns a handle with the size."""
        self.stats["opens"] += 1
        yield self.node.cpu(CLIENT_CPU)
        try:
            resp = yield from self._call("nfs_lookup", path)
        except Exception:
            if not (create and mode == "w"):
                raise
            resp = yield from self._call("nfs_create", path)
        fh = NFSHandle(path=path, mode=mode)
        fh.size = resp["size"]
        return fh

    def read(self, fh: NFSHandle, offset: int, length: int,
             sequential: bool = False):
        """Chunked wire reads (rsize units) through the single server."""
        self.stats["reads"] += 1
        pos = offset
        end = offset + length
        first = True
        while pos < end:
            n = min(CHUNK, end - pos)
            yield self.node.cpu(CLIENT_CPU)
            yield from self._call("nfs_read", {
                "path": fh.path, "offset": pos, "length": n,
                "seq": sequential or not first,
            }, size=64)
            pos += n
            first = False
        return None

    def write(self, fh: NFSHandle, offset: int, length: int,
              data=None, sequential: bool = False):
        """Chunked unstable writes; durability comes from COMMIT/flusher."""
        self.stats["writes"] += 1
        pos = offset
        end = offset + length
        while pos < end:
            n = min(CHUNK, end - pos)
            yield self.node.cpu(CLIENT_CPU)
            yield from self._call("nfs_write", {
                "path": fh.path, "offset": pos, "length": n,
            }, size=64 + n)
            pos += n
        fh.size = max(getattr(fh, "size", 0), end)

    def close(self, fh: NFSHandle):
        """COMMIT on write handles (NFSv3 close-to-open semantics)."""
        if fh.closed:
            return
        fh.closed = True
        if fh.mode == "w":
            yield from self._call("nfs_commit", fh.path)

    def unlink(self, path: str):
        """REMOVE the file on the server."""
        result = yield from self._call("nfs_unlink", path)
        return result

    def mkdir(self, path: str):
        """Directories are implicit; record a marker entry."""
        yield from self._call("nfs_create", path + "/.dir")

    def atomic_append(self, path: str, length: int, data=None, **kw):
        """NFS has no atomic append; model the plain (racy) append."""
        fh = yield from self.open(path, "w", create=True)
        yield from self.write(fh, getattr(fh, "size", 0), length,
                              sequential=True)
        yield from self.close(fh)


class NFSDeployment:
    """A cluster with one NFS server; mirrors SorrentoDeployment's API."""

    def __init__(self, spec: ClusterSpec, server: Optional[str] = None,
                 seed: int = 0):
        self.spec = spec
        self.sim = Simulator()
        self.rngs = RngStreams(seed)
        self.fabric = Fabric(self.sim, latency=spec.latency)
        self.nodes = {s.name: Node(self.sim, self.fabric, s) for s in spec.nodes}
        self.metrics = MetricsRegistry()
        for node in self.nodes.values():
            node.runtime.configure(registry=self.metrics)
        server = server or spec.storage_nodes[0].name
        self.server_host = server
        self.server = NFSServer(self.nodes[server])
        self.clients = []

    def client_on(self, hostid: str) -> NFSClient:
        """An NFS client stub on the given node."""
        client = NFSClient(self.nodes[hostid], self.server_host)
        self.clients.append(client)
        return client

    def clients_on_compute(self, n: int):
        """n clients spread over the non-server nodes."""
        compute = [s.name for s in self.spec.nodes
                   if s.name != self.server_host]
        return [self.client_on(compute[i % len(compute)]) for i in range(n)]

    def warm_up(self, seconds: float = 0.5) -> None:
        """Idle spin-up (API parity with SorrentoDeployment)."""
        self.sim.run(until=self.sim.now + seconds)

    def run(self, gen, until=None):
        """Drive one client process to completion."""
        return self.sim.run_process(self.sim.process(gen), until=until)

    def preload_file(self, path: str, size: int, **_kw) -> None:
        """Benchmark setup: plant a file on the server without simulating
        the writes (not in the page cache, so reads go to disk)."""
        from repro.storage.filesystem import _File

        self.server.files[path] = size
        fs = self.server.node.fs
        fs.files["nfs:" + path] = _File(size=size, allocated=size)
        fs.used = min(fs.capacity, fs.used + size)
