"""PVFS baseline: metadata manager + user-level I/O daemons.

Architecture per Carns et al. [13] and the paper's observations:

* One **mgr** (metadata server).  Every file's metadata lives in a small
  file on the mgr's local FS — "representing each inode using a small
  file" is exactly what the paper credits for Sorrento's small-file win
  and PVFS's 64-sessions/s saturation.  Creates hit the mgr disk
  synchronously; lookups read the inode file (2 positioning I/Os).
* N **iods** (I/O daemons).  File data stripes round-robin across all
  iods in 64 KB units; clients talk to iods directly, so large I/O
  scales with the number of nodes until the Fast Ethernet links saturate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster import ClusterSpec, Node
from repro.network import Fabric
from repro.runtime import CallPolicy, MetricsRegistry
from repro.sim import RngStreams, Simulator, gather

#: PVFS default stripe unit.
STRIPE = 64 * 1024

#: mgr/iod per-request CPU (user-level daemons), reference-GHz-seconds.
OP_CPU = 3e-4

#: Client stub CPU per request.
CLIENT_CPU = 5e-5

#: Serial per-iod contact overhead during file creation (connection setup
#: and stripe-file handshake), seconds.
IOD_CONTACT = 2.5e-3


class PVFSError(Exception):
    """PVFS-side failure (ENOENT and friends)."""
    pass


@dataclass
class PVFSHandle:
    """An open PVFS file session."""
    path: str
    mode: str
    size: int = 0
    closed: bool = False


class PVFSManager:
    """The metadata server."""

    def __init__(self, node: Node, iods: List[str]):
        if node.fs is None:
            raise ValueError("PVFS mgr needs a local disk")
        self.node = node
        self.sim = node.sim
        self.iods = iods
        self.meta: Dict[str, dict] = {}
        self.ops = 0
        self.rpc = node.runtime
        for svc in ("pvfs_lookup", "pvfs_create", "pvfs_unlink",
                    "pvfs_setsize"):
            self.rpc.register(svc, getattr(self, "_h_" + svc[5:]),
                              replace=True)

    def _h_lookup(self, path: str, src: str):
        self.ops += 1
        yield self.node.cpu(OP_CPU)
        ent = self.meta.get(path)
        if ent is None:
            # Failed lookup still searches the directory on disk.
            yield self.node.fs.device.io(4096)
            raise PVFSError(f"ENOENT {path}")
        # dbpf: directory entry + inode file, two positioned reads.
        yield self.node.fs.device.io(4096)
        yield self.node.fs.device.io(4096)
        return dict(ent), 128

    def _h_create(self, path: str, src: str):
        self.ops += 1
        yield self.node.cpu(OP_CPU)
        if path in self.meta:
            return dict(self.meta[path]), 128
        # One synchronous inode-file write (this serializes the mgr disk
        # and produces the ~64-sessions/s ceiling of Figure 10).
        yield self.node.fs.device.io(4096)
        # Contact every iod to create its stripe file: serial handshakes,
        # parallel iod-side creations.
        for _ in self.iods:
            yield self.sim.timeout(IOD_CONTACT)

        def create_on(iod):
            yield from self.rpc.call(iod, "iod_create", path, size=96)

        yield from gather(self.sim, [create_on(i) for i in self.iods])
        self.meta[path] = {"size": 0, "niods": len(self.iods)}
        return dict(self.meta[path]), 128

    def _h_setsize(self, req: dict, src: str):
        """Close-time bookkeeping: open-count decrement + size update.

        The mgr persists it (one positioned write) — every session's
        close crosses the mgr disk, a big part of PVFS's small-op cost.
        """
        self.ops += 1
        yield self.node.cpu(OP_CPU)
        ent = self.meta.get(req["path"])
        if ent is not None and req["size"] > ent["size"]:
            ent["size"] = req["size"]
        yield self.node.fs.device.io(4096)
        return True, 48

    def _h_unlink(self, path: str, src: str):
        self.ops += 1
        yield self.node.cpu(OP_CPU)
        if path not in self.meta:
            raise PVFSError(f"ENOENT {path}")
        del self.meta[path]
        yield self.node.fs.device.io(4096)
        # iod stripe files are removed asynchronously (fast unlink acks,
        # Figure 9's PVFS unlink < its create).
        for iod in self.iods:
            yield self.sim.timeout(IOD_CONTACT / 2)
            self.rpc.send(iod, "iod_unlink", path, size=64)
        return True, 64


class PVFSIod:
    """One I/O daemon owning a stripe of every file."""

    def __init__(self, node: Node):
        if node.fs is None:
            raise ValueError("PVFS iod needs a local disk")
        self.node = node
        self.sim = node.sim
        self.rpc = node.runtime
        self.rpc.register("iod_create", self._h_create, replace=True)
        self.rpc.register("iod_unlink", self._h_unlink, replace=True)
        self.rpc.register("iod_read", self._h_read, replace=True)
        self.rpc.register("iod_write", self._h_write, replace=True)

    def _fname(self, path: str) -> str:
        return "pvfs:" + path

    def _h_create(self, path: str, src: str):
        yield self.node.cpu(OP_CPU)
        if not self.node.fs.exists(self._fname(path)):
            yield from self.node.fs.create(self._fname(path))
        return True, 48

    def _h_unlink(self, path: str, src: str):
        yield self.node.cpu(OP_CPU)
        if self.node.fs.exists(self._fname(path)):
            yield from self.node.fs.unlink(self._fname(path))

    def _h_read(self, req: dict, src: str):
        yield self.node.cpu(OP_CPU + req["length"] * 2e-8)
        name = self._fname(req["path"])
        if not self.node.fs.exists(name):
            raise PVFSError(f"ENOENT stripe {req['path']}")
        # dbpf attribute fetch precedes the data read; small files pay an
        # extra extent lookup (dbpf b-tree descent not yet cached).
        yield self.node.fs.device.io(4096)
        if self.node.fs.size_of(name) < (1 << 20):
            yield self.node.fs.device.io(4096)
        n = min(req["length"], self.node.fs.size_of(name))
        if n > 0:
            yield from self.node.fs.read(name, 0, n,
                                         sequential=req.get("seq", False))
        return {"length": n}, 32 + req["length"]

    def _h_write(self, req: dict, src: str):
        yield self.node.cpu(OP_CPU + req["length"] * 2e-8)
        name = self._fname(req["path"])
        if not self.node.fs.exists(name):
            yield from self.node.fs.create(name)
        # dbpf attribute update (+ extent allocation for small files).
        yield self.node.fs.device.io(4096)
        if self.node.fs.size_of(name) < (1 << 20):
            yield self.node.fs.device.io(4096)
        offset = min(req["local_offset"], self.node.fs.size_of(name))
        yield from self.node.fs.write(name, offset, req["length"],
                                      sequential=req.get("seq", False))
        return {"length": req["length"]}, 64


class PVFSClient:
    """Client library (the paper modified apps to call it directly)."""

    def __init__(self, node: Node, mgr: str, iods: List[str],
                 rpc_timeout: float = 5.0):
        self.node = node
        self.sim = node.sim
        self.mgr = mgr
        self.iods = iods
        self.rpc_timeout = rpc_timeout
        self.rpc = node.runtime
        self.rpc.configure(policy=CallPolicy(timeout=rpc_timeout))
        self.stats = {"reads": 0, "writes": 0, "opens": 0}

    def _call(self, host, svc, payload, size=64):
        result = yield from self.rpc.call(host, svc, payload, size=size)
        return result

    # ------------------------------------------------------------- session
    def open(self, path: str, mode: str = "r", create: bool = False, **_kw):
        """mgr lookup (optionally create with per-iod stripe files)."""
        self.stats["opens"] += 1
        yield self.node.cpu(CLIENT_CPU)
        try:
            ent = yield from self._call(self.mgr, "pvfs_lookup", path)
        except Exception:
            if not (create and mode == "w"):
                raise
            ent = yield from self._call(self.mgr, "pvfs_create", path)
        fh = PVFSHandle(path=path, mode=mode, size=ent["size"])
        return fh

    def _per_iod(self, offset: int, length: int) -> Dict[int, int]:
        """Bytes of [offset, offset+length) landing on each iod index."""
        out: Dict[int, int] = {}
        pos, end = offset, offset + length
        while pos < end:
            block = pos // STRIPE
            take = min(STRIPE - pos % STRIPE, end - pos)
            idx = block % len(self.iods)
            out[idx] = out.get(idx, 0) + take
            pos += take
        return out

    def read(self, fh: PVFSHandle, offset: int, length: int,
             sequential: bool = False):
        """Striped read: every touched iod serves its share in parallel."""
        self.stats["reads"] += 1
        yield self.node.cpu(CLIENT_CPU)
        parts = self._per_iod(offset, length)

        def read_iod(idx, nbytes):
            yield from self._call(self.iods[idx], "iod_read", {
                "path": fh.path, "length": nbytes, "seq": sequential,
            }, size=64)

        yield from gather(self.sim, [read_iod(i, n) for i, n in parts.items()])
        return None

    def write(self, fh: PVFSHandle, offset: int, length: int,
              data=None, sequential: bool = False):
        """Striped write across the iods."""
        self.stats["writes"] += 1
        yield self.node.cpu(CLIENT_CPU)
        parts = self._per_iod(offset, length)

        def write_iod(idx, nbytes):
            yield from self._call(self.iods[idx], "iod_write", {
                "path": fh.path, "length": nbytes,
                "local_offset": offset // max(1, len(self.iods)),
                "seq": sequential,
            }, size=64 + nbytes)

        yield from gather(self.sim, [write_iod(i, n) for i, n in parts.items()])
        fh.size = max(fh.size, offset + length)

    def close(self, fh: PVFSHandle):
        """Report size/open-count to the mgr (one positioned write)."""
        if fh.closed:
            return
        fh.closed = True
        # Every close reports back to the mgr (open-count tracking).
        yield from self._call(self.mgr, "pvfs_setsize",
                              {"path": fh.path, "size": fh.size}, size=64)

    def unlink(self, path: str):
        """mgr removes the inode file; stripe cleanup is asynchronous."""
        result = yield from self._call(self.mgr, "pvfs_unlink", path)
        return result

    def mkdir(self, path: str):
        """Directories are implicit; record a marker entry."""
        yield from self._call(self.mgr, "pvfs_create", path + "/.dir")

    def atomic_append(self, path: str, length: int, data=None, **kw):
        """Plain (non-atomic) append — PVFS has no commit protocol."""
        fh = yield from self.open(path, "w", create=True)
        yield from self.write(fh, fh.size, length, sequential=True)
        yield from self.close(fh)


class PVFSDeployment:
    """PVFS-n: mgr + n iods; mirrors SorrentoDeployment's surface."""

    def __init__(self, spec: ClusterSpec, n_iods: Optional[int] = None,
                 seed: int = 0):
        self.spec = spec
        self.sim = Simulator()
        self.rngs = RngStreams(seed)
        self.fabric = Fabric(self.sim, latency=spec.latency)
        self.nodes = {s.name: Node(self.sim, self.fabric, s) for s in spec.nodes}
        self.metrics = MetricsRegistry()
        for node in self.nodes.values():
            node.runtime.configure(registry=self.metrics)
        storage = [s.name for s in spec.storage_nodes]
        n_iods = n_iods if n_iods is not None else len(storage) - 1
        self.mgr_host = storage[0]
        self.iod_hosts = storage[1:1 + n_iods] if len(storage) > n_iods \
            else storage[:n_iods]
        if not self.iod_hosts:
            raise ValueError("PVFS needs at least one iod")
        self.iods = [PVFSIod(self.nodes[h]) for h in self.iod_hosts]
        self.mgr = PVFSManager(self.nodes[self.mgr_host], self.iod_hosts)
        self.clients = []

    def client_on(self, hostid: str) -> PVFSClient:
        """A PVFS client stub on the given node."""
        client = PVFSClient(self.nodes[hostid], self.mgr_host, self.iod_hosts)
        self.clients.append(client)
        return client

    def clients_on_compute(self, n: int):
        """n clients spread over nodes not used by mgr/iods."""
        used = {self.mgr_host, *self.iod_hosts}
        compute = [s.name for s in self.spec.nodes if s.name not in used]
        if not compute:
            compute = self.iod_hosts
        return [self.client_on(compute[i % len(compute)]) for i in range(n)]

    def warm_up(self, seconds: float = 0.5) -> None:
        """Idle spin-up (API parity with SorrentoDeployment)."""
        self.sim.run(until=self.sim.now + seconds)

    def run(self, gen, until=None):
        """Drive one client process to completion."""
        return self.sim.run_process(self.sim.process(gen), until=until)

    def preload_file(self, path: str, size: int, **_kw) -> None:
        """Benchmark setup: plant a striped file without simulating writes."""
        from repro.storage.filesystem import _File

        self.mgr.meta[path] = {"size": size, "niods": len(self.iod_hosts)}
        per = -(-size // len(self.iod_hosts))
        for iod in self.iods:
            iod.node.fs.files["pvfs:" + path] = _File(size=per, allocated=per)
            iod.node.fs.used = min(iod.node.fs.capacity,
                                   iod.node.fs.used + per)
