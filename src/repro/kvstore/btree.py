"""An in-memory B+-tree with ordered iteration.

Keys must be mutually comparable (the namespace uses strings).  Values are
arbitrary objects.  Leaves are chained for efficient range scans, which the
namespace server uses for directory listings (all entries under a common
key prefix).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf")

    def __init__(self, leaf: bool):
        self.keys: List[Any] = []
        self.children: Optional[List["_Node"]] = None if leaf else []
        self.values: Optional[List[Any]] = [] if leaf else None
        self.next_leaf: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.values is not None


class BTree:
    """B+-tree: ``order`` is the max number of keys per node."""

    def __init__(self, order: int = 32):
        if order < 3:
            raise ValueError("order must be >= 3")
        self.order = order
        self._root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- lookup ----------------------------------------------------------
    def _find_leaf(self, key) -> _Node:
        node = self._root
        while not node.is_leaf:
            i = bisect.bisect_right(node.keys, key)
            node = node.children[i]
        return node

    def get(self, key, default=None):
        """Value for key, or default."""
        leaf = self._find_leaf(key)
        i = bisect.bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            return leaf.values[i]
        return default

    def __contains__(self, key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    # -- insertion ---------------------------------------------------------
    def put(self, key, value) -> None:
        """Insert or overwrite; splits nodes on overflow."""
        root = self._root
        split = self._insert(root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Node(leaf=False)
            new_root.keys = [sep]
            new_root.children = [root, right]
            self._root = new_root

    def _insert(self, node: _Node, key, value) -> Optional[Tuple[Any, _Node]]:
        if node.is_leaf:
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i] = value
                return None
            node.keys.insert(i, key)
            node.values.insert(i, value)
            self._size += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        i = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[i], key, value)
        if split is not None:
            sep, right = split
            node.keys.insert(i, sep)
            node.children.insert(i + 1, right)
            if len(node.keys) > self.order:
                return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node) -> Tuple[Any, _Node]:
        mid = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> Tuple[Any, _Node]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return sep, right

    # -- deletion ---------------------------------------------------------
    # Lazy deletion: remove from the leaf; underflowed nodes are tolerated
    # (tree height only shrinks on rebuild).  This keeps the code compact
    # while preserving all ordering invariants; checkpoints rebuild the
    # tree compactly.
    def delete(self, key) -> bool:
        """Remove if present; returns whether it existed."""
        leaf = self._find_leaf(key)
        i = bisect.bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            leaf.keys.pop(i)
            leaf.values.pop(i)
            self._size -= 1
            return True
        return False

    # -- iteration ---------------------------------------------------------
    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def items(self, low=None, high=None) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, value) pairs with low <= key < high, in order."""
        if low is None:
            leaf = self._leftmost_leaf()
            i = 0
        else:
            leaf = self._find_leaf(low)
            i = bisect.bisect_left(leaf.keys, low)
        while leaf is not None:
            while i < len(leaf.keys):
                key = leaf.keys[i]
                if high is not None and key >= high:
                    return
                yield key, leaf.values[i]
                i += 1
            leaf = leaf.next_leaf
            i = 0

    def keys(self, low=None, high=None) -> Iterator[Any]:
        """Ordered keys with low <= key < high."""
        for k, _ in self.items(low, high):
            yield k

    def prefix_items(self, prefix: str) -> Iterator[Tuple[str, Any]]:
        """All items whose (string) key starts with ``prefix``."""
        for k, v in self.items(low=prefix):
            if not k.startswith(prefix):
                return
            yield k, v

    # -- invariant check (used by property tests) ------------------------
    def check_invariants(self) -> None:
        """Assert ordering/fanout/depth invariants (property tests)."""
        def walk(node, lo, hi, depth) -> int:
            assert node.keys == sorted(node.keys), "unsorted node keys"
            for k in node.keys:
                assert (lo is None or k >= lo) and (hi is None or k < hi), \
                    "key outside separator bounds"
            if node.is_leaf:
                assert len(node.keys) == len(node.values)
                return depth
            assert len(node.children) == len(node.keys) + 1
            depths = set()
            bounds = [lo] + node.keys + [hi]
            for i, child in enumerate(node.children):
                depths.add(walk(child, bounds[i], bounds[i + 1], depth + 1))
            assert len(depths) == 1, "leaves at different depths"
            return depths.pop()

        walk(self._root, None, None, 0)
        assert self._size == sum(1 for _ in self.items())
