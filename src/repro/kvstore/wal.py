"""Write-ahead log on simulated stable storage.

The log survives process crashes (losing in-memory state) but is plain
Python underneath — "stable storage" is a list the crash model never
clears.  Byte accounting lets the owning daemon charge simulated disk time
for appends and checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

PUT = "put"
DELETE = "del"


@dataclass(frozen=True)
class WalRecord:
    """One logged mutation."""

    lsn: int
    op: str            # PUT or DELETE
    key: Any
    value: Any = None

    def approx_bytes(self) -> int:
        """Rough on-disk footprint, for disk-time charging."""
        key_len = len(self.key) if isinstance(self.key, (str, bytes)) else 16
        val_len = _value_bytes(self.value)
        return 24 + key_len + val_len


def _value_bytes(value: Any) -> int:
    if value is None:
        return 0
    if isinstance(value, (str, bytes)):
        return len(value)
    if isinstance(value, dict):
        return 16 + sum(_value_bytes(k) + _value_bytes(v) for k, v in value.items())
    if isinstance(value, (list, tuple)):
        return 8 + sum(_value_bytes(v) for v in value)
    return 16


class WriteAheadLog:
    """Append-only mutation log with truncation at checkpoints."""

    def __init__(self) -> None:
        self._records: List[WalRecord] = []
        self._base_lsn = 0    # lsn of the first retained record
        self._next_lsn = 0
        self.bytes_appended = 0

    def append(self, op: str, key: Any, value: Any = None,
               nbytes: Optional[int] = None) -> Tuple[WalRecord, int]:
        """Log a mutation; returns (record, approx bytes written).

        ``nbytes`` pre-supplies the record's approximate footprint when
        the caller already knows it — the bulk-preload path writes many
        same-shaped values and computes the recursive byte walk once.
        """
        if op not in (PUT, DELETE):
            raise ValueError(f"bad op {op!r}")
        rec = WalRecord(self._next_lsn, op, key, value)
        self._next_lsn += 1
        self._records.append(rec)
        if nbytes is None:
            nbytes = rec.approx_bytes()
        self.bytes_appended += nbytes
        return rec, nbytes

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    def __len__(self) -> int:
        return len(self._records)

    def replay(self, since_lsn: int = 0) -> Iterator[WalRecord]:
        """Records with lsn >= since_lsn, in order."""
        start = max(0, since_lsn - self._base_lsn)
        yield from self._records[start:]

    def truncate_before(self, lsn: int) -> None:
        """Drop records older than ``lsn`` (safe once checkpointed)."""
        if lsn <= self._base_lsn:
            return
        drop = min(lsn, self._next_lsn) - self._base_lsn
        del self._records[:drop]
        self._base_lsn += drop
