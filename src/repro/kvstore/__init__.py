"""Embedded key-value store — the repo's Berkeley DB substitute.

The paper stores the namespace server's directory tree "in a database
using Berkeley DB" with "a combination of write-ahead logging and
checkpointing" for disk-failure recovery (Section 3.1).  This package
provides the same contract from scratch: an ordered store (B+-tree) with a
WAL and checkpoints, recoverable after losing all in-memory state.

The store itself is synchronous; the namespace server charges simulated
disk time for the bytes the store reports written.
"""

from repro.kvstore.btree import BTree
from repro.kvstore.db import KVStore
from repro.kvstore.wal import WalRecord, WriteAheadLog

__all__ = ["BTree", "KVStore", "WalRecord", "WriteAheadLog"]
