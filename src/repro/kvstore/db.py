"""The recoverable key-value store: B+-tree + WAL + checkpoints.

Usage contract (mirrors how the namespace server uses Berkeley DB):

* every mutation is WAL-logged before it is applied in memory;
* ``checkpoint()`` snapshots the tree to stable storage and truncates
  the log;
* ``crash()`` throws away everything in memory; ``recover()`` rebuilds
  from the last checkpoint plus the WAL tail.

The store reports bytes written per operation so the owning daemon can
charge simulated disk time.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.kvstore.btree import BTree
from repro.kvstore.wal import DELETE, PUT, WriteAheadLog


class KVStore:
    """An ordered, crash-recoverable map."""

    def __init__(self, order: int = 32):
        self._order = order
        self._tree: Optional[BTree] = BTree(order)
        # Stable storage: survives crash().
        self._wal = WriteAheadLog()
        self._checkpoint: List[Tuple[Any, Any]] = []
        self._checkpoint_lsn = 0

    # -- state guards -----------------------------------------------------
    def _live(self) -> BTree:
        if self._tree is None:
            raise RuntimeError("store is crashed; call recover() first")
        return self._tree

    @property
    def is_crashed(self) -> bool:
        return self._tree is None

    # -- mutations ---------------------------------------------------------
    def put(self, key, value, nbytes: Optional[int] = None) -> int:
        """Insert/overwrite; returns bytes written to the WAL.

        ``nbytes`` optionally pre-supplies the WAL footprint (see
        :meth:`WriteAheadLog.append`)."""
        tree = self._live()
        _, nbytes = self._wal.append(PUT, key, value, nbytes=nbytes)
        tree.put(key, value)
        return nbytes

    def delete(self, key) -> int:
        """Delete if present; returns bytes written to the WAL."""
        tree = self._live()
        _, nbytes = self._wal.append(DELETE, key)
        tree.delete(key)
        return nbytes

    # -- reads ------------------------------------------------------------
    def get(self, key, default=None):
        """Read a key (memory-resident tree)."""
        return self._live().get(key, default)

    def __contains__(self, key) -> bool:
        return key in self._live()

    def __len__(self) -> int:
        return len(self._live())

    def items(self, low=None, high=None) -> Iterator[Tuple[Any, Any]]:
        """Ordered (key, value) range scan."""
        return self._live().items(low, high)

    def prefix_items(self, prefix: str) -> Iterator[Tuple[str, Any]]:
        """All items whose string key starts with prefix."""
        return self._live().prefix_items(prefix)

    # -- durability ---------------------------------------------------------
    def checkpoint(self) -> int:
        """Snapshot to stable storage; returns bytes written."""
        tree = self._live()
        self._checkpoint = list(tree.items())
        self._checkpoint_lsn = self._wal.next_lsn
        self._wal.truncate_before(self._checkpoint_lsn)
        nbytes = sum(
            24 + (len(k) if isinstance(k, (str, bytes)) else 16)
            for k, _ in self._checkpoint
        )
        return nbytes

    def crash(self) -> None:
        """Lose all volatile state (tree); stable storage survives."""
        self._tree = None

    def recover(self) -> int:
        """Rebuild the tree from checkpoint + WAL; returns records replayed."""
        tree = BTree(self._order)
        for k, v in self._checkpoint:
            tree.put(k, v)
        replayed = 0
        for rec in self._wal.replay(self._checkpoint_lsn):
            if rec.op == PUT:
                tree.put(rec.key, rec.value)
            else:
                tree.delete(rec.key)
            replayed += 1
        self._tree = tree
        return replayed
