"""Per-provider storage engine: page cache, write-back, disk scheduling.

The paper's small-file analysis (Section 6.2, Figures 9-10) credits NFS's
small-op advantage to the kernel buffer cache absorbing disk positioning
costs.  This module gives providers the same memory hierarchy a real
Sorrento node had:

* a bounded LRU **page cache** (``page_size`` granularity, dirty/clean
  tracking) — repeated index-segment and hot-data reads cost a memcpy
  instead of seek + half-rotation;
* **write-back** — writes land in cache and acknowledge after a
  memory-speed copy charge; dirty pages flush in batches from a
  deterministic background flusher (period ``flush_interval``, or early
  when the dirty fraction crosses ``dirty_watermark``).  Durability
  semantics are unchanged: ``seg_commit``/2PC-prepare and replication
  ``seg_fetch`` force a synchronous flush of the affected segment before
  answering;
* a **coalescing disk scheduler** — requests arriving in the same
  simulated instant are batched (plug/unplug), sorted elevator-style by
  ``(segment file, offset)``, and adjacent same-file requests merge into
  one positioned transfer.  Foreground (urgent) requests sort ahead of
  background flush writes so a flush storm cannot starve reads;
* **read-ahead** — a sequential read that misses extends its fetch by
  ``readahead_pages`` pages, installed clean for the next request.

The engine is *timing and durability* state only: segment content lives
in :class:`~repro.core.segment.SegmentStore` extents.  A node crash
drops every dirty page; the set of backing files that lost dirty data is
reported through :meth:`take_lost` so the provider can discard the
uncommitted versions whose writes were only ever acknowledged from cache.

Determinism: the engine adds events only when enabled (``cache_bytes``
> 0); with it off the file system talks to the raw device exactly as
before, bit-identical to the recorded goldens.  The flusher's phase is
staggered per host by a CRC of the host name — no RNG stream is consumed.

Modeling notes: flushes write whole pages, so a flush transfer is
usually larger than the logical bytes written (this page-rounding plays
the role the foreground FFS near-full penalty plays on the write-through
path).  Faults installed by :mod:`repro.faults` apply where the
scheduler issues the merged request to the device, so a ``DiskFault``
slowdown/error hits coalesced batches exactly once each.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Set, Tuple

from repro.sim import Event, Simulator
from repro.storage.disk import DiskIOError

MB = 1 << 20

#: Memory-copy bandwidth for cache hits and write-back acknowledgements
#: (era-appropriate SDRAM copy rate; the data already crossed the NIC).
MEMCPY_BPS = 400 * MB


class _IoReq:
    """One request queued at the scheduler."""

    __slots__ = ("name", "offset", "nbytes", "sequential", "urgent",
                 "event", "seq")

    def __init__(self, name: Optional[str], offset: int, nbytes: int,
                 sequential: bool, urgent: bool, event: Event, seq: int):
        self.name = name
        self.offset = offset
        self.nbytes = nbytes
        self.sequential = sequential
        self.urgent = urgent
        self.event = event
        self.seq = seq


class StorageEngine:
    """Buffer cache + request scheduler in front of one Disk/Raid0."""

    def __init__(self, sim: Simulator, device, *, page_size: int = 16 * 1024,
                 cache_bytes: int = 64 * MB, writeback: bool = True,
                 flush_interval: float = 0.5, dirty_watermark: float = 0.25,
                 readahead_pages: int = 2, metrics=None, host: str = ""):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.sim = sim
        self.device = device
        self.page_size = page_size
        self.max_pages = max(1, cache_bytes // page_size)
        self.writeback = writeback
        self.flush_interval = flush_interval
        self.dirty_watermark = dirty_watermark
        self.readahead_pages = max(0, readahead_pages)
        self.metrics = metrics
        self.host = host
        # LRU: insertion order is recency; value is the dirty flag.
        self._pages: Dict[Tuple[str, int], bool] = {}
        self._dirty = 0
        # Background flush writes in flight, per backing file (crash
        # treats them as lost alongside still-dirty pages).
        self._inflight: Dict[str, int] = {}
        self._lost: Set[str] = set()
        # Scheduler plug state.
        self._queue: List[_IoReq] = []
        self._plugged = False
        self._seq = 0
        self._kick: Optional[Event] = None
        # Deterministic per-host flusher phase; consumes no RNG stream.
        self._stagger = (zlib.crc32(host.encode()) % 997) / 997.0
        self.stats = {
            "cache_hits": 0, "cache_misses": 0, "readahead_pages": 0,
            "writes_absorbed": 0, "writes_through": 0, "meta_ops": 0,
            "flush_batches": 0, "flush_pages": 0, "flush_errors": 0,
            "sync_flushes": 0, "coalesced": 0, "evicted": 0,
            "evicted_dirty": 0, "queue_peak": 0,
        }

    # ------------------------------------------------------------ metrics
    @property
    def dirty_pages(self) -> int:
        return self._dirty

    @property
    def cached_pages(self) -> int:
        return len(self._pages)

    def _count(self, service: str, nbytes: int = 0) -> None:
        if self.metrics is not None:
            self.metrics.stats("disk", service).observe_oneway(nbytes)

    # ------------------------------------------------------------- cache
    def _span(self, offset: int, nbytes: int) -> range:
        if nbytes <= 0:
            return range(offset // self.page_size, offset // self.page_size)
        return range(offset // self.page_size,
                     (offset + nbytes - 1) // self.page_size + 1)

    def _touch(self, key: Tuple[str, int], dirty: bool) -> None:
        """Insert or refresh a page at the LRU tail."""
        pages = self._pages
        was = pages.pop(key, None)
        if was and not dirty:
            dirty = True  # refreshing a dirty page keeps it dirty
        if dirty and not was:
            self._dirty += 1
        pages[key] = dirty

    def _evict_overflow(self) -> List[Tuple[str, int]]:
        """Shrink back to capacity; returns evicted *dirty* page keys."""
        dirty_out: List[Tuple[str, int]] = []
        pages = self._pages
        while len(pages) > self.max_pages:
            key = next(iter(pages))
            was_dirty = pages.pop(key)
            self.stats["evicted"] += 1
            if was_dirty:
                self._dirty -= 1
                self.stats["evicted_dirty"] += 1
                dirty_out.append(key)
        return dirty_out

    def _flush_evicted(self, keys: List[Tuple[str, int]]) -> None:
        """Evicted dirty pages must still reach the media: issue their
        writes as background requests (completion tracked for crashes)."""
        for name, runs in _runs_by_name(keys).items():
            for start, count in runs:
                self._submit_flush_run(name, start, count, urgent=False)

    # -------------------------------------------------------------- I/O
    def read(self, name: str, offset: int, nbytes: int,
             sequential: bool = False) -> Event:
        """A read through the cache; the event fires when data is in memory."""
        if nbytes <= 0:
            return self._submit(name, offset, nbytes, sequential, urgent=True)
        span = self._span(offset, nbytes)
        missing = [i for i in span if (name, i) not in self._pages]
        hits = len(span) - len(missing)
        self.stats["cache_hits"] += hits
        if hits:
            self._count("cache_hit", hits * self.page_size)
        for i in span:
            if (name, i) in self._pages:
                self._touch((name, i), dirty=self._pages[(name, i)])
        if not missing:
            return self.sim.timeout(nbytes / MEMCPY_BPS)
        self.stats["cache_misses"] += len(missing)
        self._count("cache_miss", len(missing) * self.page_size)
        runs = _runs(missing)
        if sequential and self.readahead_pages:
            start, count = runs[-1]
            extra = self.readahead_pages
            runs[-1] = (start, count + extra)
            self.stats["readahead_pages"] += extra
            self._count("readahead", extra * self.page_size)
            missing = missing + list(range(start + count, start + count + extra))
        for i in missing:
            self._touch((name, i), dirty=False)
        self._flush_evicted(self._evict_overflow())
        events = [
            self._submit(name, start * self.page_size,
                         count * self.page_size, sequential, urgent=True)
            for start, count in runs
        ]
        return events[0] if len(events) == 1 else self.sim.all_of(events)

    def write(self, name: str, offset: int, nbytes: int,
              sequential: bool = False, charge: Optional[int] = None) -> Event:
        """A write through the cache.

        ``charge`` is the device byte count the file system computed
        (it may exceed ``nbytes`` under the FFS near-full penalty); the
        page span always follows the logical ``offset``/``nbytes``.
        """
        charge = nbytes if charge is None else charge
        span = self._span(offset, nbytes)
        if self.writeback:
            for i in span:
                self._touch((name, i), dirty=True)
            self._flush_evicted(self._evict_overflow())
            self.stats["writes_absorbed"] += 1
            self._count("write_absorb", nbytes)
            if self._dirty >= self.dirty_watermark * self.max_pages:
                self.request_flush()
            return self.sim.timeout(max(charge, 1) / MEMCPY_BPS)
        for i in span:
            self._touch((name, i), dirty=False)
        self._flush_evicted(self._evict_overflow())
        self.stats["writes_through"] += 1
        return self._submit(name, offset, charge, sequential, urgent=True)

    def meta_io(self, nbytes: int) -> Event:
        """A journaled metadata operation: write-through, priority lane."""
        self.stats["meta_ops"] += 1
        return self._submit(None, 0, nbytes, False, urgent=True)

    # -------------------------------------------------------- durability
    def sync(self, name: str):
        """Generator: synchronously flush the file's dirty pages.

        Called on the durability edges (``seg_commit``, 2PC prepare,
        replication ``seg_fetch``).  A media error propagates to the
        caller as :class:`DiskIOError`.
        """
        keys = [k for k, dirty in self._pages.items()
                if dirty and k[0] == name]
        if not keys:
            return
        self.stats["sync_flushes"] += 1
        t0 = self.sim.now
        events = []
        for start, count in _runs_by_name(keys)[name]:
            events.append(self._submit_flush_run(name, start, count,
                                                 urgent=True))
        for ev in events:
            yield ev
        self._observe_flush(self.sim.now - t0, len(keys))

    def request_flush(self) -> None:
        """Wake the background flusher early (high-watermark trigger)."""
        kick = self._kick
        if kick is not None and not kick.triggered:
            kick.succeed()

    def flush_loop(self):
        """Background flusher process (spawn via ``node.spawn`` so it
        dies with the node and restarts with the provider)."""
        yield self.sim.timeout(self._stagger * self.flush_interval)
        while True:
            self._kick = self.sim.event("flush-kick")
            yield self.sim.wait_any(self._kick, self.flush_interval)
            self._kick = None
            yield from self._flush_round()

    def _flush_round(self):
        keys = [k for k, dirty in self._pages.items() if dirty]
        if not keys:
            return
        t0 = self.sim.now
        events = []
        for name, runs in _runs_by_name(keys).items():
            for start, count in runs:
                events.append((self._submit_flush_run(name, start, count,
                                                      urgent=False),
                               name, start, count))
        for ev, name, start, count in events:
            try:
                yield ev
            except DiskIOError:
                # Media error: the pages never landed — re-dirty whatever
                # is still cached so the next round retries.
                self.stats["flush_errors"] += 1
                for i in range(start, start + count):
                    if (name, i) in self._pages:
                        self._touch((name, i), dirty=True)
        self._observe_flush(self.sim.now - t0, len(keys))

    def _submit_flush_run(self, name: str, start: int, count: int,
                          urgent: bool) -> Event:
        """Write ``count`` pages starting at page ``start``; marks them
        clean at submission and tracks the run for crash accounting."""
        for i in range(start, start + count):
            key = (name, i)
            if self._pages.get(key):
                self._pages[key] = False
                self._dirty -= 1
        self._inflight[name] = self._inflight.get(name, 0) + 1
        self.stats["flush_batches"] += 1
        self.stats["flush_pages"] += count
        ev = self._submit(name, start * self.page_size,
                          count * self.page_size, count > 1, urgent=urgent)
        ev.add_callback(lambda _ev, n=name: self._run_done(n))
        return ev

    def _run_done(self, name: str) -> None:
        left = self._inflight.get(name, 0) - 1
        if left > 0:
            self._inflight[name] = left
        else:
            self._inflight.pop(name, None)

    def _observe_flush(self, latency: float, pages: int) -> None:
        if self.metrics is not None:
            self.metrics.stats("disk", "flush").observe(
                latency, ok=True, bytes_out=pages * self.page_size)

    # ----------------------------------------------------------- faults
    def on_crash(self) -> None:
        """Power loss: every cached page is gone.  Files with dirty or
        in-flight write-back data are recorded as having lost writes."""
        self._lost.update(name for (name, _i), dirty in self._pages.items()
                          if dirty)
        self._lost.update(self._inflight)
        self._pages.clear()
        self._dirty = 0
        self._inflight.clear()
        self._queue.clear()
        self._kick = None

    def take_lost(self) -> Set[str]:
        """Backing-file names whose write-back data died with the node
        (consumed once, by the provider's restart path)."""
        lost, self._lost = self._lost, set()
        return lost

    def drop(self, name: str) -> None:
        """Forget a file's pages (unlink/delete: nothing left to flush)."""
        doomed = [k for k in self._pages if k[0] == name]
        for key in doomed:
            if self._pages.pop(key):
                self._dirty -= 1
        self._inflight.pop(name, None)

    # -------------------------------------------------------- scheduler
    def _submit(self, name: Optional[str], offset: int, nbytes: int,
                sequential: bool, urgent: bool) -> Event:
        """Queue one request; batched with everything else submitted in
        the same simulated instant (plug/unplug)."""
        ev = self.sim.event("disk-sched")
        self._seq += 1
        self._queue.append(_IoReq(name, offset, nbytes, sequential,
                                  urgent, ev, self._seq))
        if not self._plugged:
            self._plugged = True
            self.sim.timeout(0.0).add_callback(self._drain)
        return ev

    def _drain(self, _ev: Event) -> None:
        self._plugged = False
        batch, self._queue = self._queue, []
        if not batch:
            return  # a crash cleared the queue before the unplug fired
        if len(batch) > self.stats["queue_peak"]:
            self.stats["queue_peak"] = len(batch)
        # Priority lane first, then elevator order within each lane.
        batch.sort(key=lambda r: (r.urgent is False, r.name or "",
                                  r.offset, r.seq))
        run: List[_IoReq] = []
        run_end = 0
        for req in batch:
            if (run and req.name is not None and req.name == run[0].name
                    and req.urgent == run[0].urgent and req.offset <= run_end):
                run.append(req)
                run_end = max(run_end, req.offset + req.nbytes)
            else:
                if run:
                    self._issue(run)
                run = [req]
                run_end = req.offset + req.nbytes
        if run:
            self._issue(run)

    def _issue(self, run: List[_IoReq]) -> None:
        """One merged positioned transfer for a run of adjacent requests."""
        total = sum(r.nbytes for r in run)
        if len(run) > 1:
            self.stats["coalesced"] += len(run) - 1
            self._count("coalesced", total)
        dev_ev = self.device.io(total, run[0].sequential)

        def _done(ev: Event, run=run) -> None:
            if ev.state == "failed":
                exc = ev.value if isinstance(ev.value, BaseException) \
                    else DiskIOError("merged request failed")
                for r in run:
                    r.event.fail(exc)
            else:
                for r in run:
                    r.event.succeed()

        dev_ev.add_callback(_done)


# ---------------------------------------------------------------- helpers
def _runs(pages: List[int]) -> List[Tuple[int, int]]:
    """Collapse a sorted page-index list into (start, count) runs."""
    out: List[Tuple[int, int]] = []
    start = prev = pages[0]
    for i in pages[1:]:
        if i == prev + 1:
            prev = i
            continue
        out.append((start, prev - start + 1))
        start = prev = i
    out.append((start, prev - start + 1))
    return out


def _runs_by_name(keys: List[Tuple[str, int]]) -> Dict[str, List[Tuple[int, int]]]:
    """Group (name, page) keys into per-name adjacent runs."""
    by_name: Dict[str, List[int]] = {}
    for name, i in sorted(keys):
        by_name.setdefault(name, []).append(i)
    return {name: _runs(pages) for name, pages in by_name.items()}
