"""Storage device models: disks, software RAID-0, and the native local FS.

These stand in for the drives in the paper's Figure 8 and the "native file
system interface" through which Sorrento storage providers keep segments.
Timing is first-principles (seek + rotation + transfer through a FIFO
queue); capacities and seek times come from the paper's table.
"""

from repro.storage.disk import (
    DISK_SPECS,
    Disk,
    DiskFaultState,
    DiskIOError,
    DiskSpec,
)
from repro.storage.engine import StorageEngine
from repro.storage.filesystem import LocalFS, NoSpace
from repro.storage.raid import Raid0

__all__ = [
    "DISK_SPECS",
    "Disk",
    "DiskFaultState",
    "DiskIOError",
    "DiskSpec",
    "LocalFS",
    "NoSpace",
    "Raid0",
    "StorageEngine",
]
