"""Native local file system model.

Sorrento stores each segment "in its entirety on native file systems"
(Section 3.2), so every provider owns a :class:`LocalFS` on top of its disk
or RAID volume.  The model charges metadata operations a small fixed disk
cost, data operations the device's transfer time, and applies the classic
near-full FFS slowdown the paper cites ([31] McKusick et al.) when the
volume approaches saturation — that slowdown is one of the two stated
motivations for balancing storage usage (Section 3.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

from repro.sim import Simulator
from repro.storage.disk import Disk
from repro.storage.raid import Raid0

#: Disk bytes charged per metadata operation (inode/dirent update).
META_IO_BYTES = 4096

#: Utilization above which allocation slows down (FFS free-list behaviour).
SATURATION_KNEE = 0.85

#: Maximum write-time multiplier at 100% full.
SATURATION_PENALTY = 3.0


class NoSpace(Exception):
    """The volume has no room for the requested allocation."""


@dataclass
class _File:
    size: int = 0        # logical length (truncate can make this sparse)
    allocated: int = 0   # bytes actually backed by blocks


class LocalFS:
    """A single-volume file system over one device.

    Files are flat-named (providers name segment files by SegID/version).
    Only sizes are tracked — content lives in the layer above.  All methods
    that touch the device are generators to be driven by a sim process.

    Space accounting distinguishes logical size from allocation so that
    sparse shadow copies ("create a blank segment and truncate it to the
    base's size", Section 3.5) cost nothing until written.
    """

    def __init__(self, sim: Simulator, device: Union[Disk, Raid0],
                 capacity: int | None = None):
        self.sim = sim
        self.device = device
        self.capacity = capacity if capacity is not None else device_capacity(device)
        self.used = 0
        self.files: Dict[str, _File] = {}
        #: Optional :class:`repro.storage.engine.StorageEngine` installed
        #: by the provider.  ``None`` means raw device access (the seed
        #: behaviour, bit-identical to the recorded goldens).
        self.engine = None

    # -- device funnel ---------------------------------------------------
    def _device_io(self, nbytes: int, sequential: bool = False):
        """The one raw device call for engine-less charges (the
        architecture lint pins every other ``.io()`` to the engine)."""
        return self.device.io(nbytes, sequential)

    def meta_io(self, nbytes: int = META_IO_BYTES):
        """Charge one metadata operation (inode/dirent update); routed
        through the engine's priority lane when one is installed."""
        if self.engine is not None:
            return self.engine.meta_io(nbytes)
        return self._device_io(nbytes)

    def journal_io(self, nbytes: int, sequential: bool = False):
        """A synchronous journal append (namespace WAL): durability is
        the point, so this never passes through the write-back cache."""
        return self._device_io(nbytes, sequential)

    def charge_read(self, name: str, offset: int, nbytes: int,
                    sequential: bool = False):
        """Charge a read against a file's cache pages without bounds
        checks — for callers that size their own transfers (index-segment
        attach, replication ``seg_fetch``)."""
        if self.engine is not None:
            return self.engine.read(name, offset, nbytes, sequential)
        return self._device_io(nbytes, sequential)

    def sync(self, name: str):
        """Generator: force the file's dirty pages to the media (no-op
        without an engine — the raw path is synchronous already)."""
        if self.engine is not None:
            yield from self.engine.sync(name)

    def discard_cache(self, name: str) -> None:
        """Drop any cached pages for a file that no longer exists."""
        if self.engine is not None:
            self.engine.drop(name)

    # -- space accounting ---------------------------------------------
    @property
    def available(self) -> int:
        """Free bytes on the volume."""
        return max(0, self.capacity - self.used)

    @property
    def utilization(self) -> float:
        """Consumed-space fraction in [0, 1]."""
        return self.used / self.capacity if self.capacity else 1.0

    def _write_penalty(self) -> float:
        """FFS-style slowdown factor as the volume fills."""
        u = self.utilization
        if u <= SATURATION_KNEE:
            return 1.0
        frac = min(1.0, (u - SATURATION_KNEE) / (1.0 - SATURATION_KNEE))
        return 1.0 + (SATURATION_PENALTY - 1.0) * frac

    # -- metadata operations --------------------------------------------
    def create(self, name: str, charge: bool = True):
        """Create an empty file.

        ``charge=False`` defers the metadata I/O — storage providers
        create segment files lazily, folding the inode write into the
        first data write.
        """
        if name in self.files:
            raise FileExistsError(name)
        if charge:
            yield self.meta_io()
        self.files[name] = _File()

    def set_size(self, name: str, size: int) -> None:
        """Bookkeeping-only logical resize (shadow copies are in-memory
        index structures until written; no device I/O)."""
        f = self.files.get(name)
        if f is None:
            raise FileNotFoundError(name)
        if size < f.allocated:
            self.used -= f.allocated - size
            f.allocated = size
        f.size = size

    def unlink(self, name: str):
        """Remove a file, freeing its space (one metadata I/O).

        Removing a never-materialized file (no allocated blocks — e.g. an
        aborted shadow that was never written) is a cache-only operation.
        """
        f = self.files.pop(name, None)
        if f is None:
            raise FileNotFoundError(name)
        self.used -= f.allocated
        self.discard_cache(name)
        if f.allocated > 0:
            yield self.meta_io()

    def exists(self, name: str) -> bool:
        """Whether the file exists."""
        return name in self.files

    def size_of(self, name: str) -> int:
        """Logical file size."""
        f = self.files.get(name)
        if f is None:
            raise FileNotFoundError(name)
        return f.size

    def allocated_of(self, name: str) -> int:
        """Block-backed bytes (≤ logical size for sparse files)."""
        f = self.files.get(name)
        if f is None:
            raise FileNotFoundError(name)
        return f.allocated

    # -- data operations --------------------------------------------------
    def write(self, name: str, offset: int, nbytes: int, sequential: bool = False):
        """Write ``nbytes`` at ``offset``, growing the file if needed.

        Allocation grows by the written byte count (capped at logical
        size once the file is fully dense) — an upper-bound approximation
        that never under-reports usage.
        """
        f = self.files.get(name)
        if f is None:
            raise FileNotFoundError(name)
        end = offset + nbytes
        f.size = max(f.size, end)
        new_alloc = min(f.size, f.allocated + nbytes)
        growth = new_alloc - f.allocated
        if growth > self.available:
            f.size = min(f.size, f.allocated)  # roll back logical growth
            raise NoSpace(f"{name}: need {growth} bytes, {self.available} free")
        cost = int(nbytes * self._write_penalty())
        f.allocated = new_alloc
        self.used += growth
        if self.engine is not None:
            yield self.engine.write(name, offset, nbytes, sequential,
                                    charge=cost)
        else:
            yield self._device_io(cost, sequential)

    def read(self, name: str, offset: int, nbytes: int, sequential: bool = False):
        """Read ``nbytes`` at ``offset`` (must be within the file)."""
        f = self.files.get(name)
        if f is None:
            raise FileNotFoundError(name)
        if offset + nbytes > f.size:
            raise ValueError(
                f"{name}: read past EOF ({offset}+{nbytes} > {f.size})"
            )
        if self.engine is not None:
            yield self.engine.read(name, offset, nbytes, sequential)
        else:
            yield self._device_io(nbytes, sequential)

    def truncate(self, name: str, size: int):
        """Set the file's logical size.

        Growing is sparse (no allocation) — this is how Sorrento creates
        shadow-copy segments cheaply.  Shrinking frees any allocation
        beyond the new size.
        """
        f = self.files.get(name)
        if f is None:
            raise FileNotFoundError(name)
        if size < f.allocated:
            self.used -= f.allocated - size
            f.allocated = size
        f.size = size
        yield self.meta_io()


def device_capacity(device: Union[Disk, Raid0]) -> int:
    """Raw capacity of a disk or RAID volume."""
    if isinstance(device, Raid0):
        return device.capacity
    return device.spec.capacity
