"""Software RAID-0 across member disks.

Cluster B nodes export "a software RAID-0 partition consisting of three
SCSI partitions" (Figure 8).  Requests are split into stripe units and
issued to member drives in parallel, so large transfers approach the sum
of member bandwidths.
"""

from __future__ import annotations

from typing import List

from repro.sim import Event, Simulator
from repro.storage.disk import Disk, DiskFaultState

DEFAULT_STRIPE = 64 * 1024


class Raid0:
    """A RAID-0 volume over one or more :class:`Disk` members."""

    def __init__(self, sim: Simulator, disks: List[Disk], stripe: int = DEFAULT_STRIPE):
        if not disks:
            raise ValueError("RAID-0 needs at least one member disk")
        self.sim = sim
        self.disks = list(disks)
        self.stripe = stripe
        self._next = 0

    @property
    def capacity(self) -> int:
        # RAID-0 capacity = members x smallest member.
        return len(self.disks) * min(d.spec.capacity for d in self.disks)

    # -- fault plane -----------------------------------------------------
    def set_fault(self, fault: DiskFaultState) -> None:
        """Degrade every member; RAID-0 has no redundancy, so one bad
        stripe fails the whole request (AllOf propagates the error)."""
        for disk in self.disks:
            disk.set_fault(fault)

    def clear_fault(self) -> None:
        for disk in self.disks:
            disk.clear_fault()

    @property
    def io_errors(self) -> int:
        return sum(d.io_errors for d in self.disks)

    def io(self, nbytes: int, sequential: bool = False) -> Event:
        """Stripe one request over the members; fires when all parts land."""
        if nbytes < 0:
            raise ValueError("negative I/O size")
        if len(self.disks) == 1:
            return self.disks[0].io(nbytes, sequential)
        # Split into per-disk byte counts, stripe unit at a time.
        per_disk = [0] * len(self.disks)
        remaining = nbytes
        i = self._next
        while remaining > 0:
            chunk = min(self.stripe, remaining)
            per_disk[i % len(self.disks)] += chunk
            remaining -= chunk
            i += 1
        self._next = i % len(self.disks)
        parts = [
            disk.io(count, sequential)
            for disk, count in zip(self.disks, per_disk)
            if count > 0
        ]
        if not parts:  # zero-byte op: charge one positioning on one member
            return self.disks[self._next].io(0, sequential)
        return self.sim.all_of(parts)

    def service_time(self, nbytes: int, sequential: bool = False) -> float:
        """Unloaded service-time estimate (slowest member's share)."""
        share = nbytes / len(self.disks)
        return max(d.service_time(int(share), sequential) for d in self.disks)

    @property
    def busy_accum(self) -> float:
        return sum(d.busy_accum for d in self.disks) / len(self.disks)

    @property
    def backlog_seconds(self) -> float:
        return max(d.backlog_seconds for d in self.disks)

    @property
    def bytes_done(self) -> int:
        return sum(d.bytes_done for d in self.disks)

    @property
    def bytes_failed(self) -> int:
        return sum(d.bytes_failed for d in self.disks)

    def reset(self) -> None:
        """Power-cycle every member (see :meth:`Disk.reset`)."""
        for disk in self.disks:
            disk.reset()
