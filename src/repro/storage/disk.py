"""Rotating-disk service-time model.

Per request: (seek if random) + half-rotation latency + size/transfer_rate,
served FIFO through the drive.  Specs follow the paper's Figure 8; media
transfer rates are period-appropriate estimates for those drive families
(the paper does not list them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.sim import Event, Simulator

MB = 1 << 20
GB = 1 << 30


class DiskIOError(Exception):
    """A request failed at the media (injected by :mod:`repro.faults`).

    Raised out of the completion event, so it surfaces inside whatever
    sim process issued the I/O — a provider handler turns it into an RPC
    remote error for the client."""


@dataclass(frozen=True)
class DiskFaultState:
    """Degradation installed on a drive by the fault plane.

    ``rng`` is a named deterministic stream owned by the fault
    controller; it is only consulted while ``error_rate`` is non-zero,
    so an inactive fault draws nothing and replays stay bit-identical.
    """

    rng: Any = None             # random.Random-compatible stream
    error_rate: float = 0.0     # per-request probability of DiskIOError
    slowdown: float = 1.0       # service-time multiplier (>= 1.0)


@dataclass(frozen=True)
class DiskSpec:
    """Static parameters of a drive model."""

    name: str
    rpm: int
    seek_s: float
    transfer_bps: float  # sustained media rate, bytes/second
    capacity: int        # bytes

    @property
    def half_rotation_s(self) -> float:
        return 0.5 * 60.0 / self.rpm


#: The drive models of Figure 8.  Capacities follow the model numbers
#: (ST373405 = 73 GB, ST336737/ST336704 = 36 GB, DK32EJ-72 = 73 GB,
#: MAN3735 = 73 GB); transfer rates are era-typical sustained rates.
DISK_SPECS = {
    "cheetah-st373405": DiskSpec("cheetah-st373405", 10000, 5.1e-3, 55 * MB, 73 * GB),
    "barracuda-st336737": DiskSpec("barracuda-st336737", 7200, 8.5e-3, 40 * MB, 36 * GB),
    "cheetah-st336704": DiskSpec("cheetah-st336704", 10000, 5.1e-3, 50 * MB, 36 * GB),
    "ultrastar-dk32ej": DiskSpec("ultrastar-dk32ej", 10000, 4.9e-3, 52 * MB, 73 * GB),
    "fujitsu-man3735": DiskSpec("fujitsu-man3735", 10000, 5.0e-3, 52 * MB, 73 * GB),
}


class Disk:
    """A single drive: FIFO queue with positioning + transfer service times.

    Like :class:`~repro.sim.resources.BandwidthPipe`, completion times are
    computed with an O(1) ledger: a new request starts when all earlier
    ones finish.  ``busy_accum`` integrates service time for I/O-wait load
    measurement.
    """

    def __init__(self, sim: Simulator, spec: DiskSpec):
        self.sim = sim
        self.spec = spec
        self._ready_at = 0.0
        self.busy_accum = 0.0
        self.bytes_done = 0
        self.bytes_failed = 0
        self.requests = 0
        self.io_errors = 0
        self.fault: Optional[DiskFaultState] = None

    def reset(self) -> None:
        """Power-cycle the drive: the pending request queue dies with the
        node, so a restarted provider must not inherit its pre-crash
        ``_ready_at`` backlog or busy ledger.  Counters and any installed
        fault survive — the media is the same physical drive."""
        self._ready_at = self.sim.now
        self.busy_accum = 0.0

    # -- fault plane -----------------------------------------------------
    def set_fault(self, fault: DiskFaultState) -> None:
        """Install a degradation (see :mod:`repro.faults`)."""
        self.fault = fault

    def clear_fault(self) -> None:
        self.fault = None

    def service_time(self, nbytes: int, sequential: bool = False) -> float:
        """Time this drive needs for one request *including* any installed
        fault slowdown, so utilization/backlog estimates stay honest while
        a ``DiskFault`` is active."""
        t = nbytes / self.spec.transfer_bps
        if not sequential:
            t += self.spec.seek_s + self.spec.half_rotation_s
        fault = self.fault
        if fault is not None and fault.slowdown != 1.0:
            t *= fault.slowdown
        return t

    def io(self, nbytes: int, sequential: bool = False) -> Event:
        """Queue one request; the event fires at completion."""
        if nbytes < 0:
            raise ValueError("negative I/O size")
        fault = self.fault
        service = self.service_time(nbytes, sequential)
        start = max(self.sim.now, self._ready_at)
        done = start + service
        self._ready_at = done
        self.busy_accum += service
        self.requests += 1
        if fault is not None and fault.error_rate > 0.0 \
                and fault.rng.random() < fault.error_rate:
            # The drive still spends the service time before erroring out,
            # but the bytes never made it to (or from) the media.
            self.io_errors += 1
            self.bytes_failed += nbytes
            ev = self.sim.event("disk-io-error")
            exc = DiskIOError(
                f"{self.spec.name}: I/O error ({nbytes} bytes)")
            self.sim.timeout(done - self.sim.now).add_callback(
                lambda _t, e=ev, x=exc: e.fail(x))
            return ev
        self.bytes_done += nbytes
        return self.sim.timeout(done - self.sim.now)

    @property
    def backlog_seconds(self) -> float:
        return max(0.0, self._ready_at - self.sim.now)
