"""Network interface model: full-duplex link with tx and rx pipes."""

from __future__ import annotations

from repro.sim import BandwidthPipe, Simulator

#: 100 Mb/s Fast Ethernet in bytes/second (the links in both clusters).
FAST_ETHERNET_BPS = 100e6 / 8

#: 1 Gb/s links (Cluster B inter-switch uplinks).
GIGABIT_BPS = 1000e6 / 8


class NIC:
    """A full-duplex network interface.

    tx and rx are independent FIFO byte pipes at the link rate; a busy
    receive path does not slow sends and vice versa, matching full-duplex
    switched Ethernet.
    """

    #: Messages up to this size interleave with bulk streams (packet
    #: multiplexing) instead of queueing behind them.
    SMALL_BYPASS = 16 * 1024

    def __init__(self, sim: Simulator, rate: float = FAST_ETHERNET_BPS):
        self.sim = sim
        self.rate = rate
        self.tx = BandwidthPipe(sim, rate, small_bypass=self.SMALL_BYPASS)
        self.rx = BandwidthPipe(sim, rate, small_bypass=self.SMALL_BYPASS)

    @property
    def bytes_sent(self) -> int:
        return self.tx.bytes_transferred

    @property
    def bytes_received(self) -> int:
        return self.rx.bytes_transferred
