"""Simulated cluster network: NICs, switch fabric, and transports.

Models what mattered in the paper's testbed (Figure 8): Fast Ethernet links
(100 Mb/s full duplex) from each node into non-blocking switches, small
per-hop latency, and a multicast channel used by membership heartbeats and
the backup data-location scheme.
"""

from repro.network.message import (
    MULTICAST,
    Message,
    RpcRemoteError,
    RpcTimeout,
)
from repro.network.nic import NIC, FAST_ETHERNET_BPS, GIGABIT_BPS
from repro.network.switch import Fabric, LinkFault
from repro.network.transport import Endpoint

__all__ = [
    "Endpoint",
    "Fabric",
    "LinkFault",
    "FAST_ETHERNET_BPS",
    "GIGABIT_BPS",
    "Message",
    "MULTICAST",
    "NIC",
    "RpcRemoteError",
    "RpcTimeout",
]
