"""Switch fabric: routes messages between attached hosts.

The paper states "none of the following experiments would saturate the
switches", so the fabric itself is non-blocking; only the per-host access
links (NICs) and a fixed per-hop propagation/switching latency are
modelled.  Multicast groups deliver a copy to every subscribed live host
(charging each receiver's rx link).

Delivery is callback-based: each copy rides a single kernel timeout that
fires at its arrival instant — no per-delivery process, no bootstrap
event.  The fabric owns the message envelope after ``send`` and returns
it to the :mod:`repro.network.message` free-list once the last copy has
been handed to (or dropped by) its receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Optional, Set, Tuple

from repro.network.message import (
    MULTICAST,
    Message,
    delivery_lane,
    release_message,
)
from repro.network.nic import NIC, FAST_ETHERNET_BPS
from repro.sim import Simulator

#: One-way propagation + switching latency per message (switched LAN).
DEFAULT_LATENCY = 80e-6

#: Loopback latency for a host messaging itself (kernel round, no wire).
LOOPBACK_LATENCY = 5e-6


class Host:
    """A network attachment point: a NIC plus liveness and a dispatcher.

    Cluster nodes wrap or subclass this; the fabric only needs ``hostid``,
    ``alive``, ``nic``, and the deliver callback installed by the endpoint.
    """

    def __init__(self, sim: Simulator, hostid: str, rate: float = FAST_ETHERNET_BPS):
        self.sim = sim
        self.hostid = hostid
        self.alive = True
        self.nic = NIC(sim, rate)
        self.deliver: Optional[Callable[[Message], None]] = None


@dataclass(frozen=True)
class LinkFault:
    """Degradation installed on a directed link (see :mod:`repro.faults`).

    All probabilistic decisions draw from ``rng`` — a named stream owned
    by the fault plane — so same-seed replays stay bit-identical.
    """

    rng: Any                        # random.Random-compatible stream
    extra_latency: float = 0.0      # deterministic added one-way delay (s)
    jitter: float = 0.0             # uniform [0, jitter) extra delay (s)
    drop: float = 0.0               # per-copy drop probability
    duplicate: float = 0.0          # per-copy duplication probability
    bandwidth_cap: Optional[float] = None  # bytes/s ceiling on this link


class Fabric:
    """The cluster interconnect.

    Fault hooks (partitions, degraded links) are inert until installed:
    the hot path only pays two falsy checks per transmit, draws no RNG,
    and schedules no extra events when no fault is active.
    """

    def __init__(self, sim: Simulator, latency: float = DEFAULT_LATENCY):
        self.sim = sim
        self.latency = latency
        self.hosts: Dict[str, Host] = {}
        # Insertion-ordered (dict, not set): multicast iterates the
        # members, and set order varies with PYTHONHASHSEED — which
        # would make delivery order differ between interpreter runs.
        self.groups: Dict[str, Dict[str, None]] = {}
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        # Directed (src, dst) pairs the switch refuses to forward.
        self._blocked: Set[Tuple[str, str]] = set()
        # Directed link degradations; "*" wildcards either end.
        self._link_faults: Dict[Tuple[str, str], LinkFault] = {}
        # Conservative-parallel transit (repro.sim.parallel.Transit), duck
        # typed so the fabric never imports the parallel layer.  When
        # installed, copies whose destination lives in another partition
        # are handed to it at tx completion instead of being scheduled
        # for direct delivery; it replays them on the owning side in
        # (arrive, src_partition, seq) order.
        self.transit = None

    # -- fault plane -----------------------------------------------------
    def partition(self, side_a: Iterable[str], side_b: Iterable[str],
                  symmetric: bool = True) -> None:
        """Stop forwarding from ``side_a`` to ``side_b`` (and back, when
        symmetric).  Loopback is untouched: a host always reaches itself."""
        for a in side_a:
            for b in side_b:
                if a == b:
                    continue
                self._blocked.add((a, b))
                if symmetric:
                    self._blocked.add((b, a))

    def heal(self, side_a: Optional[Iterable[str]] = None,
             side_b: Optional[Iterable[str]] = None) -> None:
        """Undo partitions: with no arguments, every block is lifted;
        otherwise only the (a, b) pairs (both directions) are."""
        if side_a is None or side_b is None:
            self._blocked.clear()
            return
        for a in side_a:
            for b in side_b:
                self._blocked.discard((a, b))
                self._blocked.discard((b, a))

    def degrade_link(self, src: str, dst: str, fault: LinkFault) -> None:
        """Install a :class:`LinkFault` on the directed ``src -> dst``
        link; either end may be ``"*"``.  Most specific match wins."""
        self._link_faults[(src, dst)] = fault

    def restore_link(self, src: str = "*", dst: str = "*") -> None:
        """Remove a previously-installed link degradation (no-op if
        absent)."""
        self._link_faults.pop((src, dst), None)

    def restore_all_links(self) -> None:
        self._link_faults.clear()

    def _fault_for(self, src: str, dst: str) -> Optional[LinkFault]:
        faults = self._link_faults
        for key in ((src, dst), (src, "*"), ("*", dst), ("*", "*")):
            fault = faults.get(key)
            if fault is not None:
                return fault
        return None

    # -- membership of the wire ----------------------------------------
    def attach(self, host: Host) -> None:
        if host.hostid in self.hosts:
            raise ValueError(f"duplicate hostid {host.hostid!r}")
        self.hosts[host.hostid] = host

    def detach(self, hostid: str) -> None:
        self.hosts.pop(hostid, None)
        for members in self.groups.values():
            members.pop(hostid, None)

    def subscribe(self, group: str, hostid: str) -> None:
        self.groups.setdefault(group, {})[hostid] = None

    def unsubscribe(self, group: str, hostid: str) -> None:
        members = self.groups.get(group)
        if members is not None:
            members.pop(hostid, None)

    # -- transmission ----------------------------------------------------
    def send(self, msg: Message) -> None:
        """Transmit ``msg``; delivery happens asynchronously in sim time.

        The fabric takes ownership of ``msg`` — callers must not touch it
        after this returns.
        """
        src = self.hosts.get(msg.src)
        if src is None or not src.alive:
            release_message(msg)  # a dead host sends nothing
            return
        self.messages_sent += 1
        if msg.dst == MULTICAST:
            members = self.groups.get(msg.group)
            targets = [h for h in members if h != msg.src] if members else ()
        elif msg.dst == msg.src:
            # Loopback: co-located client and daemon skip the NIC entirely
            # ("data transfers do not need to go through network", §3.7.2).
            self.sim.timeout(LOOPBACK_LATENCY,
                             lane=delivery_lane(msg.src, msg.src)).add_callback(
                lambda _ev, host=src, m=msg: self._deliver_loopback(host, m))
            return
        else:
            targets = (msg.dst,)
        self._transmit(src, targets, msg)

    def _transmit(self, src: Host, targets, msg: Message) -> None:
        # Cut-through model: the receiver starts draining as soon as the
        # sender starts transmitting (plus propagation latency), so a
        # large transfer costs ~size/rate once, not twice.  Both the tx
        # and rx links are still reserved for the full byte count.
        sim = self.sim
        now = sim.now
        blocked = self._blocked
        have_faults = bool(self._link_faults)
        transit = self.transit
        tx_start, tx_done = src.nic.tx.reserve(msg.wire_size)
        copies = 0
        xcopies = None
        for hostid in targets:
            # Partition: the copy leaves the sender's NIC and dies in the
            # switch — tx time is charged, the receiver sees nothing.
            if blocked and (msg.src, hostid) in blocked:
                self.messages_dropped += 1
                continue
            # Cross-partition copies skip the sender-side liveness check
            # and rx reservation: the receiving side performs both when it
            # drains the record at the partition boundary (identically in
            # serial-with-map and parallel runs).
            cross = transit is not None and transit.is_cross(msg.src, hostid)
            if not cross:
                dst = self.hosts.get(hostid)
                if dst is None or not dst.alive or dst.deliver is None:
                    self.messages_dropped += 1
                    continue
            ncopies, extra = 1, 0.0
            if have_faults:
                fault = self._fault_for(msg.src, hostid)
                if fault is not None:
                    if fault.drop and fault.rng.random() < fault.drop:
                        self.messages_dropped += 1
                        continue
                    if fault.duplicate \
                            and fault.rng.random() < fault.duplicate:
                        ncopies = 2
                        self.messages_duplicated += 1
                    extra = fault.extra_latency
                    if fault.jitter:
                        extra += fault.rng.random() * fault.jitter
                    if fault.bandwidth_cap:
                        extra += msg.wire_size / fault.bandwidth_cap
            if cross:
                if xcopies is None:
                    xcopies = []
                for _ in range(ncopies):
                    xcopies.append((hostid, extra))
                continue
            for _ in range(ncopies):
                _rx_start, rx_done = dst.nic.rx.reserve(
                    msg.wire_size, not_before=tx_start + self.latency + extra)
                arrive = max(tx_done + self.latency + extra, rx_done)
                sim.timeout(arrive - now,
                            lane=delivery_lane(msg.src, hostid)).add_callback(
                    lambda _ev, d=dst, m=msg: self._deliver_copy(d, m))
                copies += 1
        # Nothing fires before the next sim.step(), so the refcount is
        # safely published after the loop.
        msg._refs = copies
        if xcopies:
            # Transit copies the fields out synchronously; it never holds
            # the envelope, so releasing on copies == 0 below stays safe.
            transit.submit(msg, xcopies, tx_done)
        if copies == 0:
            release_message(msg)

    def _deliver_copy(self, dst: Host, msg: Message) -> None:
        if dst.alive and dst.deliver is not None:
            dst.deliver(msg)
        msg._refs -= 1
        if msg._refs <= 0:
            release_message(msg)

    def _deliver_loopback(self, host: Host, msg: Message) -> None:
        if host.alive and host.deliver is not None:
            host.deliver(msg)
        release_message(msg)
