"""Switch fabric: routes messages between attached hosts.

The paper states "none of the following experiments would saturate the
switches", so the fabric itself is non-blocking; only the per-host access
links (NICs) and a fixed per-hop propagation/switching latency are
modelled.  Multicast groups deliver a copy to every subscribed live host
(charging each receiver's rx link).

Delivery is callback-based: each copy rides a single kernel timeout that
fires at its arrival instant — no per-delivery process, no bootstrap
event.  The fabric owns the message envelope after ``send`` and returns
it to the :mod:`repro.network.message` free-list once the last copy has
been handed to (or dropped by) its receiver.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from repro.network.message import MULTICAST, Message, release_message
from repro.network.nic import NIC, FAST_ETHERNET_BPS
from repro.sim import Simulator

#: One-way propagation + switching latency per message (switched LAN).
DEFAULT_LATENCY = 80e-6

#: Loopback latency for a host messaging itself (kernel round, no wire).
LOOPBACK_LATENCY = 5e-6


class Host:
    """A network attachment point: a NIC plus liveness and a dispatcher.

    Cluster nodes wrap or subclass this; the fabric only needs ``hostid``,
    ``alive``, ``nic``, and the deliver callback installed by the endpoint.
    """

    def __init__(self, sim: Simulator, hostid: str, rate: float = FAST_ETHERNET_BPS):
        self.sim = sim
        self.hostid = hostid
        self.alive = True
        self.nic = NIC(sim, rate)
        self.deliver: Optional[Callable[[Message], None]] = None


class Fabric:
    """The cluster interconnect."""

    def __init__(self, sim: Simulator, latency: float = DEFAULT_LATENCY):
        self.sim = sim
        self.latency = latency
        self.hosts: Dict[str, Host] = {}
        self.groups: Dict[str, Set[str]] = {}
        self.messages_sent = 0
        self.messages_dropped = 0

    # -- membership of the wire ----------------------------------------
    def attach(self, host: Host) -> None:
        if host.hostid in self.hosts:
            raise ValueError(f"duplicate hostid {host.hostid!r}")
        self.hosts[host.hostid] = host

    def detach(self, hostid: str) -> None:
        self.hosts.pop(hostid, None)
        for members in self.groups.values():
            members.discard(hostid)

    def subscribe(self, group: str, hostid: str) -> None:
        self.groups.setdefault(group, set()).add(hostid)

    def unsubscribe(self, group: str, hostid: str) -> None:
        self.groups.get(group, set()).discard(hostid)

    # -- transmission ----------------------------------------------------
    def send(self, msg: Message) -> None:
        """Transmit ``msg``; delivery happens asynchronously in sim time.

        The fabric takes ownership of ``msg`` — callers must not touch it
        after this returns.
        """
        src = self.hosts.get(msg.src)
        if src is None or not src.alive:
            release_message(msg)  # a dead host sends nothing
            return
        self.messages_sent += 1
        if msg.dst == MULTICAST:
            members = self.groups.get(msg.group)
            targets = [h for h in members if h != msg.src] if members else ()
        elif msg.dst == msg.src:
            # Loopback: co-located client and daemon skip the NIC entirely
            # ("data transfers do not need to go through network", §3.7.2).
            self.sim.timeout(LOOPBACK_LATENCY).add_callback(
                lambda _ev, host=src, m=msg: self._deliver_loopback(host, m))
            return
        else:
            targets = (msg.dst,)
        self._transmit(src, targets, msg)

    def _transmit(self, src: Host, targets, msg: Message) -> None:
        # Cut-through model: the receiver starts draining as soon as the
        # sender starts transmitting (plus propagation latency), so a
        # large transfer costs ~size/rate once, not twice.  Both the tx
        # and rx links are still reserved for the full byte count.
        sim = self.sim
        now = sim.now
        tx_start, tx_done = src.nic.tx.reserve(msg.wire_size)
        copies = 0
        for hostid in targets:
            dst = self.hosts.get(hostid)
            if dst is None or not dst.alive or dst.deliver is None:
                self.messages_dropped += 1
                continue
            _rx_start, rx_done = dst.nic.rx.reserve(
                msg.wire_size, not_before=tx_start + self.latency)
            arrive = max(tx_done + self.latency, rx_done)
            sim.timeout(arrive - now).add_callback(
                lambda _ev, d=dst, m=msg: self._deliver_copy(d, m))
            copies += 1
        # Nothing fires before the next sim.step(), so the refcount is
        # safely published after the loop.
        msg._refs = copies
        if copies == 0:
            release_message(msg)

    def _deliver_copy(self, dst: Host, msg: Message) -> None:
        if dst.alive and dst.deliver is not None:
            dst.deliver(msg)
        msg._refs -= 1
        if msg._refs <= 0:
            release_message(msg)

    def _deliver_loopback(self, host: Host, msg: Message) -> None:
        if host.alive and host.deliver is not None:
            host.deliver(msg)
        release_message(msg)
