"""Endpoint: RPC and one-way/multicast messaging over the fabric.

RPCs are used from inside sim processes with ``yield from``::

    resp = yield from endpoint.call("node3", "read_segment", req, size=64)

``rtts`` charges extra small round-trips before the request proper — this is
how the paper's observation that "it takes two TCP roundtrips to open a file
and three to close" is modelled without a full TCP state machine.

Hot-path discipline: messages come from the module free-list (the fabric
releases them after the last delivery), RPC deadlines are cancellable
pooled timers behind ``sim.wait_any``, and the request handler never sees
the Message object — payload, source, and request id are unpacked at
delivery so the envelope can be recycled immediately.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Dict, Generator, Set, Tuple, Union

from repro.network.message import (
    MULTICAST,
    RpcRemoteError,
    RpcTimeout,
    acquire_message,
)
from repro.network.switch import Fabric, Host
from repro.sim import Simulator

#: Default RPC deadline; failed-node requests surface as timeouts at this
#: horizon (Figure 13 "requests issued to the failed node are all timed out").
DEFAULT_RPC_TIMEOUT = 5.0

#: Size of a ping/ack exchange used to charge extra round-trips.
PING_BYTES = 64

HandlerResult = Union[None, Any, Tuple[Any, int]]
Handler = Callable[[Any, str], Union[HandlerResult, Generator]]

_req_ids = itertools.count(1)

#: How many recent (src, req_id) pairs each endpoint remembers.  The
#: window only needs to outlast one round-trip; duplicates injected by a
#: degraded link (repro.faults LinkDegrade) arrive within microseconds
#: of the original.
_DEDUP_WINDOW = 512


class Endpoint:
    """Per-host message dispatcher with named RPC services."""

    def __init__(self, sim: Simulator, fabric: Fabric, host: Host):
        self.sim = sim
        self.fabric = fabric
        self.host = host
        self.handlers: Dict[str, Handler] = {}
        self._proc_names: Dict[str, str] = {}
        self._pending: Dict[int, Any] = {}
        # At-most-once request execution: a degraded link may deliver the
        # same envelope twice, but handlers have side effects, so recent
        # (src, req_id) pairs are remembered and repeats are ignored.
        # (Duplicate responses are already safe: _pending.pop dedups.)
        self._recent_reqs: deque = deque()
        self._recent_set: Set[Tuple[str, int]] = set()
        host.deliver = self._on_message

    @property
    def hostid(self) -> str:
        """This endpoint's host identity on the fabric."""
        return self.host.hostid

    # -- service registration -------------------------------------------
    def register(self, service: str, handler: Handler,
                 replace: bool = False) -> None:
        """Install an RPC/oneway handler under a service name.

        ``replace=True`` makes re-registration idempotent (a daemon
        restarting on a surviving node); the default keeps accidental
        collisions loud.
        """
        if not replace and service in self.handlers:
            raise ValueError(f"service {service!r} already registered")
        self.handlers[service] = handler
        self._proc_names[service] = "handle:" + service

    def unregister(self, service: str) -> None:
        """Remove a handler (no-op if absent)."""
        self.handlers.pop(service, None)
        self._proc_names.pop(service, None)

    # -- client side -----------------------------------------------------
    def call(
        self,
        dst: str,
        service: str,
        payload: Any = None,
        size: int = 0,
        timeout: float = DEFAULT_RPC_TIMEOUT,
        rtts: int = 1,
    ):
        """Generator: perform an RPC, returning the response payload.

        Raises :class:`RpcTimeout` if no response arrives in ``timeout``
        seconds and :class:`RpcRemoteError` if the handler raised.
        """
        for _ in range(max(0, rtts - 1)):
            yield from self._exchange(dst, "ping", None, PING_BYTES, timeout, service)
        resp = yield from self._exchange(dst, "req", (service, payload), size, timeout, service)
        return resp

    def _exchange(self, dst, kind, body, size, timeout, service):
        sim = self.sim
        req_id = next(_req_ids)
        ev = sim.event()
        self._pending[req_id] = ev
        self.fabric.send(
            acquire_message(src=self.hostid, dst=dst, kind=kind, payload=body,
                            size=size, req_id=req_id)
        )
        won = yield sim.wait_any(ev, timeout)
        if not won:
            self._pending.pop(req_id, None)
            raise RpcTimeout(dst, service, timeout)
        kind_back, value = ev.value
        if kind_back == "err":
            raise RpcRemoteError(dst, service, value)
        return value

    def send(self, dst: str, service: str, payload: Any = None, size: int = 0) -> None:
        """Fire-and-forget one-way message to ``dst``'s ``service`` handler."""
        self.fabric.send(
            acquire_message(src=self.hostid, dst=dst, kind="oneway",
                            payload=(service, payload), size=size)
        )

    def multicast(self, group: str, service: str, payload: Any = None, size: int = 0) -> None:
        """One-way message to every subscriber of ``group`` (except self)."""
        self.fabric.send(
            acquire_message(src=self.hostid, dst=MULTICAST, group=group,
                            kind="oneway", payload=(service, payload), size=size)
        )

    def subscribe(self, group: str) -> None:
        """Join a multicast group."""
        self.fabric.subscribe(group, self.hostid)

    def unsubscribe(self, group: str) -> None:
        """Leave a multicast group."""
        self.fabric.unsubscribe(group, self.hostid)

    # -- server side -----------------------------------------------------
    def _on_message(self, msg) -> None:
        # Everything needed past this frame is unpacked here; the fabric
        # recycles ``msg`` as soon as delivery callbacks return.
        if not self.host.alive:
            return
        kind = msg.kind
        if kind == "resp" or kind == "err":
            ev = self._pending.pop(msg.req_id, None)
            if ev is not None and not ev.triggered:
                ev.succeed((kind, msg.payload))
        elif kind == "req":
            key = (msg.src, msg.req_id)
            if key in self._recent_set:
                return  # duplicated in flight; the first copy answers
            if len(self._recent_reqs) >= _DEDUP_WINDOW:
                self._recent_set.discard(self._recent_reqs.popleft())
            self._recent_reqs.append(key)
            self._recent_set.add(key)
            service, payload = msg.payload
            handler = self.handlers.get(service)
            if handler is None:
                self._reply(msg.src, msg.req_id,
                            "err", f"no such service {service!r}", 64)
                return
            self.sim.process(
                self._run_handler(handler, payload, msg.src, msg.req_id),
                name=self._proc_names[service])
        elif kind == "oneway":
            service, payload = msg.payload
            handler = self.handlers.get(service)
            if handler is not None:
                result = handler(payload, msg.src)
                if isinstance(result, Generator):
                    self.sim.process(result, name=self._proc_names[service])
        elif kind == "ping":
            self._reply(msg.src, msg.req_id, "resp", None, PING_BYTES)

    def _run_handler(self, handler: Handler, payload: Any, src: str, req_id: int):
        try:
            result = handler(payload, src)
            if isinstance(result, Generator):
                result = yield from _drive(result)
        except Exception as exc:  # noqa: BLE001 - shipped back to the caller
            self._reply(src, req_id, "err", f"{type(exc).__name__}: {exc}", 64)
            return
        resp_payload, resp_size = _split_result(result)
        self._reply(src, req_id, "resp", resp_payload, resp_size)

    def _reply(self, dst: str, req_id: int, kind: str, payload: Any, size: int) -> None:
        if not self.host.alive:
            return
        self.fabric.send(
            acquire_message(src=self.hostid, dst=dst, kind=kind,
                            payload=payload, size=size, req_id=req_id)
        )


def _drive(gen: Generator):
    """``yield from`` a handler generator, capturing its return value."""
    result = yield from gen
    return result


def _split_result(result: HandlerResult) -> Tuple[Any, int]:
    """Handlers may return None, a payload, or ``(payload, size_bytes)``."""
    if result is None:
        return None, 32
    if isinstance(result, tuple) and len(result) == 2 and isinstance(result[1], int):
        return result
    return result, 64
