"""Message and RPC error types."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

#: Destination constant meaning "all hosts subscribed to the group".
MULTICAST = "<multicast>"

#: Fixed per-message wire overhead (Ethernet + IP + TCP/UDP headers), bytes.
HEADER_BYTES = 66

_msg_ids = itertools.count(1)


@dataclass
class Message:
    """A unit of network transmission.

    ``size`` is the payload size in bytes; the wire cost adds
    :data:`HEADER_BYTES` per packet.  ``payload`` is an arbitrary Python
    object — the simulation never serializes it, only charges for ``size``.
    """

    src: str
    dst: str
    kind: str
    payload: Any = None
    size: int = 0
    group: str = ""
    req_id: int = 0
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    @property
    def wire_size(self) -> int:
        return self.size + HEADER_BYTES


class RpcTimeout(Exception):
    """An RPC got no response within its deadline (e.g. dead server)."""

    def __init__(self, dst: str, service: str, timeout: float):
        super().__init__(f"rpc to {dst}:{service} timed out after {timeout:g}s")
        self.dst = dst
        self.service = service
        self.timeout = timeout


class RpcRemoteError(Exception):
    """The remote handler raised; the error text travelled back."""

    def __init__(self, dst: str, service: str, error: str):
        super().__init__(f"rpc to {dst}:{service} failed remotely: {error}")
        self.dst = dst
        self.service = service
        self.error = error
