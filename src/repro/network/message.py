"""Message and RPC error types.

:class:`Message` is the hottest allocation in the simulation (several per
RPC), so it is a ``__slots__`` class recycled through a free-list: the
transport acquires via :func:`acquire_message`, and the fabric releases a
message once its last delivery callback has run.  Handlers never see the
Message object itself (the endpoint unpacks payload/src/req_id before
dispatching), which is what makes the release point safe.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Tuple
from zlib import crc32

#: Destination constant meaning "all hosts subscribed to the group".
MULTICAST = "<multicast>"

#: Fixed per-message wire overhead (Ethernet + IP + TCP/UDP headers), bytes.
HEADER_BYTES = 66

_msg_ids = itertools.count(1)

_lane_cache: Dict[Tuple[str, str], int] = {}


def delivery_lane(src: str, dst: str) -> int:
    """The same-instant arbitration lane for a ``src -> dst`` delivery.

    The kernel orders same-``(time, priority)`` events by ``(lane, seq)``;
    local events carry lane 0, so stamping every wire delivery with a
    stable ``>= 1`` lane derived from its (src, dst) pair makes collision
    order a pure function of *content*: locals dispatch first, then
    deliveries in lane order, and only same-pair deliveries (whose FIFO
    order is already mode-invariant) fall through to ``seq``.  That is
    what keeps one global Simulator and K per-partition Simulators —
    whose insertion counters advance differently — dispatching identical
    same-instant interleavings (crc32, not ``hash()``: stable across
    interpreter launches and PYTHONHASHSEED).
    """
    key = (src, dst)
    lane = _lane_cache.get(key)
    if lane is None:
        lane = 1 + (crc32(f"{src}\x00{dst}".encode()) & 0x3FFFFFFF)
        _lane_cache[key] = lane
    return lane


class Message:
    """A unit of network transmission.

    ``size`` is the payload size in bytes; the wire cost adds
    :data:`HEADER_BYTES` per packet.  ``payload`` is an arbitrary Python
    object — the simulation never serializes it, only charges for ``size``.
    """

    __slots__ = ("src", "dst", "kind", "payload", "size", "group", "req_id",
                 "msg_id", "_refs")

    def __init__(self, src: str, dst: str, kind: str, payload: Any = None,
                 size: int = 0, group: str = "", req_id: int = 0,
                 msg_id: int = 0):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.size = size
        self.group = group
        self.req_id = req_id
        self.msg_id = msg_id or next(_msg_ids)
        self._refs = 0  # pending deliveries; managed by the fabric

    @property
    def wire_size(self) -> int:
        return self.size + HEADER_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Message #{self.msg_id} {self.kind} {self.src}->{self.dst} "
                f"{self.size}B>")


_pool: list = []
_POOL_MAX = 1024


def acquire_message(src: str, dst: str, kind: str, payload: Any = None,
                    size: int = 0, group: str = "", req_id: int = 0) -> Message:
    """A Message from the free-list (or fresh), with a new ``msg_id``."""
    if _pool:
        m = _pool.pop()
        m.src = src
        m.dst = dst
        m.kind = kind
        m.payload = payload
        m.size = size
        m.group = group
        m.req_id = req_id
        m.msg_id = next(_msg_ids)
        m._refs = 0
        return m
    return Message(src, dst, kind, payload, size, group, req_id)


def release_message(m: Message) -> None:
    """Return a delivered message to the free-list (payload dropped)."""
    if len(_pool) < _POOL_MAX:
        m.payload = None
        _pool.append(m)


class RpcTimeout(Exception):
    """An RPC got no response within its deadline (e.g. dead server)."""

    def __init__(self, dst: str, service: str, timeout: float):
        super().__init__(f"rpc to {dst}:{service} timed out after {timeout:g}s")
        self.dst = dst
        self.service = service
        self.timeout = timeout


class RpcRemoteError(Exception):
    """The remote handler raised; the error text travelled back."""

    def __init__(self, dst: str, service: str, error: str):
        super().__init__(f"rpc to {dst}:{service} failed remotely: {error}")
        self.dst = dst
        self.service = service
        self.error = error
