"""Kernel microbenchmarks: the DES substrate under RPC-shaped load.

Three probes, each isolating one tax the hot path pays per event:

* ``rpc_storm`` — back-to-back small RPCs over the fabric (the shape of
  every namespace/location operation in the experiments).  Sensitive to
  per-RPC allocation (events, deadline timers, messages) and to dead
  deadline events left on the heap.
* ``timer_churn`` — the same storm with a long per-RPC deadline, so on a
  kernel without timer cancellation the heap accumulates one dead entry
  per completed RPC for the whole run.  Sensitive to heap depth.
* ``gather_fanout`` — repeated ``gather`` over many short-lived
  processes (the shape of striped reads/writes).  Sensitive to process
  bootstrap cost.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.bench.harness import drive_procs, stats
from repro.network import Endpoint, Fabric
from repro.network.switch import Host
from repro.sim import Simulator, gather


def _make_net(n_hosts: int):
    sim = Simulator()
    fabric = Fabric(sim)
    eps = []
    for i in range(n_hosts):
        host = Host(sim, f"h{i}")
        fabric.attach(host)
        eps.append(Endpoint(sim, fabric, host))
    return sim, eps


def rpc_storm(n_pairs: int = 8, n_rpcs: int = 1500,
              timeout: float = 5.0) -> Dict:
    """``n_pairs`` clients each issue ``n_rpcs`` sequential echo RPCs."""
    sim, eps = _make_net(2 * n_pairs)
    for i in range(n_pairs):
        eps[2 * i + 1].register("echo", lambda p, s: (p, 64))

    def client(ep, dst):
        for i in range(n_rpcs):
            yield from ep.call(dst, "echo", i, size=64, timeout=timeout)

    procs = [sim.process(client(eps[2 * i], f"h{2 * i + 1}"), name="storm")
             for i in range(n_pairs)]
    t0 = time.perf_counter()
    peak = drive_procs(sim, procs)
    wall = time.perf_counter() - t0
    return stats(sim, wall, n_pairs * n_rpcs, peak)


def timer_churn(n_clients: int = 4, n_rpcs: int = 1500,
                timeout: float = 120.0) -> Dict:
    """RPC storm with deadlines far beyond the run: every completed RPC
    leaves (on a cancellation-free kernel) a dead timer on the heap."""
    return rpc_storm(n_pairs=n_clients, n_rpcs=n_rpcs, timeout=timeout)


def gather_fanout(rounds: int = 80, fan: int = 64) -> Dict:
    """One root process repeatedly gathers ``fan`` short-lived workers."""
    sim = Simulator()

    def worker():
        yield sim.timeout(0.001)
        return 1

    def root():
        total = 0
        for _ in range(rounds):
            results = yield from gather(sim, [worker() for _ in range(fan)])
            total += sum(results)
        return total

    p = sim.process(root(), name="fanout-root")
    t0 = time.perf_counter()
    peak = drive_procs(sim, [p])
    wall = time.perf_counter() - t0
    assert p.value == rounds * fan
    return stats(sim, wall, rounds * fan, peak)


def run_kernel_suite(smoke: bool = False, repeat: int = 1,
                     verbose: bool = True) -> Dict[str, Dict]:
    from repro.bench.harness import run_suite

    if smoke:
        benches = {
            "rpc_storm": lambda: rpc_storm(n_pairs=2, n_rpcs=60),
            "timer_churn": lambda: timer_churn(n_clients=2, n_rpcs=60),
            "gather_fanout": lambda: gather_fanout(rounds=4, fan=8),
        }
    else:
        benches = {
            "rpc_storm": lambda: rpc_storm(),
            "timer_churn": lambda: timer_churn(),
            "gather_fanout": lambda: gather_fanout(),
        }
    return run_suite(benches, repeat=repeat, verbose=verbose)
