"""Data-path micro-benchmarks: location traffic and vectored stripe I/O.

Two workloads bracket the client caching/batching plane:

``locate_storm``
    Many clients issue small random reads against one preloaded linear
    file.  Uncached, every read costs a ``loc_lookup`` roundtrip plus a
    ``seg_read``; with the location cache the lookup disappears after
    the first touch of each segment.

``stripe_readwrite``
    Each client writes and reads back a striped file whose stripe
    units land on a handful of owners.  Unvectored, every stripe piece
    is its own ``seg_read``/``seg_write`` RPC; vectored, pieces sharing
    an owner travel together.

Both run in a ``cached`` (default parameters) and a ``nocache``
(caches and vectoring disabled — the seed data path) variant, so one
suite run records the before/after RPC counts side by side.
"""

from __future__ import annotations

import random
import time
from typing import Dict

from repro.bench.harness import drive_procs, stats
from repro.experiments.common import cluster_a_like, sorrento_on

MB = 1 << 20

#: Parameter overrides reproducing the seed (pre-cache) data path.
NOCACHE = {
    "loc_cache_enabled": False,
    "entry_cache_enabled": False,
    "meta_cache_enabled": False,
    "vectored_io": False,
}


def _datapath_row(dep, wall: float, ops: int, peak: int) -> Dict:
    """The standard stats row plus the RPC/cache counters under test."""
    row = stats(dep.sim, wall, ops, peak)

    def calls(svc: str) -> int:
        st = dep.metrics.get("client", svc)
        return st.calls if st else 0

    row["loc_lookup_rpcs"] = calls("loc_lookup")
    row["seg_read_rpcs"] = calls("seg_read")
    row["seg_read_vec_rpcs"] = calls("seg_read_vec")
    row["seg_write_rpcs"] = calls("seg_write")
    row["seg_write_vec_rpcs"] = calls("seg_write_vec")
    row["data_path_rpcs"] = (
        row["loc_lookup_rpcs"] + row["seg_read_rpcs"]
        + row["seg_read_vec_rpcs"] + row["seg_write_rpcs"]
        + row["seg_write_vec_rpcs"]
    )
    for key in ("loc_hits", "loc_misses", "loc_stale",
                "meta_hits", "vec_rpcs", "vec_pieces"):
        row[key] = sum(c.stats.get(key, 0) for c in dep.clients)
    return row


def locate_storm(cached: bool = True, n_clients: int = 4, rounds: int = 6,
                 reads_per_round: int = 24, file_mb: int = 16,
                 n_storage: int = 8, seed: int = 0) -> Dict:
    """Small random reads against one shared linear file."""
    overrides = {} if cached else dict(NOCACHE)
    dep = sorrento_on(
        cluster_a_like(n_storage=n_storage, n_clients=n_clients),
        n_providers=n_storage, degree=2, seed=seed, **overrides)
    size = file_mb * MB
    dep.preload_file("/storm", size, degree=2)
    clients = dep.clients_on_compute(n_clients)
    counter = [0]

    def storm(client, rng):
        for _ in range(rounds):
            fh = yield from client.open("/storm", "r")
            for _ in range(reads_per_round):
                offset = rng.randrange(0, size - 4096)
                yield from client.read(fh, offset, 4096)
                counter[0] += 1
            yield from client.close(fh)

    base_events = dep.sim._nprocessed
    procs = [
        dep.sim.process(storm(c, random.Random(seed * 1000 + i)))
        for i, c in enumerate(clients)
    ]
    t0 = time.perf_counter()
    peak = drive_procs(dep.sim, procs)
    wall = time.perf_counter() - t0
    dep.sim._nprocessed -= base_events
    row = _datapath_row(dep, wall, counter[0], peak)
    dep.sim._nprocessed += base_events
    row["rpcs_per_read"] = round(row["data_path_rpcs"] / max(counter[0], 1), 2)
    return row


def stripe_readwrite(cached: bool = True, n_clients: int = 2,
                     rounds: int = 4, io_bytes: int = MB,
                     stripe_count: int = 8, n_storage: int = 4,
                     seed: int = 0) -> Dict:
    """Striped write-then-read sessions, one file per client."""
    overrides = {} if cached else dict(NOCACHE)
    dep = sorrento_on(
        cluster_a_like(n_storage=n_storage, n_clients=n_clients),
        n_providers=n_storage, degree=1, seed=seed, **overrides)
    clients = dep.clients_on_compute(n_clients)
    counter = [0]
    file_size = rounds * io_bytes

    def session(client, idx):
        path = f"/stripe{idx}"
        fh = yield from client.open(
            path, "w", create=True, organization="striped",
            stripe_count=stripe_count, fixed_size=file_size)
        for r in range(rounds):
            yield from client.write(fh, r * io_bytes, io_bytes,
                                    sequential=True)
            counter[0] += 1
        yield from client.close(fh)
        fh = yield from client.open(path, "r")
        for r in range(rounds):
            yield from client.read(fh, r * io_bytes, io_bytes,
                                   sequential=True)
            counter[0] += 1
        yield from client.close(fh)

    base_events = dep.sim._nprocessed
    procs = [dep.sim.process(session(c, i)) for i, c in enumerate(clients)]
    t0 = time.perf_counter()
    peak = drive_procs(dep.sim, procs)
    wall = time.perf_counter() - t0
    dep.sim._nprocessed -= base_events
    row = _datapath_row(dep, wall, counter[0], peak)
    dep.sim._nprocessed += base_events
    row["rpcs_per_io"] = round(row["data_path_rpcs"] / max(counter[0], 1), 2)
    return row
