"""Macro benchmark: a reduced Figure-10 run, wall-clock timed.

Figure 10 (small-file session throughput) is the experiment whose shape
dominates every other figure: many clients looping create/write/close
sessions against a Sorrento deployment, each session a burst of
namespace + location + provider RPCs.  The macro benchmark runs it at
reduced scale and reports wall time, events/second, and the peak event
backlog, so kernel changes are judged on the workload that actually
bottlenecks the reproduction.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.bench.harness import drive_procs, stats
from repro.experiments.common import cluster_a_like, sorrento_on
from repro.workloads.smallfile import session_loop


def reduced_fig10(n_clients: int = 6, duration: float = 8.0,
                  n_storage: int = 8, seed: int = 0) -> Dict:
    """Sessions/second for ``n_clients`` Figure-10 clients, wall-timed."""
    dep = sorrento_on(cluster_a_like(n_storage=n_storage, n_clients=n_clients),
                      n_providers=n_storage, degree=2, seed=seed)
    clients = dep.clients_on_compute(n_clients)
    try:
        dep.run(clients[0].mkdir("/tput"))
    except Exception:
        pass
    counter = [0]
    base_events = dep.sim._nprocessed
    procs = [
        dep.sim.process(session_loop(c, f"c{i}", counter, duration))
        for i, c in enumerate(clients)
    ]
    t0 = time.perf_counter()
    peak = drive_procs(dep.sim, procs)
    wall = time.perf_counter() - t0
    # Report only the measured window's events, not deployment warm-up.
    dep.sim._nprocessed -= base_events
    row = stats(dep.sim, wall, counter[0], peak)
    dep.sim._nprocessed += base_events
    row["sessions"] = counter[0]
    row["sessions_per_sim_s"] = round(counter[0] / duration, 1)
    return row


def run_macro_suite(smoke: bool = False, repeat: int = 1,
                    verbose: bool = True) -> Dict[str, Dict]:
    from repro.bench.datapath_bench import locate_storm, stripe_readwrite
    from repro.bench.diskengine_bench import flush_storm, smallfile_churn
    from repro.bench.harness import run_suite

    from repro.experiments.partitioned import run_fig10_partitioned

    if smoke:
        benches = {
            "fig10_reduced": lambda: reduced_fig10(
                n_clients=2, duration=1.5, n_storage=4),
            # Partitioned twin: same workload cut across 2 event loops
            # (in-process backend; a large cross-latency keeps the
            # window count CI-friendly at smoke scale).
            "fig10_reduced_parallel": lambda: run_fig10_partitioned(
                n_clients=2, duration=1.5, n_storage=4, workers=2,
                backend="inproc", cross_latency=5e-3),
            "locate_storm": lambda: locate_storm(
                n_clients=2, rounds=2, reads_per_round=8, n_storage=4),
            "locate_storm_nocache": lambda: locate_storm(
                cached=False, n_clients=2, rounds=2, reads_per_round=8,
                n_storage=4),
            "stripe_readwrite": lambda: stripe_readwrite(
                n_clients=1, rounds=2),
            "stripe_readwrite_nocache": lambda: stripe_readwrite(
                cached=False, n_clients=1, rounds=2),
            "smallfile_churn": lambda: smallfile_churn(
                n_clients=1, rounds=2, reads_per_round=8),
            "smallfile_churn_nocache": lambda: smallfile_churn(
                cached=False, n_clients=1, rounds=2, reads_per_round=8),
            "flush_storm": lambda: flush_storm(n_clients=1, writes=12),
            "flush_storm_nocache": lambda: flush_storm(
                cached=False, n_clients=1, writes=12),
        }
    else:
        benches = {
            "fig10_reduced": lambda: reduced_fig10(),
            # The conservative-parallel kernel on the same reduced run:
            # 2 forked partition workers under the default inter-switch
            # cross-latency.  Note the model differs on the cut edges
            # (store-and-forward + uplink hop), so compare wall/session
            # trends, not per-session results, against fig10_reduced.
            "fig10_reduced_parallel": lambda: run_fig10_partitioned(
                workers=2, backend="mp"),
            # The *_nocache twins replay the seed data path (caches and
            # vectoring off) so every entry records before/after RPC
            # counts side by side.
            "locate_storm": lambda: locate_storm(),
            "locate_storm_nocache": lambda: locate_storm(cached=False),
            "stripe_readwrite": lambda: stripe_readwrite(),
            "stripe_readwrite_nocache": lambda: stripe_readwrite(
                cached=False),
            # Provider storage-engine pair: _nocache replays the raw-disk
            # path (cache_bytes=0), the cached run exercises page cache +
            # write-back + coalescing scheduler.  Compare sim_ms_per_op.
            "smallfile_churn": lambda: smallfile_churn(),
            "smallfile_churn_nocache": lambda: smallfile_churn(
                cached=False),
            "flush_storm": lambda: flush_storm(),
            "flush_storm_nocache": lambda: flush_storm(cached=False),
        }
    return run_suite(benches, repeat=repeat, verbose=verbose)
