"""Compute-scheduling ablation: locality vs random vs round-robin.

Runs the ``map_scan`` and ``waves`` scenarios of
``repro.experiments.compute`` under each scheduling policy and distils
the headline the compute layer exists for: **network bytes moved**
(remote input bytes pulled by tasks + bytes moved by scheduler
pre-staging) and **makespan**, per policy.

Results land in ``BENCH_macro.json`` under the dedicated
``compute_ablation`` key: the file's ``entries``/``headline``
trajectory compares successive runs of the storage macro suite, and
this ablation is a new measurement surface, not a new measurement of
the old one.
"""

from __future__ import annotations

from typing import Dict

from repro.compute import POLICIES
from repro.experiments.compute import run_point

#: (scenario, sizes) — smoke halves everything.
FULL_SIZES = dict(n_providers=6, n_files=24, file_mb=2)
SMOKE_SIZES = dict(n_providers=4, n_files=12, file_mb=1)
FULL_WAVES = dict(n_waves=3, tasks_per_wave=12)
SMOKE_WAVES = dict(n_waves=2, tasks_per_wave=8)


def run_compute_suite(smoke: bool = False, seed: int = 11,
                      repeat: int = 1) -> Dict[str, Dict]:
    """Every (scenario, policy) cell; keys like ``map_scan_locality``.

    ``repeat`` keeps the harness-wide knob but is a no-op here: the
    rows are simulation-deterministic, and wall time is not this
    suite's headline.
    """
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    waves = SMOKE_WAVES if smoke else FULL_WAVES
    results: Dict[str, Dict] = {}
    for scenario in ("map_scan", "waves"):
        extra = waves if scenario == "waves" else {}
        for policy in POLICIES:
            results[f"{scenario}_{policy}"] = run_point(
                scenario, policy, seed=seed, **sizes, **extra)
    return results


def ablation_summary(results: Dict[str, Dict]) -> Dict:
    """The recorded headline: per-policy bytes/makespan + the saving."""

    def cell(scenario, policy, key):
        return results[f"{scenario}_{policy}"][key]

    rnd_net = cell("map_scan", "random", "net_mb")
    loc_net = cell("map_scan", "locality", "net_mb")
    rnd_mk = cell("map_scan", "random", "makespan_s")
    loc_mk = cell("map_scan", "locality", "makespan_s")
    return {
        "map_scan_net_mb": {p: cell("map_scan", p, "net_mb")
                            for p in POLICIES},
        "map_scan_makespan_s": {p: cell("map_scan", p, "makespan_s")
                                for p in POLICIES},
        "net_reduction_vs_random_pct":
            round(100.0 * (1.0 - loc_net / rnd_net), 1) if rnd_net else 0.0,
        "makespan_delta_vs_random_s": round(rnd_mk - loc_mk, 4),
        "waves_net_mb": {p: cell("waves", p, "net_mb") for p in POLICIES},
        "waves_prestage_mb": cell("waves", "locality", "prestage_mb"),
        "waves_local_tasks": {p: cell("waves", p, "local")
                              for p in POLICIES},
    }
