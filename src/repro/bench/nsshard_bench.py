"""Namespace-shard benchmark: metadata throughput vs client count.

Figure 10 measures small-op throughput as clients are added until the
single namespace server saturates (the paper quotes ~1300 namespace
ops/s).  This suite re-runs that experiment shape against the *sharded*
namespace: a pure metadata workload (create + stat, no data I/O) driven
through regular client stubs at 1, 2, and 4 shards, sweeping the client
count past the 1-shard saturation point.  The headline claim the curve
records: metadata throughput keeps scaling with shards after one
namespace server has flattened out.

Each client owns one top-level directory, so the prefix ring spreads
the population across shards hash-uniformly — the same mechanism the
deployment uses, not a hand-partitioned cheat.

Results land in ``BENCH_scale.json`` under the dedicated
``ns_shard_curve`` key: the file's ``entries``/``headline`` trajectory
compares like against like across PRs, and this curve is a new surface,
not a new measurement of the old one.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from repro.bench.harness import run_suite
from repro.core import SorrentoConfig, SorrentoDeployment
from repro.core.params import SorrentoParams
from repro.experiments.common import run_until_done
from repro.experiments.tiered import tiered_cluster

SHARD_POINTS: Sequence[int] = (1, 2, 4)
CLIENT_POINTS: Sequence[int] = (4, 8, 16, 32, 64, 128)
SMOKE_SHARDS: Sequence[int] = (1, 2)
SMOKE_CLIENTS: Sequence[int] = (4, 8)

DURATION = 8.0
SMOKE_DURATION = 4.0
N_STORAGE = 8


def _md_client(client, dirpath: str, counters: Dict[str, int],
               deadline: float):
    """Closed-loop metadata hammer: create a file, stat it, repeat."""
    sim = client.sim
    yield from client.mkdir(dirpath)
    i = 0
    while sim.now < deadline:
        path = f"{dirpath}/f{i:05d}"
        try:
            yield from client.create(path)
            counters["ops"] += 1
            yield from client.stat(path)
            counters["ops"] += 1
        except Exception:
            counters["failed"] += 1
        i += 1


def metadata_point(n_shards: int, n_clients: int,
                   duration: float = DURATION, seed: int = 0) -> Dict:
    """One (shards, clients) cell of the throughput curve."""
    params = SorrentoParams(default_degree=1)
    dep = SorrentoDeployment(
        tiered_cluster(N_STORAGE, n_clients, 0),
        SorrentoConfig(params=params, seed=seed, n_providers=N_STORAGE,
                       namespace_shards=n_shards))
    dep.warm_up(4.0)
    t0 = dep.sim.now
    counters = {"ops": 0, "failed": 0}
    clients = dep.clients_on_compute(n_clients)
    procs = [dep.sim.process(_md_client(
        c, f"/c{i:02d}", counters, t0 + duration))
        for i, c in enumerate(clients)]

    wall0 = time.perf_counter()
    run_until_done(dep.sim, procs, max_time=t0 + duration + 60.0)
    wall = max(time.perf_counter() - wall0, 1e-9)
    sim_elapsed = dep.sim.now - t0

    redirects = sum(c.stats["ns_redirects"] for c in clients)
    return {
        "wall_s": round(wall, 4),
        "sim_time_s": round(sim_elapsed, 3),
        "events": dep.sim._nprocessed,
        "events_per_s": round(dep.sim._nprocessed / wall, 1),
        "ops": counters["ops"],
        "ops_per_s": round(counters["ops"] / wall, 1),
        "peak_pending": 0,
        # The Figure-10-style axis: metadata ops per *simulated* second.
        "md_ops_per_s": round(counters["ops"] / max(sim_elapsed, 1e-9), 1),
        "shards": n_shards,
        "clients": n_clients,
        "failed": counters["failed"],
        "ns_redirects": redirects,
    }


def run_nsshard_suite(smoke: bool = False, repeat: int = 1,
                      shards: Optional[Sequence[int]] = None,
                      clients: Optional[Sequence[int]] = None
                      ) -> Dict[str, Dict]:
    shards = shards or (SMOKE_SHARDS if smoke else SHARD_POINTS)
    clients = clients or (SMOKE_CLIENTS if smoke else CLIENT_POINTS)
    duration = SMOKE_DURATION if smoke else DURATION
    benches = {}
    for s in shards:
        for c in clients:
            benches[f"ns{s}_c{c}"] = (
                lambda s=s, c=c: metadata_point(s, c, duration=duration))
    return run_suite(benches, repeat=repeat)


def curve_summary(results: Dict[str, Dict]) -> Dict[str, Dict[str, float]]:
    """{shards: {clients: md_ops_per_s}} — the plottable curve."""
    curve: Dict[str, Dict[str, float]] = {}
    for row in results.values():
        curve.setdefault(str(row["shards"]), {})[str(row["clients"])] = \
            row["md_ops_per_s"]
    return {s: dict(sorted(v.items(), key=lambda kv: int(kv[0])))
            for s, v in sorted(curve.items(), key=lambda kv: int(kv[0]))}
