"""Performance benchmarks for the DES kernel and the experiment stack.

Two suites, both runnable via ``python -m repro.bench``:

* **kernel** — microbenchmarks of the simulation substrate itself
  (ping-pong RPC storm, timer churn, gather fan-out), reported as
  events/second and wall time;
* **macro** — a reduced Figure-10 run (the small-file session-throughput
  experiment), reported as wall time per simulated second.

Results are appended to ``BENCH_kernel.json`` / ``BENCH_macro.json`` as a
trajectory: each invocation adds one labelled entry, and a ``headline``
block compares the latest entry against the first (the recorded
baseline).  See ``docs/performance.md`` for how to read the numbers.
"""

from repro.bench.harness import append_entry, bench_entry, drive_procs
from repro.bench.kernel_bench import run_kernel_suite
from repro.bench.macro_bench import run_macro_suite

__all__ = [
    "append_entry",
    "bench_entry",
    "drive_procs",
    "run_kernel_suite",
    "run_macro_suite",
]
