"""Storage-engine micro-benchmarks: hot small reads and write bursts.

Two workloads bracket the provider-side page cache / write-back /
scheduler plane added by ``repro.storage.engine``:

``smallfile_churn``
    Clients repeatedly re-read a hot set of 4 KB blocks.  Raw disk,
    every read pays seek + half-rotation (~8 ms of simulated time);
    with the page cache only the first touch of each page misses, and
    subsequent reads cost a memcpy.  This is the paper's Section 6.2
    small-file gap: the kernel buffer cache NFS servers enjoy.

``flush_storm``
    Clients scatter small random-offset writes over a fixed-size file,
    then close (commit) it.  Raw disk, every write is its own
    positioned transfer; with write-back the writes acknowledge at
    memory speed and the commit-time sync flushes whole-page runs that
    the scheduler coalesces into a handful of large transfers.

Both run ``cached`` (engine on) and ``_nocache`` (``cache_bytes=0`` —
the seed raw-disk path) so one suite run records the simulated per-op
latency and the disk-scope counters side by side.  The interesting
column is ``sim_ms_per_op``: the engine saves *simulated* disk time,
which host wall time only tracks loosely.
"""

from __future__ import annotations

import random
import time
from typing import Dict

from repro.bench.harness import drive_procs, stats
from repro.experiments.common import cluster_a_like, sorrento_on

MB = 1 << 20

#: Parameter overrides enabling the provider storage engine (the default
#: SorrentoParams keeps ``cache_bytes=0`` to preserve recorded goldens).
ENGINE = {
    "cache_bytes": 64 * MB,
    "writeback": True,
}


def _disk_row(dep, wall: float, ops: int, peak: int, sim_elapsed: float) -> Dict:
    """The standard stats row plus the engine counters under test."""
    row = stats(dep.sim, wall, ops, peak)
    row["sim_ms_per_op"] = round(1e3 * sim_elapsed / max(ops, 1), 3)
    keys = ("cache_hits", "cache_misses", "writes_absorbed", "coalesced",
            "readahead_pages", "flush_batches", "flush_pages",
            "sync_flushes", "queue_peak")
    totals = dict.fromkeys(keys, 0)
    for provider in dep.providers.values():
        engine = provider.node.fs.engine
        if engine is None:
            continue
        for key in keys:
            if key == "queue_peak":
                totals[key] = max(totals[key], engine.stats[key])
            else:
                totals[key] += engine.stats[key]
    row.update(totals)
    return row


def smallfile_churn(cached: bool = True, n_clients: int = 2, rounds: int = 6,
                    reads_per_round: int = 16, hot_blocks: int = 16,
                    n_storage: int = 4, seed: int = 0) -> Dict:
    """Repeated 4 KB reads over a small hot set of one file's blocks."""
    overrides = dict(ENGINE) if cached else {}
    dep = sorrento_on(
        cluster_a_like(n_storage=n_storage, n_clients=n_clients),
        n_providers=n_storage, degree=1, seed=seed, **overrides)
    size = 4 * MB
    dep.preload_file("/churn", size, degree=1)
    clients = dep.clients_on_compute(n_clients)
    counter = [0]
    stride = size // hot_blocks

    def churn(client, rng):
        offsets = [rng.randrange(0, stride // 4096) * 4096
                   + b * stride for b in range(hot_blocks)]
        for _ in range(rounds):
            fh = yield from client.open("/churn", "r")
            for r in range(reads_per_round):
                yield from client.read(fh, offsets[r % hot_blocks], 4096)
                counter[0] += 1
            yield from client.close(fh)

    base_events = dep.sim._nprocessed
    sim0 = dep.sim.now
    procs = [
        dep.sim.process(churn(c, random.Random(seed * 1000 + i)))
        for i, c in enumerate(clients)
    ]
    t0 = time.perf_counter()
    peak = drive_procs(dep.sim, procs)
    wall = time.perf_counter() - t0
    dep.sim._nprocessed -= base_events
    row = _disk_row(dep, wall, counter[0], peak, dep.sim.now - sim0)
    dep.sim._nprocessed += base_events
    return row


def flush_storm(cached: bool = True, n_clients: int = 2, writes: int = 48,
                region_kb: int = 512, n_storage: int = 4, seed: int = 0) -> Dict:
    """Scattered 4 KB writes into a fixed-size file, then commit.

    Offsets are random (not appends) so the provider cannot mark them
    sequential — raw disk pays positioning per write.  The region is
    small enough that the dirty pages form adjacent runs, so write-back
    absorbs the writes at memory speed and the commit-time sync flushes
    them as a few coalesced transfers instead of one seek per write.
    """
    overrides = dict(ENGINE) if cached else {}
    dep = sorrento_on(
        cluster_a_like(n_storage=n_storage, n_clients=n_clients),
        n_providers=n_storage, degree=1, seed=seed, **overrides)
    clients = dep.clients_on_compute(n_clients)
    counter = [0]
    region = region_kb * 1024

    def storm(client, idx, rng):
        path = f"/storm{idx}"
        fh = yield from client.open(path, "w", create=True,
                                    fixed_size=region)
        for _ in range(writes):
            offset = rng.randrange(0, region // 4096) * 4096
            yield from client.write(fh, offset, 4096)
            counter[0] += 1
        yield from client.close(fh)

    base_events = dep.sim._nprocessed
    sim0 = dep.sim.now
    procs = [
        dep.sim.process(storm(c, i, random.Random(seed * 1000 + i)))
        for i, c in enumerate(clients)
    ]
    t0 = time.perf_counter()
    peak = drive_procs(dep.sim, procs)
    wall = time.perf_counter() - t0
    dep.sim._nprocessed -= base_events
    row = _disk_row(dep, wall, counter[0], peak, dep.sim.now - sim0)
    dep.sim._nprocessed += base_events
    return row
