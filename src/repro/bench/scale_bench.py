"""Scale benchmarks: cluster-state machinery at 100-1000 providers.

Two kinds of probe:

* ``scale_<N>`` — one full :mod:`repro.experiments.scale` point (build a
  cluster of N providers, preload the file population, drive thousands
  of Zipf/diurnal client sessions) run in a **separate process** per
  point, because ``ru_maxrss`` is a process-lifetime high-water mark:
  forking is the only way to attribute peak RSS to a cluster size.
* ``ring_churn`` — the consistent-hash ring under membership churn,
  measured twice over the identical event sequence: the incremental
  splicing ring against a from-scratch rebuild per view change (the
  seed implementation's strategy whenever its per-view cache missed).
  The baseline caches vnode hash points too, so the comparison isolates
  ring *maintenance*, which is what the refactor changed.

The recorded rows keep the harness's common keys (``wall_s``, ``ops``,
``ops_per_s``, ``events``, ``events_per_s``) so ``BENCH_scale.json``
headlines compute like the other trajectories, and add scale-specific
extras (``peak_rss_mb``, ``sim_per_wall``, ``providers``, ``files``).
"""

from __future__ import annotations

import bisect
import json
import random
import statistics
import subprocess
import sys
import time
from typing import Callable, Dict, List, Tuple

from repro.bench.harness import run_suite
from repro.core.hashing import HashRing, _point
from repro.experiments.scale import QUICK_POINTS, SCALE_POINTS


# ------------------------------------------------------------ scale points
def _run_point_subprocess(n_providers: int, n_files: int, n_sessions: int,
                          duration: float, seed: int = 0, workers: int = 0,
                          backend: str = "mp",
                          smoke_preload: bool = False) -> Dict:
    """One scale point in a child process; returns its JSON metrics row.

    ``workers > 0`` runs the point on the conservative-parallel kernel
    (the child forks one event loop per partition).
    """
    cmd = [sys.executable, "-m", "repro.experiments.scale",
           "--point", str(n_providers), "--files", str(n_files),
           "--sessions", str(n_sessions), "--duration", str(duration),
           "--seed", str(seed), "--json"]
    if workers:
        cmd += ["--workers", str(workers), "--backend", backend]
    if smoke_preload:
        cmd += ["--smoke-preload"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"scale point {n_providers} failed:\n{proc.stderr[-2000:]}")
    row = json.loads(proc.stdout.strip().splitlines()[-1])
    wall = max(row["wall_s"], 1e-9)
    out = {
        # Harness-common keys: "ops" are completed client sessions and
        # wall is the measured-traffic window (setup reported separately).
        "wall_s": row["wall_s"],
        "sim_time_s": row["sim_s"],
        "events": row["events"],
        "events_per_s": row["events_per_s"],
        "ops": row["sessions_done"],
        "ops_per_s": round(row["sessions_done"] / wall, 1),
        "peak_pending": 0,  # not sampled by the scale driver
        # Scale-specific extras:
        "providers": row["providers"],
        "files": row["files"],
        "sessions_failed": row["sessions_failed"],
        "sim_per_wall": row["sim_per_wall"],
        "preload_wall_s": row["preload_wall_s"],
        "total_wall_s": row["total_wall_s"],
        "peak_rss_mb": row["peak_rss_mb"],
    }
    if workers:
        # Parallel-kernel diagnostics recorded alongside (windows/barrier
        # decompose where the wall went; busy walls bound the speedup a
        # multi-core box could realize).
        for key in ("workers", "backend", "windows", "grants",
                    "windows_per_grant", "fallback_rounds",
                    "records_shipped", "shm_batches", "shm_bytes",
                    "shm_fallbacks", "barrier_wall_s", "busy_wall_s",
                    "worker_events", "lookahead_us", "digest"):
            if key in row:
                out[key] = row[key]
    return out


# ------------------------------------------------------------- ring churn
def _churn_sequence(n_hosts: int, n_events: int, lookups_per_event: int,
                    seed: int = 42) -> List[Tuple[List[str], List[int]]]:
    """Deterministic (member view, probe segids) sequence shared by both
    ring variants so they do byte-identical lookup work."""
    rng = random.Random(seed)
    pool = [f"p{i:03d}" for i in range(n_hosts)]
    members = set(pool[: n_hosts // 2])
    seq = []
    for _ in range(n_events):
        host = rng.choice(pool)
        if host in members and len(members) > 2:
            members.discard(host)
        else:
            members.add(host)
        seq.append((sorted(members),
                    [rng.getrandbits(64) for _ in range(lookups_per_event)]))
    return seq


def ring_churn(n_hosts: int = 150, vnodes: int = 32, n_events: int = 1500,
               lookups_per_event: int = 5) -> Dict:
    """Incremental ring vs full rebuild over one churn storm."""
    seq = _churn_sequence(n_hosts, n_events, lookups_per_event)
    n_lookups = n_events * lookups_per_event

    # Baseline: re-sort the whole point array on every view change
    # (vnode points pre-hashed, so only maintenance is measured).
    host_pts = {}
    for view, _keys in seq:
        for h in view:
            if h not in host_pts:
                host_pts[h] = [_point(f"{h}#{i}") for i in range(vnodes)]
    import hashlib

    def _key(segid: int) -> int:
        return int.from_bytes(
            hashlib.sha1(segid.to_bytes(16, "big")).digest()[:8], "big")

    t0 = time.perf_counter()
    sink = 0
    for view, keys in seq:
        pairs = sorted((p, h) for h in view for p in host_pts[h])
        points = [p for p, _ in pairs]
        hosts = [h for _, h in pairs]
        for k in keys:
            i = bisect.bisect_right(points, _key(k))
            sink ^= len(hosts[i if i < len(points) else 0])
    naive_wall = time.perf_counter() - t0

    ring = HashRing(vnodes=vnodes)
    t1 = time.perf_counter()
    for view, keys in seq:
        for k in keys:
            sink ^= len(ring.home_host(k, view))
    inc_wall = max(time.perf_counter() - t1, 1e-9)

    return {
        "wall_s": round(inc_wall, 4),
        "sim_time_s": 0.0,
        "events": 0,
        "events_per_s": 0.0,
        "ops": n_lookups,
        "ops_per_s": round(n_lookups / inc_wall, 1),
        "peak_pending": 0,
        # The before/after pair the refactor is judged on:
        "rebuild_baseline_wall_s": round(naive_wall, 4),
        "speedup_vs_rebuild_x": round(naive_wall / inc_wall, 2),
        "churn_events": n_events,
        "ring_hosts": n_hosts,
        "vnodes": vnodes,
        "bulk_builds": ring.stats["bulk_builds"],
        "splices": ring.stats["splices"],
    }


# ------------------------------------------------------------------ suite
def _median_run(fn: Callable[[], Dict], repeats: int) -> Dict:
    """Run ``fn`` ``repeats`` times and record the median-wall run.

    Scale points are seconds-to-minutes long, so the harness-wide
    best-of-``repeat`` policy (tuned for microbenchmarks) both wastes
    budget and reports an unrepresentatively lucky run.  Here the row
    whose wall is nearest the median is recorded — keeping every other
    column (events, RSS, digests) consistent with the recorded wall —
    and the full wall distribution rides along so a headline reader can
    tell signal from shared-box noise.
    """
    runs = [fn() for _ in range(max(1, repeats))]
    if len(runs) == 1:
        return runs[0]
    walls = sorted(r["wall_s"] for r in runs)
    med = statistics.median(walls)
    pick = dict(min(runs, key=lambda r: abs(r["wall_s"] - med)))
    pick["repeats"] = len(runs)
    pick["wall_s_runs"] = [round(w, 4) for w in walls]
    pick["wall_s_median"] = round(med, 4)
    pick["wall_s_spread_pct"] = round(
        100.0 * (walls[-1] - walls[0]) / max(walls[0], 1e-9), 1)
    return pick


def run_scale_suite(smoke: bool = False, repeat: int = 1,
                    repeats: int = 1) -> Dict[str, Dict]:
    points = QUICK_POINTS if smoke else SCALE_POINTS
    benches = {}
    for n_providers, n_files, n_sessions, duration in points:
        benches[f"scale_{n_providers}"] = (
            lambda n=n_providers, f=n_files, s=n_sessions, d=duration:
            _run_point_subprocess(n, f, s, d))
    if smoke:
        # Smoke trims preload so the budget measures the traffic window,
        # and adds one 2-worker partitioned point for the parallel path.
        n, f, s, d = points[0]
        benches[f"scale_{n}_w2"] = (
            lambda n=n, f=f, s=s, d=d:
            _run_point_subprocess(n, f, s, d, workers=2,
                                  smoke_preload=True))
        benches["ring_churn"] = lambda: ring_churn(n_hosts=60, n_events=200)
    else:
        # Partitioned counterparts of the smallest and largest points:
        # 2 workers at 100 providers, 4 at 1000 (one per planned switch
        # group), both forked.
        n, f, s, d = points[0]
        benches[f"scale_{n}_w2"] = (
            lambda n=n, f=f, s=s, d=d:
            _run_point_subprocess(n, f, s, d, workers=2))
        n, f, s, d = points[-1]
        benches[f"scale_{n}_w4"] = (
            lambda n=n, f=f, s=s, d=d:
            _run_point_subprocess(n, f, s, d, workers=4))
        benches["ring_churn"] = ring_churn
    if repeats > 1:
        benches = {name: (lambda f=fn: _median_run(f, repeats))
                   for name, fn in benches.items()}
    return run_suite(benches, repeat=repeat)
