"""Measurement plumbing shared by the kernel and macro benchmarks.

The helpers here deliberately read kernel internals through ``getattr``
fallbacks so the same benchmark code can measure any kernel revision —
that is what makes the ``BENCH_*.json`` before/after trajectory a
like-for-like comparison.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional


def backlog(sim) -> int:
    """Pending events (heap + any immediate FIFOs the kernel keeps)."""
    n = getattr(sim, "pending_events", None)
    if n is not None:
        return n
    return len(sim._heap)


def has_events(sim) -> bool:
    return backlog(sim) > 0


def drive_procs(sim, procs, sample_every: int = 4096) -> int:
    """Step the sim until every process finishes; returns the peak backlog.

    Uses a completion countdown (not a per-step scan) so the driver adds
    O(1) per event on every kernel revision being measured.
    """
    remaining = [len(procs)]

    def _done(_ev):
        remaining[0] -= 1

    for p in procs:
        if p.triggered:
            remaining[0] -= 1
        else:
            p.add_callback(_done)
    peak = backlog(sim)
    steps = 0
    step = sim.step
    while remaining[0] > 0:
        # An empty schedule raises IndexError out of step(); catching it
        # there keeps the per-step cost to the step itself instead of a
        # getattr-chained backlog probe before every event.
        try:
            step()
        except IndexError:
            raise RuntimeError(
                "benchmark deadlock: processes pending, no events") from None
        steps += 1
        if steps % sample_every == 0:
            b = backlog(sim)
            if b > peak:
                peak = b
    return peak


def stats(sim, wall: float, ops: int, peak: int) -> Dict:
    """The per-benchmark result row recorded in BENCH_*.json."""
    wall = max(wall, 1e-9)
    return {
        "wall_s": round(wall, 4),
        "sim_time_s": round(sim.now, 6),
        "events": sim._nprocessed,
        "events_per_s": round(sim._nprocessed / wall, 1),
        "ops": ops,
        "ops_per_s": round(ops / wall, 1),
        "peak_pending": peak,
        "swept_timers": getattr(sim, "_nswept", 0),
    }


def run_suite(benches: Dict[str, Callable[[], Dict]],
              repeat: int = 1, verbose: bool = True) -> Dict[str, Dict]:
    """Run each benchmark ``repeat`` times, keeping the best-wall run."""
    results: Dict[str, Dict] = {}
    for name, fn in benches.items():
        best: Optional[Dict] = None
        for _ in range(max(1, repeat)):
            r = fn()
            if best is None or r["wall_s"] < best["wall_s"]:
                best = r
        results[name] = best
        if verbose:
            print(f"[bench] {name}: {best['wall_s']:.3f}s wall, "
                  f"{best['events_per_s']:,.0f} events/s, "
                  f"peak backlog {best['peak_pending']}", file=sys.stderr)
    return results


# ------------------------------------------------------------ JSON output
def bench_entry(label: str, results: Dict[str, Dict], smoke: bool) -> Dict:
    return {
        "label": label,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke": smoke,
        "results": results,
    }


def _headline(first: Dict, last: Dict) -> Dict:
    """Speedups of the latest entry over the recorded baseline."""
    out = {"baseline": first["label"], "latest": last["label"]}
    for name, base in first["results"].items():
        cur = last["results"].get(name)
        if not cur:
            continue
        row = {
            "wall_speedup_x": round(base["wall_s"] / max(cur["wall_s"], 1e-9), 2),
            "wall_reduction_pct": round(
                100.0 * (1.0 - cur["wall_s"] / max(base["wall_s"], 1e-9)), 1),
            # Useful-work throughput: same ops, so this tracks wall speedup
            # even when the optimization deletes bookkeeping events and
            # shrinks the raw events/s numerator.
            "ops_per_s_x": round(
                cur.get("ops_per_s", 0.0) / max(base.get("ops_per_s", 0.0), 1e-9), 2),
            "events_per_s_x": round(
                cur["events_per_s"] / max(base["events_per_s"], 1e-9), 2),
        }
        # Micros that never touch the simulator (e.g. ring_churn) have no
        # event counts; a 0/0 ratio would report a bogus 100.0 removal.
        base_events = base.get("events", 0)
        if base_events:
            row["events_removed_pct"] = round(
                100.0 * (1.0 - cur.get("events", 0) / base_events), 1)
        out[name] = row
    return out


def append_entry(path, entry: Dict, benchmark: str) -> Dict:
    """Append one labelled entry to a BENCH_*.json trajectory file."""
    path = Path(path)
    doc = {"benchmark": benchmark, "entries": []}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except (ValueError, OSError):
            pass
    entries: List[Dict] = doc.setdefault("entries", [])
    entries.append(entry)
    comparable = [e for e in entries if e.get("smoke") == entry.get("smoke")]
    if len(comparable) >= 2:
        doc["headline"] = _headline(comparable[0], comparable[-1])
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return doc
