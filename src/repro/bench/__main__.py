"""CLI: run the benchmark suites and append to the BENCH_*.json trajectory.

Usage::

    python -m repro.bench [--smoke] [--label LABEL] [--out-dir DIR]
                          [--only kernel|macro] [--repeat N] [--repeats N]

Each run appends one labelled entry per suite; once a file holds two or
more comparable entries, a ``headline`` block reports the latest entry's
speedup over the first (the recorded baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.compute_bench import ablation_summary, run_compute_suite
from repro.bench.harness import append_entry, bench_entry
from repro.bench.kernel_bench import run_kernel_suite
from repro.bench.macro_bench import run_macro_suite
from repro.bench.nsshard_bench import curve_summary, run_nsshard_suite
from repro.bench.scale_bench import run_scale_suite


def record_keyed_entry(path: Path, key: str, entry: dict,
                       benchmark: str) -> dict:
    """Store a side measurement under its own top-level key.

    Deliberately *not* ``append_entry``: the ``entries`` trajectory and
    its headline compare successive runs of the same suite, and these
    (the shard curve, the compute ablation) are different measurement
    surfaces.
    """
    doc = {"benchmark": benchmark, "entries": []}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except (ValueError, OSError):
            pass
    doc[key] = entry
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def record_ns_shard_curve(path: Path, entry: dict) -> dict:
    return record_keyed_entry(path, "ns_shard_curve", entry, "scale")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench",
                                     description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes; verifies the scripts run (CI)")
    parser.add_argument("--label", default="run",
                        help="label recorded with this entry")
    parser.add_argument("--out-dir", default=".",
                        help="directory holding BENCH_*.json")
    parser.add_argument("--only",
                        choices=("kernel", "macro", "scale", "nsshard",
                                 "compute"),
                        default=None)
    parser.add_argument("--repeat", type=int, default=1,
                        help="repetitions per benchmark (best wall kept)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="scale suite only: repetitions per point; "
                             "the median-wall run is recorded along with "
                             "the wall distribution and spread")
    args = parser.parse_args(argv)

    out = Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    if args.only in (None, "kernel"):
        results = run_kernel_suite(smoke=args.smoke, repeat=args.repeat)
        doc = append_entry(out / "BENCH_kernel.json",
                           bench_entry(args.label, results, args.smoke),
                           benchmark="kernel")
        if "headline" in doc:
            print(json.dumps(doc["headline"], indent=2), file=sys.stderr)
    if args.only in (None, "macro"):
        results = run_macro_suite(smoke=args.smoke, repeat=args.repeat)
        doc = append_entry(out / "BENCH_macro.json",
                           bench_entry(args.label, results, args.smoke),
                           benchmark="macro")
        if "headline" in doc:
            print(json.dumps(doc["headline"], indent=2), file=sys.stderr)
    if args.only in (None, "scale"):
        results = run_scale_suite(smoke=args.smoke, repeat=args.repeat,
                                  repeats=args.repeats)
        doc = append_entry(out / "BENCH_scale.json",
                           bench_entry(args.label, results, args.smoke),
                           benchmark="scale")
        if "headline" in doc:
            print(json.dumps(doc["headline"], indent=2), file=sys.stderr)
    if args.only in (None, "nsshard"):
        results = run_nsshard_suite(smoke=args.smoke, repeat=args.repeat)
        entry = bench_entry(args.label, results, args.smoke)
        entry["curve"] = curve_summary(results)
        record_ns_shard_curve(out / "BENCH_scale.json", entry)
        print(json.dumps(entry["curve"], indent=2), file=sys.stderr)
    if args.only in (None, "compute"):
        results = run_compute_suite(smoke=args.smoke, repeat=args.repeat)
        entry = bench_entry(args.label, results, args.smoke)
        entry["ablation"] = ablation_summary(results)
        record_keyed_entry(out / "BENCH_macro.json", "compute_ablation",
                           entry, "macro")
        print(json.dumps(entry["ablation"], indent=2), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
