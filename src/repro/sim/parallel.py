"""Conservative parallel execution for the DES kernel.

The cluster model is *spatially* decomposable: providers talk mostly to
rack/switch neighbours, and every cross-host interaction rides the
fabric, which charges at least one propagation latency.  This module
partitions the simulated cluster across N event loops and synchronizes
them with a conservative bounded-window (YAWNS-style) barrier protocol:

* **PartitionMap** — hostid -> partition id, plus the extra one-way
  latency charged on cross-partition links (the inter-switch uplink
  hop the cut edges now traverse).  The *lookahead* ``L`` is the minimum
  cross-partition delivery delay: fabric latency + ``cross_latency``.
* **Transit** — the store-and-forward layer at the partition boundary.
  The sending fabric hands it ``(dst, extra)`` copies at tx completion;
  each becomes a record keyed ``(arrive, src_partition, seq)`` with
  ``arrive = tx_done + latency + extra + cross_latency``.  The receiving
  side drains a min-heap of records strictly in key order — the
  deterministic merge order for same-timestamp cross-partition events —
  reserving the receiver's rx link at drain time.  Drain wakes are
  priority-2 events, so at any instant every ordinary (priority <= 1)
  local event runs before any drain, in serial and parallel runs alike.
* **Grant engine** — time advances in grid-aligned windows (multiples
  of ``L``), granted in *batches*: worker ``V`` cannot act before the
  chained bound ``ea(V) = min(its next event, earliest record held for
  it, earliest other action + L)``, so nothing it sends can arrive
  before ``ea(V) + L`` — worker ``W`` may therefore run clear to
  ``grid_next(min over V != W of ea(V))`` in one round trip, often
  covering several windows and skipping idle workers entirely.  Workers with nothing to do
  below their grant are advanced silently (an empty window never
  touches the worker), and a worker whose last local process completes
  mid-grant parks at the next grid point; each "procs" phase ends with
  a drain to the phase-end barrier so every backend enters the next
  phase having executed exactly the events below it.  Grid alignment
  makes phase-transition times a pure function of *model* quantities
  (max process-completion time), which is what lets a serial run of the
  same partitioned model reproduce the parallel run bit for bit.  In
  the mp backend, record batches ride a shared-memory ring per worker
  (:class:`_ShmChannel`); the pipes carry only small control tuples.

Determinism contract: with a fixed partition map and seed, the
``serial`` (one Simulator hosting every partition), ``inproc`` (K
Simulators stepped round-robin in one process), and ``mp`` (K forked
worker processes) backends produce identical event interleavings per
host, hence identical results.  Installing a map *changes the model*
(cross-partition messages become store-and-forward with the uplink
latency added), so unpartitioned goldens are untouched; partitioned
scenarios pin their own.

An adaptive re-clustering pass (:func:`refine`) migrates chattering
hosts into the partition they talk to most, using the observed
cross-edge traffic matrix — the self-clustering heuristic.
"""

from __future__ import annotations

import heapq
import math
import pickle
import struct
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.network.message import (
    HEADER_BYTES,
    acquire_message,
    delivery_lane,
)
from repro.sim.events import SUCCEEDED, Event
from repro.sim.kernel import Simulator

#: Extra one-way latency charged on cut edges: the store-and-forward hop
#: through the inter-switch uplink that cross-partition traffic now
#: models explicitly (4x the intra-switch 80us port-to-port latency).
DEFAULT_CROSS_LATENCY = 320e-6

#: Metrics scope for cross-partition traffic (see repro.runtime.metrics).
PARTITION_SCOPE = "partition"


# ----------------------------------------------------------- partition map
@dataclass(frozen=True)
class PartitionMap:
    """hostid -> partition id, plus the cross-partition link model.

    Hosts absent from ``assignment`` (e.g. nodes attached at runtime)
    are treated as local to everyone: their traffic never crosses.
    """

    assignment: Dict[str, int]
    n_partitions: int
    cross_latency: float = DEFAULT_CROSS_LATENCY

    def pid(self, hostid: str) -> Optional[int]:
        return self.assignment.get(hostid)

    def is_cross(self, a: str, b: str) -> bool:
        m = self.assignment
        pa = m.get(a)
        if pa is None:
            return False
        pb = m.get(b)
        return pb is not None and pa != pb

    def lookahead(self, fabric_latency: float) -> float:
        """Minimum cross-partition delivery delay — the window grid unit."""
        return fabric_latency + self.cross_latency

    def members(self, pid: int) -> List[str]:
        return [h for h, p in self.assignment.items() if p == pid]

    def sizes(self) -> List[int]:
        sizes = [0] * self.n_partitions
        for p in self.assignment.values():
            sizes[p] += 1
        return sizes

    def cut_edges(self, traffic_out: Mapping) -> int:
        """Distinct (host, remote partition) pairs with observed traffic."""
        return sum(1 for (_h, dp), v in traffic_out.items() if v[0])


def plan_partitions(storage_hosts: Sequence[str], compute_hosts: Sequence[str],
                    n_partitions: int,
                    racks: Optional[Mapping[str, str]] = None,
                    cross_latency: float = DEFAULT_CROSS_LATENCY) -> PartitionMap:
    """A deterministic initial cut along switch/rack boundaries.

    Storage hosts are chunked contiguously (rack labels, when present,
    group hosts first, approximating one switch per rack); compute hosts
    are spread round-robin so every partition drives a share of the
    client load.  :func:`refine` improves the cut from observed traffic.
    """
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    storage = list(storage_hosts)
    if racks:
        # Stable grouping: racks in first-seen order, hosts in spec order.
        order: Dict[str, List[str]] = {}
        for h in storage:
            order.setdefault(racks.get(h, ""), []).append(h)
        storage = [h for group in order.values() for h in group]
    assignment: Dict[str, int] = {}
    base, rem = divmod(len(storage), n_partitions)
    i = 0
    for p in range(n_partitions):
        take = base + (1 if p < rem else 0)
        for h in storage[i:i + take]:
            assignment[h] = p
        i += take
    for j, h in enumerate(compute_hosts):
        assignment[h] = j % n_partitions
    return PartitionMap(assignment, n_partitions, cross_latency)


# ----------------------------------------------------------------- transit
class Transit:
    """Store-and-forward for cross-partition messages.

    One instance per Simulator.  In serial mode (``local_pid`` is None)
    it owns every partition's records; in worker mode it queues outbound
    records per destination partition (flushed at each barrier) and
    drains the records other workers sent it.

    Records are plain tuples — picklable for the mp backend — ordered by
    ``(arrive, src_partition, seq)``; ``seq`` counts sends per source
    partition, so the merge order is identical whether the records came
    from one heap or K.
    """

    def __init__(self, sim: Simulator, fabric, pmap: PartitionMap,
                 local_pid: Optional[int] = None, registry=None):
        self.sim = sim
        self.fabric = fabric
        self.pmap = pmap
        self.local_pid = local_pid
        self.registry = registry
        self._assign = pmap.assignment
        self._heap: List[tuple] = []
        self._seq = [0] * pmap.n_partitions
        self._wakes: set = set()
        self._drain_cb = self._drain
        self.outbox: Optional[Dict[int, List[tuple]]] = (
            {p: [] for p in range(pmap.n_partitions)}
            if local_pid is not None else None)
        # Counters + cross-edge traffic matrices (for refine/inspector).
        self.records_out = 0
        self.records_in = 0
        self.wakes = 0
        self.delivered = 0
        self.dropped = 0
        # Grant-protocol accounting (filled by the worker loop): how many
        # window grants this partition received, how many grid windows
        # they covered, and how many of those actually contained events.
        self.grants = 0
        self.windows_granted = 0
        self.windows_executed = 0
        self.traffic_out: Dict[Tuple[str, int], List[int]] = {}
        self.traffic_in: Dict[Tuple[str, int], List[int]] = {}

    @property
    def lookahead(self) -> float:
        return self.pmap.lookahead(self.fabric.latency)

    def is_cross(self, a: str, b: str) -> bool:
        m = self._assign
        pa = m.get(a)
        if pa is None:
            return False
        pb = m.get(b)
        return pb is not None and pa != pb

    # -- sending side ---------------------------------------------------
    def submit(self, msg, copies: List[Tuple[str, float]], tx_done: float) -> None:
        """Queue cross-partition copies of ``msg`` (called by the fabric
        while it still owns the envelope; fields are copied out here)."""
        assign = self._assign
        src_pid = assign[msg.src]
        base = tx_done + self.fabric.latency + self.pmap.cross_latency
        wire = msg.wire_size
        registry = self.registry
        seq = self._seq[src_pid]
        for hostid, extra in copies:
            seq += 1
            rec = (base + extra, src_pid, seq, hostid, msg.src, msg.kind,
                   msg.payload, msg.size, msg.group, msg.req_id)
            dst_pid = assign[hostid]
            cell = self.traffic_out.get((msg.src, dst_pid))
            if cell is None:
                cell = self.traffic_out[(msg.src, dst_pid)] = [0, 0]
            cell[0] += 1
            cell[1] += wire
            if registry is not None:
                registry.stats(PARTITION_SCOPE,
                               f"p{src_pid}->p{dst_pid}").observe_oneway(wire)
            if self.outbox is None:
                self._push(rec)
            else:
                self.outbox[dst_pid].append(rec)
        self._seq[src_pid] = seq
        self.records_out += len(copies)

    def flush_outbox(self) -> Dict[int, List[tuple]]:
        """Take and reset the per-partition outbound queues (mp/inproc)."""
        if self.outbox is None:
            return {}
        out = {p: recs for p, recs in self.outbox.items() if recs}
        for p in out:
            self.outbox[p] = []
        return out

    # -- receiving side -------------------------------------------------
    def inject(self, records: Sequence[tuple]) -> None:
        """Accept records shipped from other partitions (between windows;
        every ``arrive`` must still be in this worker's future)."""
        self.records_in += len(records)
        for rec in records:
            self._push(rec)

    def _push(self, rec: tuple) -> None:
        heapq.heappush(self._heap, rec)
        self._wake_at(rec[0])

    def _wake_at(self, t: float) -> None:
        if t in self._wakes:
            return
        self._wakes.add(t)
        # Priority 2: at instant t every ordinary local event (priority
        # <= 1) runs first, then the drain — identical interleaving in
        # serial and partitioned runs.  Scheduled by absolute time so the
        # drain's sim.now is bit-identical across backends.
        ev = Event(self.sim)
        ev.state = SUCCEEDED
        ev._callbacks = [self._drain_cb]
        self.sim._schedule_at(ev, t, priority=2)
        self.wakes += 1

    def _drain(self, _ev) -> None:
        sim = self.sim
        now = sim.now
        heap = self._heap
        while heap and heap[0][0] <= now:
            self._deliver(heapq.heappop(heap))
        if self._wakes:
            self._wakes = {t for t in self._wakes if t > now}
        if heap:  # belt and braces: never strand a record
            self._wake_at(heap[0][0])

    def _deliver(self, rec: tuple) -> None:
        arrive, src_pid, _seq, dst_id, src_id, kind, payload, size, group, req_id = rec
        cell = self.traffic_in.get((dst_id, src_pid))
        if cell is None:
            cell = self.traffic_in[(dst_id, src_pid)] = [0, 0]
        cell[0] += 1
        cell[1] += size + HEADER_BYTES
        fabric = self.fabric
        dst = fabric.hosts.get(dst_id)
        if dst is None or not dst.alive or dst.deliver is None:
            fabric.messages_dropped += 1
            self.dropped += 1
            return
        # The receiver's rx link is reserved at the boundary (not at the
        # sender's tx time): the record arrives at the partition edge at
        # ``arrive`` and only then competes for the destination NIC.
        _start, rx_done = dst.nic.rx.reserve(size + HEADER_BYTES,
                                             not_before=arrive)
        final = rx_done if rx_done > arrive else arrive
        msg = acquire_message(src_id, dst_id, kind, payload, size,
                              group=group, req_id=req_id)
        msg._refs = 1
        self.delivered += 1
        # Same lane as a direct fabric delivery: cross-cut copies tie-break
        # against local events identically in serial-with-map and windowed
        # runs.
        self.sim.timeout(final - self.sim.now,
                         lane=delivery_lane(src_id, dst_id)).add_callback(
            lambda _e, d=dst, m=msg: fabric._deliver_copy(d, m))

    # -- reporting ------------------------------------------------------
    def cross_matrix(self) -> Dict[str, List[int]]:
        """partition->partition [records, bytes], JSON-friendly keys."""
        assign = self._assign
        matrix: Dict[str, List[int]] = {}
        for (src_host, dst_pid), (cnt, nbytes) in self.traffic_out.items():
            key = f"p{assign[src_host]}->p{dst_pid}"
            cell = matrix.setdefault(key, [0, 0])
            cell[0] += cnt
            cell[1] += nbytes
        return matrix

    def stats_dict(self) -> Dict[str, Any]:
        return {
            "n_partitions": self.pmap.n_partitions,
            "local_pid": self.local_pid,
            "lookahead_s": self.lookahead,
            "records_out": self.records_out,
            "records_in": self.records_in,
            "wakes": self.wakes,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "grants": self.grants,
            "windows_granted": self.windows_granted,
            "windows_executed": self.windows_executed,
            "windows_per_grant": round(self.windows_granted / self.grants, 3)
            if self.grants else 0.0,
            "cross_matrix": self.cross_matrix(),
        }


# ------------------------------------------------- adaptive re-clustering
def merge_traffic(parts: Sequence[Mapping[Tuple[str, int], Sequence[int]]],
                  ) -> Dict[Tuple[str, int], List[int]]:
    merged: Dict[Tuple[str, int], List[int]] = {}
    for part in parts:
        for key, (cnt, nbytes) in part.items():
            cell = merged.get(key)
            if cell is None:
                merged[key] = [cnt, nbytes]
            else:
                cell[0] += cnt
                cell[1] += nbytes
    return merged


def refine(pmap: PartitionMap,
           traffic_out: Mapping[Tuple[str, int], Sequence[int]],
           traffic_in: Mapping[Tuple[str, int], Sequence[int]],
           slack: float = 0.25,
           max_moves: Optional[int] = None) -> Tuple[PartitionMap, int]:
    """One self-clustering pass: migrate chattering hosts into the
    partition they exchange the most messages with.

    ``traffic_out[(host, pid)]`` counts records host sent *to* partition
    pid; ``traffic_in[(host, pid)]`` counts records host received *from*
    pid (both as ``[records, bytes]``).  Hosts are visited in order of
    decreasing cross-partition traffic and moved greedily to their
    highest-affinity partition, subject to a balance cap of
    ``avg_size * (1 + slack)`` hosts per partition.  Deterministic:
    ties break on hostid.
    """
    P = pmap.n_partitions
    affinity: Dict[str, List[float]] = {}
    for (host, pid), (cnt, _b) in traffic_out.items():
        affinity.setdefault(host, [0.0] * P)[pid] += cnt
    for (host, pid), (cnt, _b) in traffic_in.items():
        affinity.setdefault(host, [0.0] * P)[pid] += cnt
    assignment = dict(pmap.assignment)
    sizes = pmap.sizes()
    cap = math.ceil(len(assignment) / P * (1.0 + slack))

    def cross_traffic(host: str) -> float:
        aff = affinity.get(host)
        if aff is None:
            return 0.0
        own = assignment.get(host)
        return sum(a for p, a in enumerate(aff) if p != own)

    moves = 0
    for host in sorted(affinity, key=lambda h: (-cross_traffic(h), h)):
        cur = assignment.get(host)
        if cur is None:
            continue
        aff = affinity[host]
        best = max(range(P), key=lambda p: (aff[p], -p))
        if best == cur or aff[best] <= aff[cur]:
            continue
        if sizes[best] + 1 > cap:
            continue
        assignment[host] = best
        sizes[cur] -= 1
        sizes[best] += 1
        moves += 1
        if max_moves is not None and moves >= max_moves:
            break
    return PartitionMap(assignment, P, pmap.cross_latency), moves


# ------------------------------------------------------------ window math
def _grid_next(t: float, L: float) -> float:
    """The smallest multiple of ``L`` strictly greater than ``t``."""
    return (math.floor(t / L) + 1) * L


def _grid_ceil(t: float, L: float) -> float:
    """The smallest multiple of ``L`` at or above ``t``."""
    return math.ceil(t / L) * L


# -------------------------------------------------------------- the worker
class _Worker:
    """One partition's event loop plus the per-phase bookkeeping.

    Identical code runs in all three backends; only how the coordinator
    reaches it differs (direct calls, or a command pipe).
    """

    def __init__(self, program):
        self.program = program
        self.sim: Simulator = program.sim
        self.transit: Transit = program.transit
        self._L: float = self.transit.lookahead
        self._mode: Optional[str] = None
        self._open = 0
        self._done_t = 0.0
        self._pos = 0.0
        self.busy_wall = 0.0

    # Commands ----------------------------------------------------------
    def handle(self, cmd: tuple):
        t0 = time.perf_counter()
        try:
            op = cmd[0]
            if op == "phase":
                return self._start_phase(cmd[1], cmd[2])
            if op == "win":
                return self._run_window(cmd[1], cmd[2])
            if op == "result":
                return {
                    "result": self.program.result(),
                    "events": self.sim._nprocessed,
                    "peak_pending": self.sim._peak_pending,
                    "clock": self.sim.now,
                    "busy_wall_s": self.busy_wall,
                    "transit": self.transit.stats_dict(),
                    "traffic_out": self.transit.traffic_out,
                    "traffic_in": self.transit.traffic_in,
                }
            raise ValueError(f"unknown worker command {op!r}")
        finally:
            self.busy_wall += time.perf_counter() - t0

    def _status(self, stop_t: Optional[float] = None, wexec: int = 0) -> tuple:
        done = self._mode != "procs" or self._open == 0
        return ("s", self.sim.next_event_time(), done, self._done_t,
                stop_t, wexec, self.transit.flush_outbox())

    def _start_phase(self, idx: int, t_start: float) -> tuple:
        sim = self.sim
        if t_start > sim.now:
            # Grid-aligned and > every processed event: a pure clock hop.
            sim.now = t_start
        kind, arg = self.program.phases()[idx]
        self._mode = kind
        self._open = 0
        self._done_t = sim.now
        self._pos = t_start
        sim.window_break = False
        if kind == "call":
            arg(self.program)
        elif kind == "procs":
            procs = arg(self.program)
            self._open = len(procs)

            def _one_done(_ev):
                self._open -= 1
                t = self.sim.now
                if t > self._done_t:
                    self._done_t = t
                if self._open == 0:
                    # Last local process just completed: ask the window
                    # loop to pause so the grant can be re-capped at the
                    # next grid point (no worker runs ahead of the
                    # phase-end barrier it can't see yet).
                    self.sim.window_break = True

            for p in procs:
                if p.triggered:
                    self._open -= 1
                else:
                    p.add_callback(_one_done)
        elif kind != "until":
            raise ValueError(f"unknown phase kind {kind!r}")
        return self._status()

    def _run_window(self, t_end: float, inbound) -> tuple:
        """Run every local event with ``t < t_end``, injecting ``inbound``
        transit records first.

        ``t_end`` may span many grid windows (a multi-window grant) —
        conservatively safe because the coordinator bounded it by every
        other partition's earliest possible send plus the lookahead.  If
        the last local process of a "procs" phase completes mid-grant,
        the effective end is pulled back to the next grid point, so the
        executed region never crosses the eventual phase-end barrier.
        """
        if inbound:
            self.transit.inject(inbound)
        sim = self.sim
        L = self._L
        tr = self.transit
        tr.grants += 1
        tr.windows_granted += max(0, round((t_end - self._pos) / L))
        wins = 0
        while True:
            wins += sim.run_window(t_end, L)
            if sim.window_break:
                sim.window_break = False
                stop = _grid_next(self._done_t, L)
                if stop < t_end:
                    t_end = stop
                continue
            break
        tr.windows_executed += wins
        self._pos = t_end
        return self._status(t_end, wins)


# ------------------------------------------- shared-memory record channel
#: Fixed-width record header: arrive f8, src_pid u4, seq i8, size i8,
#: req_id i8, flags u1, then the four variable-field lengths (dst, src,
#: kind, group as u2; pickled payload as u4).  Strings are utf-8; floats
#: round-trip exactly through ``d``, so decoded records compare equal to
#: the originals bit for bit.
_REC_HEAD = struct.Struct("<dIqqqBHHHHI")
_F_REQID = 1
_F_GROUP = 2
_F_PAYLOAD = 4


def _encode_records(records: Sequence[tuple]) -> bytes:
    """Compact struct encoding of transit records (payloads pickled)."""
    parts: List[bytes] = []
    pack = _REC_HEAD.pack
    dumps = pickle.dumps
    for (arrive, src_pid, seq, dst, src, kind, payload, size,
         group, req_id) in records:
        flags = 0
        if req_id is not None:
            flags |= _F_REQID
        g = b""
        if group is not None:
            flags |= _F_GROUP
            g = group.encode()
        p = b""
        if payload is not None:
            flags |= _F_PAYLOAD
            p = dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        d = dst.encode()
        s = src.encode()
        k = kind.encode()
        parts.append(pack(arrive, src_pid, seq, size,
                          req_id if req_id is not None else 0, flags,
                          len(d), len(s), len(k), len(g), len(p)))
        parts.append(d)
        parts.append(s)
        parts.append(k)
        if g:
            parts.append(g)
        if p:
            parts.append(p)
    return b"".join(parts)


def _decode_records(buf, off: int, count: int) -> List[tuple]:
    out = []
    unpack = _REC_HEAD.unpack_from
    hsz = _REC_HEAD.size
    loads = pickle.loads
    for _ in range(count):
        (arrive, src_pid, seq, size, req_id, flags,
         ld, ls, lk, lg, lp) = unpack(buf, off)
        off += hsz
        dst = bytes(buf[off:off + ld]).decode()
        off += ld
        src = bytes(buf[off:off + ls]).decode()
        off += ls
        kind = bytes(buf[off:off + lk]).decode()
        off += lk
        group = None
        if flags & _F_GROUP:
            group = bytes(buf[off:off + lg]).decode()
            off += lg
        payload = None
        if flags & _F_PAYLOAD:
            payload = loads(bytes(buf[off:off + lp]))
            off += lp
        out.append((arrive, src_pid, seq, dst, src, kind, payload, size,
                    group, req_id if flags & _F_REQID else None))
    return out


class _ShmChannel:
    """Shared-memory transit lane for one mp worker (fork start method).

    Cross-cut records ride a pair of single-writer byte rings in
    ``multiprocessing.shared_memory`` — coordinator→worker for grant
    inbounds, worker→coordinator for barrier flushes — so the pipe
    carries only small fixed-shape control tuples.  The strict
    request/reply protocol means a ring is always fully drained before
    its writer runs again, so each batch is written contiguously: at the
    ring's running offset when it fits before the end, else wrapped to
    offset 0.  The descriptor (offset, byte count, record counts) rides
    the pipe command, whose syscall ordering also fences the
    shared-memory writes.  A batch larger than the ring falls back to an
    inline pipe payload (counted, never fatal).
    """

    def __init__(self, capacity: int = 1 << 22):
        from multiprocessing import shared_memory

        self.capacity = capacity
        self._c2w = shared_memory.SharedMemory(create=True, size=capacity)
        self._w2c = shared_memory.SharedMemory(create=True, size=capacity)
        self._off = {id(self._c2w): 0, id(self._w2c): 0}
        # Parent-side accounting (the forked child's copies diverge).
        self.batches = 0
        self.bytes_shipped = 0
        self.fallbacks = 0

    def _write(self, shm, payload: bytes) -> Optional[int]:
        n = len(payload)
        if n > self.capacity:
            return None
        off = self._off[id(shm)]
        if off + n > self.capacity:
            off = 0
        shm.buf[off:off + n] = payload
        self._off[id(shm)] = off + n
        return off

    # -- coordinator side ----------------------------------------------
    def write_grant(self, records: Sequence[tuple]) -> Optional[tuple]:
        enc = _encode_records(records)
        off = self._write(self._c2w, enc)
        if off is None:
            self.fallbacks += 1
            return None
        self.batches += 1
        self.bytes_shipped += len(enc)
        return ("shm", off, len(enc), len(records))

    def read_flush(self, off: int, sections: Sequence[tuple]
                   ) -> Dict[int, List[tuple]]:
        out: Dict[int, List[tuple]] = {}
        buf = self._w2c.buf
        self.batches += 1
        for dst_pid, count, nbytes in sections:
            out[dst_pid] = _decode_records(buf, off, count)
            off += nbytes
            self.bytes_shipped += nbytes
        return out

    # -- worker side ----------------------------------------------------
    def read_grant(self, off: int, nbytes: int, count: int) -> List[tuple]:
        return _decode_records(self._c2w.buf, off, count)

    def write_flush(self, out: Dict[int, List[tuple]]) -> Optional[tuple]:
        sections = []
        parts = []
        for dst_pid, recs in out.items():
            enc = _encode_records(recs)
            sections.append((dst_pid, len(recs), len(enc)))
            parts.append(enc)
        payload = b"".join(parts)
        off = self._write(self._w2c, payload)
        if off is None:
            return None
        return ("shm", off, sections)

    # -- lifecycle ------------------------------------------------------
    def close_child(self) -> None:
        try:
            self._c2w.close()
            self._w2c.close()
        except OSError:  # pragma: no cover
            pass

    def close(self) -> None:
        for shm in (self._c2w, self._w2c):
            try:
                shm.close()
                shm.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass


# ------------------------------------------------------------- endpoints
class _LocalEndpoint:
    """In-process coordinator<->worker link (serial/inproc backends)."""

    def __init__(self, worker: _Worker):
        self.worker = worker
        self._reply = None

    def post(self, cmd: tuple) -> None:
        self._reply = self.worker.handle(cmd)

    def wait(self):
        reply, self._reply = self._reply, None
        return reply

    def stop(self) -> None:
        pass


class _PipeEndpoint:
    """Fork-per-partition link: low-rate control commands ride one Pipe;
    bulk transit records ride the shared-memory channel when present."""

    def __init__(self, conn, proc, channel: Optional[_ShmChannel] = None):
        self.conn = conn
        self.proc = proc
        self.channel = channel

    def post(self, cmd: tuple) -> None:
        if cmd[0] == "win":
            _op, t_end, inbound = cmd
            spec = None
            if inbound and self.channel is not None:
                spec = self.channel.write_grant(inbound)
            if spec is None:
                spec = ("inl", inbound)
            self.conn.send(("win", t_end, spec))
            return
        self.conn.send(cmd)

    def wait(self):
        reply = self.conn.recv()
        if isinstance(reply, tuple) and reply:
            if reply[0] == "err":
                raise RuntimeError(f"partition worker failed: {reply[1]}")
            if reply[0] == "s":
                spec = reply[6]
                if spec[0] == "shm":
                    out = self.channel.read_flush(spec[1], spec[2])
                else:
                    out = spec[1]
                return reply[:6] + (out,)
        return reply

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
            self.conn.close()
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=30)
        if self.proc.is_alive():
            self.proc.terminate()
        if self.channel is not None:
            self.channel.close()


def _mp_worker_main(conn, builder, args, pid,
                    channel: Optional[_ShmChannel] = None) -> None:
    try:
        program = builder(*args, local_pid=pid)
        worker = _Worker(program)
    except Exception as exc:  # noqa: BLE001 - ship the failure to the parent
        conn.send(("err", f"{type(exc).__name__}: {exc}"))
        return
    while True:
        cmd = conn.recv()
        if cmd[0] == "stop":
            if channel is not None:
                channel.close_child()
            return
        try:
            if cmd[0] == "win":
                spec = cmd[2]
                if spec[0] == "shm":
                    inbound = channel.read_grant(spec[1], spec[2], spec[3])
                else:
                    inbound = spec[1]
                reply = worker.handle(("win", cmd[1], inbound))
            else:
                reply = worker.handle(cmd)
            if isinstance(reply, tuple) and reply and reply[0] == "s":
                out = reply[6]
                spec = None
                if out and channel is not None:
                    spec = channel.write_flush(out)
                if spec is None:
                    spec = ("inl", out)
                reply = reply[:6] + (spec,)
            conn.send(reply)
        except Exception as exc:  # noqa: BLE001
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
            return


# ----------------------------------------------------------- coordinator
@dataclass
class RunStats:
    backend: str = "serial"
    n_partitions: int = 1
    windows: int = 0                # grid windows granted (sum over grants)
    barriers: int = 0               # coordination rounds
    grants: int = 0                 # "win" commands issued (round trips)
    windows_executed: int = 0       # granted windows that contained events
    windows_per_grant: float = 0.0  # windows / grants
    fallback_rounds: int = 0        # classic-window rounds (stall escape)
    records_shipped: int = 0
    shm_batches: int = 0            # record batches through the shm channel
    shm_bytes: int = 0
    shm_fallbacks: int = 0          # batches too big for the ring (pipe)
    wall_s: float = 0.0
    barrier_wall_s: float = 0.0     # coordinator time around window rounds
    busy_wall_s: List[float] = field(default_factory=list)
    events: List[int] = field(default_factory=list)
    phase_log: List[Dict[str, float]] = field(default_factory=list)


def run_partitioned(builder: Callable, args: tuple, pmap: PartitionMap,
                    phase_meta: Sequence[Tuple[str, Optional[float]]],
                    backend: str = "serial",
                    fabric_latency: Optional[float] = None,
                    horizon: float = 1e7,
                    max_grant_windows: Optional[int] = None) -> Dict[str, Any]:
    """Execute a phased partition program under conservative grants.

    ``builder(*args, local_pid=...)`` constructs one partition program: an
    object with ``sim`` (Simulator), ``transit`` (Transit), ``phases()``
    (the phase list) and ``result()`` (a picklable summary).  With
    ``local_pid=None`` it builds the whole model in one Simulator — the
    serial reference execution of the *same* partitioned model.

    ``phase_meta`` mirrors ``phases()`` shapes for the coordinator:
    ``("until", T)`` advances every partition to the grid point at/above
    ``T``; ``("call", None)`` runs a setup callable at the current grid
    point (no sim time passes); ``("procs", None)`` spawns processes and
    grants forward until every partition's processes have completed,
    then drains every partition to the phase-end barrier.

    **Grant rule.**  Worker ``V`` cannot act before ``act(V) = min(its
    next event time, the earliest arrival among records the coordinator
    still holds for it)`` — but it may also *react* to another worker's
    send one lookahead hop after it, so its true earliest action is the
    chained fixpoint ``ea(V) = min(act(V), min over U != V of ea(U) +
    L)`` (closed form: relax every ``act`` against the global minimum
    plus ``L``).  Nothing ``V`` sends can arrive before ``ea(V) + L``,
    so ``W`` may run to ``grant(W) = grid_next(min over V != W of
    ea(V))`` without ever receiving a record in its executed past.
    Workers with no work below their grant are advanced
    silently — an empty window never touches the worker, so skipping
    the round trip is exactly equivalent.  ``max_grant_windows`` caps
    the windows of *potential work* per grant (``None`` = adaptive,
    doubling on quiet inbound, halving on traffic); 1 reproduces
    single-window execution.

    Returns ``{"results": [per-partition result dicts], "stats": RunStats,
    "traffic_out"/"traffic_in": merged matrices}``.
    """
    t_wall0 = time.perf_counter()
    stats = RunStats(backend=backend, n_partitions=pmap.n_partitions)

    endpoints: List[Any] = []
    if backend == "serial":
        program = builder(*args, local_pid=None)
        endpoints.append(_LocalEndpoint(_Worker(program)))
        L = program.transit.lookahead
    elif backend == "inproc":
        for p in range(pmap.n_partitions):
            program = builder(*args, local_pid=p)
            endpoints.append(_LocalEndpoint(_Worker(program)))
        L = endpoints[0].worker.transit.lookahead
    elif backend == "mp":
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context("spawn")
        use_shm = ctx.get_start_method() == "fork"
        for p in range(pmap.n_partitions):
            parent_conn, child_conn = ctx.Pipe()
            channel = _ShmChannel() if use_shm else None
            proc = ctx.Process(target=_mp_worker_main,
                               args=(child_conn, builder, args, p, channel),
                               daemon=True)
            proc.start()
            child_conn.close()
            endpoints.append(_PipeEndpoint(parent_conn, proc, channel))
        if fabric_latency is None:
            raise ValueError("mp backend needs fabric_latency for lookahead")
        L = pmap.lookahead(fabric_latency)
    else:
        raise ValueError(f"unknown backend {backend!r}")

    n = len(endpoints)
    INF = math.inf
    adaptive = max_grant_windows is None
    cap = [8 if adaptive else max(1, max_grant_windows)] * n
    # Per-endpoint coordination state.  ``pos[i]`` is the grant frontier:
    # endpoint i has executed every event below it and nothing at/after.
    pos = [0.0] * n
    nev: List[Optional[float]] = [None] * n
    done = [True] * n
    done_t = [0.0] * n
    # Records generated in one grant, injected with the receiver's next.
    pending: Dict[int, List[tuple]] = {i: [] for i in range(n)}

    def absorb(i: int, reply: tuple) -> None:
        _tag, next_t, dn, dt, stop_t, wexec, out = reply
        nev[i] = next_t
        done[i] = dn
        done_t[i] = dt
        if stop_t is not None:
            pos[i] = stop_t
        stats.windows_executed += wexec
        for dst_pid, recs in out.items():
            pending[dst_pid if n > 1 else 0].extend(recs)
            stats.records_shipped += len(recs)

    def act(i: int) -> float:
        """Earliest instant endpoint i could possibly execute anything."""
        a = nev[i]
        a = INF if a is None else a
        recs = pending[i]
        if recs:
            first = min(rec[0] for rec in recs)
            if first < a:
                a = first
        return a

    try:
        t_cursor = 0.0
        for idx, (kind, until_t) in enumerate(phase_meta):
            t_phase0 = time.perf_counter()
            t_phase_start = t_cursor
            rounds0 = stats.barriers
            for ep in endpoints:
                ep.post(("phase", idx, t_cursor))
            for i, ep in enumerate(endpoints):
                absorb(i, ep.wait())
            for i in range(n):
                pos[i] = t_cursor
            if kind == "call":
                stats.phase_log.append({
                    "kind": kind, "t_start": round(t_phase_start, 9),
                    "t_end": round(t_cursor, 9), "rounds": 0,
                    "wall_s": round(time.perf_counter() - t_phase0, 3),
                })
                continue
            if kind == "until":
                target: Optional[float] = max(_grid_ceil(until_t, L), t_cursor)
            elif kind == "procs":
                target = None   # set once every local process completed
            else:
                raise ValueError(f"unknown phase kind {kind!r}")
            while True:
                acts = [act(i) for i in range(n)]
                t_min = min(acts)
                if target is None:
                    if all(done):
                        # Phase-end barrier: drain every partition to the
                        # grid point above the last completion, so each
                        # backend enters the next phase having executed
                        # exactly the events below it.
                        target = _grid_next(max(done_t), L)
                        continue
                elif t_min >= target:
                    t_cursor = target
                    break
                if t_min == INF:
                    raise RuntimeError(
                        f"phase {idx}: processes pending but no events "
                        "in any partition (deadlock)")
                if t_min > horizon:
                    raise RuntimeError(
                        f"phase {idx}: exceeded horizon {horizon}s")
                # Earliest possible *action* per endpoint, chained
                # through the cut: a worker with no imminent event can
                # still react to the earliest actor's sends one lookahead
                # hop later, so ``ea(V) = min(act(V), min over U != V of
                # ea(U) + L)``.  The fixpoint closes after one relaxation
                # against the global minimum (longer chains only add more
                # ``L``), and bounding grants by it is what keeps a
                # request->reply chain from landing a record inside a
                # span the requester was already granted.
                bound = t_min + L
                ea = [a if a <= bound else bound for a in acts]
                lo1 = lo2 = INF
                lo1i = -1
                for i, e in enumerate(ea):
                    if e < lo1:
                        lo2 = lo1
                        lo1 = e
                        lo1i = i
                    elif e < lo2:
                        lo2 = e
                contact: List[Tuple[int, float]] = []
                for i in range(n):
                    if n > 1:
                        ob = lo2 if i == lo1i else lo1
                    else:
                        ob = INF
                    a_i = acts[i]
                    if ob == INF:
                        g = INF
                    else:
                        g = _grid_next(ob, L)
                    # Cap the windows of potential work (from the first
                    # thing i could do) per grant, in grid units.
                    if a_i < INF:
                        base = max(round(pos[i] / L), math.floor(a_i / L))
                        lim = (base + cap[i]) * L
                        if g > lim:
                            g = lim
                    elif g == INF:
                        continue    # nothing to do, nothing to bound
                    if target is not None and g > target:
                        g = target
                    t_send = g if g > pos[i] else pos[i]
                    if a_i < t_send:
                        contact.append((i, t_send))
                    elif t_send > pos[i]:
                        # No work below the grant: an empty window never
                        # touches the worker, so advance the frontier
                        # without the round trip.
                        pos[i] = t_send
                if not contact:
                    # Mutually-pinned unfinished-idle workers can stall the
                    # grant rule (each pins the other's b at pos - L).
                    # Fall back to one classic global window: safe for the
                    # same reason the single-window protocol was.
                    t_end = _grid_next(t_min, L)
                    if target is not None and t_end > target:
                        t_end = target
                    contact = [(i, t_end if t_end > pos[i] else pos[i])
                               for i in range(n)
                               if acts[i] < max(t_end, pos[i])]
                    stats.fallback_rounds += 1
                    if not contact:
                        raise RuntimeError(
                            f"phase {idx}: grant scheduler stalled at "
                            f"t_min={t_min!r} (coordinator bug)")
                t_b0 = time.perf_counter()
                for i, t_send in contact:
                    inbound = pending[i]
                    if inbound:
                        pending[i] = []
                        if adaptive and cap[i] > 1:
                            cap[i] >>= 1
                    elif adaptive and cap[i] < 4096:
                        cap[i] <<= 1
                    stats.grants += 1
                    stats.windows += max(0, round((t_send - pos[i]) / L))
                    endpoints[i].post(("win", t_send, inbound))
                for i, _t in contact:
                    absorb(i, endpoints[i].wait())
                stats.barriers += 1
                stats.barrier_wall_s += time.perf_counter() - t_b0
            stats.phase_log.append({
                "kind": kind, "t_start": round(t_phase_start, 9),
                "t_end": round(t_cursor, 9),
                "rounds": stats.barriers - rounds0,
                "wall_s": round(time.perf_counter() - t_phase0, 3),
            })
        for ep in endpoints:
            ep.post(("result",))
        replies = [ep.wait() for ep in endpoints]
    finally:
        for ep in endpoints:
            ep.stop()

    stats.wall_s = time.perf_counter() - t_wall0
    stats.busy_wall_s = [r["busy_wall_s"] for r in replies]
    stats.events = [r["events"] for r in replies]
    if stats.grants:
        stats.windows_per_grant = round(stats.windows / stats.grants, 3)
    for ep in endpoints:
        ch = getattr(ep, "channel", None)
        if ch is not None:
            stats.shm_batches += ch.batches
            stats.shm_bytes += ch.bytes_shipped
            stats.shm_fallbacks += ch.fallbacks
    return {
        "results": [r["result"] for r in replies],
        "clocks": [r["clock"] for r in replies],
        "peaks": [r.get("peak_pending", 0) for r in replies],
        "transit": [r["transit"] for r in replies],
        "traffic_out": merge_traffic([r["traffic_out"] for r in replies]),
        "traffic_in": merge_traffic([r["traffic_in"] for r in replies]),
        "stats": stats,
    }
