"""Conservative parallel execution for the DES kernel.

The cluster model is *spatially* decomposable: providers talk mostly to
rack/switch neighbours, and every cross-host interaction rides the
fabric, which charges at least one propagation latency.  This module
partitions the simulated cluster across N event loops and synchronizes
them with a conservative bounded-window (YAWNS-style) barrier protocol:

* **PartitionMap** — hostid -> partition id, plus the extra one-way
  latency charged on cross-partition links (the inter-switch uplink
  hop the cut edges now traverse).  The *lookahead* ``L`` is the minimum
  cross-partition delivery delay: fabric latency + ``cross_latency``.
* **Transit** — the store-and-forward layer at the partition boundary.
  The sending fabric hands it ``(dst, extra)`` copies at tx completion;
  each becomes a record keyed ``(arrive, src_partition, seq)`` with
  ``arrive = tx_done + latency + extra + cross_latency``.  The receiving
  side drains a min-heap of records strictly in key order — the
  deterministic merge order for same-timestamp cross-partition events —
  reserving the receiver's rx link at drain time.  Drain wakes are
  priority-2 events, so at any instant every ordinary (priority <= 1)
  local event runs before any drain, in serial and parallel runs alike.
* **Window engine** — time advances in windows that always end on a
  multiple of ``L``: ``T_end = grid_next(min next-event-time)``.  Any
  message sent at ``t >= T_min`` arrives at ``>= t + L >= T_end``, so a
  window's records can be exchanged at the barrier after it without any
  worker ever receiving an event in its past.  Grid alignment makes
  phase-transition times a pure function of *model* quantities (max
  process-completion time), which is what lets a serial run of the same
  partitioned model reproduce the parallel run bit for bit.

Determinism contract: with a fixed partition map and seed, the
``serial`` (one Simulator hosting every partition), ``inproc`` (K
Simulators stepped round-robin in one process), and ``mp`` (K forked
worker processes) backends produce identical event interleavings per
host, hence identical results.  Installing a map *changes the model*
(cross-partition messages become store-and-forward with the uplink
latency added), so unpartitioned goldens are untouched; partitioned
scenarios pin their own.

An adaptive re-clustering pass (:func:`refine`) migrates chattering
hosts into the partition they talk to most, using the observed
cross-edge traffic matrix — the self-clustering heuristic.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.network.message import HEADER_BYTES, acquire_message
from repro.sim.events import SUCCEEDED, Event
from repro.sim.kernel import Simulator

#: Extra one-way latency charged on cut edges: the store-and-forward hop
#: through the inter-switch uplink that cross-partition traffic now
#: models explicitly (4x the intra-switch 80us port-to-port latency).
DEFAULT_CROSS_LATENCY = 320e-6

#: Metrics scope for cross-partition traffic (see repro.runtime.metrics).
PARTITION_SCOPE = "partition"


# ----------------------------------------------------------- partition map
@dataclass(frozen=True)
class PartitionMap:
    """hostid -> partition id, plus the cross-partition link model.

    Hosts absent from ``assignment`` (e.g. nodes attached at runtime)
    are treated as local to everyone: their traffic never crosses.
    """

    assignment: Dict[str, int]
    n_partitions: int
    cross_latency: float = DEFAULT_CROSS_LATENCY

    def pid(self, hostid: str) -> Optional[int]:
        return self.assignment.get(hostid)

    def is_cross(self, a: str, b: str) -> bool:
        m = self.assignment
        pa = m.get(a)
        if pa is None:
            return False
        pb = m.get(b)
        return pb is not None and pa != pb

    def lookahead(self, fabric_latency: float) -> float:
        """Minimum cross-partition delivery delay — the window grid unit."""
        return fabric_latency + self.cross_latency

    def members(self, pid: int) -> List[str]:
        return [h for h, p in self.assignment.items() if p == pid]

    def sizes(self) -> List[int]:
        sizes = [0] * self.n_partitions
        for p in self.assignment.values():
            sizes[p] += 1
        return sizes

    def cut_edges(self, traffic_out: Mapping) -> int:
        """Distinct (host, remote partition) pairs with observed traffic."""
        return sum(1 for (_h, dp), v in traffic_out.items() if v[0])


def plan_partitions(storage_hosts: Sequence[str], compute_hosts: Sequence[str],
                    n_partitions: int,
                    racks: Optional[Mapping[str, str]] = None,
                    cross_latency: float = DEFAULT_CROSS_LATENCY) -> PartitionMap:
    """A deterministic initial cut along switch/rack boundaries.

    Storage hosts are chunked contiguously (rack labels, when present,
    group hosts first, approximating one switch per rack); compute hosts
    are spread round-robin so every partition drives a share of the
    client load.  :func:`refine` improves the cut from observed traffic.
    """
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    storage = list(storage_hosts)
    if racks:
        # Stable grouping: racks in first-seen order, hosts in spec order.
        order: Dict[str, List[str]] = {}
        for h in storage:
            order.setdefault(racks.get(h, ""), []).append(h)
        storage = [h for group in order.values() for h in group]
    assignment: Dict[str, int] = {}
    base, rem = divmod(len(storage), n_partitions)
    i = 0
    for p in range(n_partitions):
        take = base + (1 if p < rem else 0)
        for h in storage[i:i + take]:
            assignment[h] = p
        i += take
    for j, h in enumerate(compute_hosts):
        assignment[h] = j % n_partitions
    return PartitionMap(assignment, n_partitions, cross_latency)


# ----------------------------------------------------------------- transit
class Transit:
    """Store-and-forward for cross-partition messages.

    One instance per Simulator.  In serial mode (``local_pid`` is None)
    it owns every partition's records; in worker mode it queues outbound
    records per destination partition (flushed at each barrier) and
    drains the records other workers sent it.

    Records are plain tuples — picklable for the mp backend — ordered by
    ``(arrive, src_partition, seq)``; ``seq`` counts sends per source
    partition, so the merge order is identical whether the records came
    from one heap or K.
    """

    def __init__(self, sim: Simulator, fabric, pmap: PartitionMap,
                 local_pid: Optional[int] = None, registry=None):
        self.sim = sim
        self.fabric = fabric
        self.pmap = pmap
        self.local_pid = local_pid
        self.registry = registry
        self._assign = pmap.assignment
        self._heap: List[tuple] = []
        self._seq = [0] * pmap.n_partitions
        self._wakes: set = set()
        self._drain_cb = self._drain
        self.outbox: Optional[Dict[int, List[tuple]]] = (
            {p: [] for p in range(pmap.n_partitions)}
            if local_pid is not None else None)
        # Counters + cross-edge traffic matrices (for refine/inspector).
        self.records_out = 0
        self.records_in = 0
        self.wakes = 0
        self.delivered = 0
        self.dropped = 0
        self.traffic_out: Dict[Tuple[str, int], List[int]] = {}
        self.traffic_in: Dict[Tuple[str, int], List[int]] = {}

    @property
    def lookahead(self) -> float:
        return self.pmap.lookahead(self.fabric.latency)

    def is_cross(self, a: str, b: str) -> bool:
        m = self._assign
        pa = m.get(a)
        if pa is None:
            return False
        pb = m.get(b)
        return pb is not None and pa != pb

    # -- sending side ---------------------------------------------------
    def submit(self, msg, copies: List[Tuple[str, float]], tx_done: float) -> None:
        """Queue cross-partition copies of ``msg`` (called by the fabric
        while it still owns the envelope; fields are copied out here)."""
        assign = self._assign
        src_pid = assign[msg.src]
        base = tx_done + self.fabric.latency + self.pmap.cross_latency
        wire = msg.wire_size
        registry = self.registry
        seq = self._seq[src_pid]
        for hostid, extra in copies:
            seq += 1
            rec = (base + extra, src_pid, seq, hostid, msg.src, msg.kind,
                   msg.payload, msg.size, msg.group, msg.req_id)
            dst_pid = assign[hostid]
            cell = self.traffic_out.get((msg.src, dst_pid))
            if cell is None:
                cell = self.traffic_out[(msg.src, dst_pid)] = [0, 0]
            cell[0] += 1
            cell[1] += wire
            if registry is not None:
                registry.stats(PARTITION_SCOPE,
                               f"p{src_pid}->p{dst_pid}").observe_oneway(wire)
            if self.outbox is None:
                self._push(rec)
            else:
                self.outbox[dst_pid].append(rec)
        self._seq[src_pid] = seq
        self.records_out += len(copies)

    def flush_outbox(self) -> Dict[int, List[tuple]]:
        """Take and reset the per-partition outbound queues (mp/inproc)."""
        if self.outbox is None:
            return {}
        out = {p: recs for p, recs in self.outbox.items() if recs}
        for p in out:
            self.outbox[p] = []
        return out

    # -- receiving side -------------------------------------------------
    def inject(self, records: Sequence[tuple]) -> None:
        """Accept records shipped from other partitions (between windows;
        every ``arrive`` must still be in this worker's future)."""
        self.records_in += len(records)
        for rec in records:
            self._push(rec)

    def _push(self, rec: tuple) -> None:
        heapq.heappush(self._heap, rec)
        self._wake_at(rec[0])

    def _wake_at(self, t: float) -> None:
        if t in self._wakes:
            return
        self._wakes.add(t)
        # Priority 2: at instant t every ordinary local event (priority
        # <= 1) runs first, then the drain — identical interleaving in
        # serial and partitioned runs.  Scheduled by absolute time so the
        # drain's sim.now is bit-identical across backends.
        ev = Event(self.sim)
        ev.state = SUCCEEDED
        ev._callbacks = [self._drain_cb]
        self.sim._schedule_at(ev, t, priority=2)
        self.wakes += 1

    def _drain(self, _ev) -> None:
        sim = self.sim
        now = sim.now
        heap = self._heap
        while heap and heap[0][0] <= now:
            self._deliver(heapq.heappop(heap))
        if self._wakes:
            self._wakes = {t for t in self._wakes if t > now}
        if heap:  # belt and braces: never strand a record
            self._wake_at(heap[0][0])

    def _deliver(self, rec: tuple) -> None:
        arrive, src_pid, _seq, dst_id, src_id, kind, payload, size, group, req_id = rec
        cell = self.traffic_in.get((dst_id, src_pid))
        if cell is None:
            cell = self.traffic_in[(dst_id, src_pid)] = [0, 0]
        cell[0] += 1
        cell[1] += size + HEADER_BYTES
        fabric = self.fabric
        dst = fabric.hosts.get(dst_id)
        if dst is None or not dst.alive or dst.deliver is None:
            fabric.messages_dropped += 1
            self.dropped += 1
            return
        # The receiver's rx link is reserved at the boundary (not at the
        # sender's tx time): the record arrives at the partition edge at
        # ``arrive`` and only then competes for the destination NIC.
        _start, rx_done = dst.nic.rx.reserve(size + HEADER_BYTES,
                                             not_before=arrive)
        final = rx_done if rx_done > arrive else arrive
        msg = acquire_message(src_id, dst_id, kind, payload, size,
                              group=group, req_id=req_id)
        msg._refs = 1
        self.delivered += 1
        self.sim.timeout(final - self.sim.now).add_callback(
            lambda _e, d=dst, m=msg: fabric._deliver_copy(d, m))

    # -- reporting ------------------------------------------------------
    def cross_matrix(self) -> Dict[str, List[int]]:
        """partition->partition [records, bytes], JSON-friendly keys."""
        assign = self._assign
        matrix: Dict[str, List[int]] = {}
        for (src_host, dst_pid), (cnt, nbytes) in self.traffic_out.items():
            key = f"p{assign[src_host]}->p{dst_pid}"
            cell = matrix.setdefault(key, [0, 0])
            cell[0] += cnt
            cell[1] += nbytes
        return matrix

    def stats_dict(self) -> Dict[str, Any]:
        return {
            "n_partitions": self.pmap.n_partitions,
            "local_pid": self.local_pid,
            "lookahead_s": self.lookahead,
            "records_out": self.records_out,
            "records_in": self.records_in,
            "wakes": self.wakes,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "cross_matrix": self.cross_matrix(),
        }


# ------------------------------------------------- adaptive re-clustering
def merge_traffic(parts: Sequence[Mapping[Tuple[str, int], Sequence[int]]],
                  ) -> Dict[Tuple[str, int], List[int]]:
    merged: Dict[Tuple[str, int], List[int]] = {}
    for part in parts:
        for key, (cnt, nbytes) in part.items():
            cell = merged.get(key)
            if cell is None:
                merged[key] = [cnt, nbytes]
            else:
                cell[0] += cnt
                cell[1] += nbytes
    return merged


def refine(pmap: PartitionMap,
           traffic_out: Mapping[Tuple[str, int], Sequence[int]],
           traffic_in: Mapping[Tuple[str, int], Sequence[int]],
           slack: float = 0.25,
           max_moves: Optional[int] = None) -> Tuple[PartitionMap, int]:
    """One self-clustering pass: migrate chattering hosts into the
    partition they exchange the most messages with.

    ``traffic_out[(host, pid)]`` counts records host sent *to* partition
    pid; ``traffic_in[(host, pid)]`` counts records host received *from*
    pid (both as ``[records, bytes]``).  Hosts are visited in order of
    decreasing cross-partition traffic and moved greedily to their
    highest-affinity partition, subject to a balance cap of
    ``avg_size * (1 + slack)`` hosts per partition.  Deterministic:
    ties break on hostid.
    """
    P = pmap.n_partitions
    affinity: Dict[str, List[float]] = {}
    for (host, pid), (cnt, _b) in traffic_out.items():
        affinity.setdefault(host, [0.0] * P)[pid] += cnt
    for (host, pid), (cnt, _b) in traffic_in.items():
        affinity.setdefault(host, [0.0] * P)[pid] += cnt
    assignment = dict(pmap.assignment)
    sizes = pmap.sizes()
    cap = math.ceil(len(assignment) / P * (1.0 + slack))

    def cross_traffic(host: str) -> float:
        aff = affinity.get(host)
        if aff is None:
            return 0.0
        own = assignment.get(host)
        return sum(a for p, a in enumerate(aff) if p != own)

    moves = 0
    for host in sorted(affinity, key=lambda h: (-cross_traffic(h), h)):
        cur = assignment.get(host)
        if cur is None:
            continue
        aff = affinity[host]
        best = max(range(P), key=lambda p: (aff[p], -p))
        if best == cur or aff[best] <= aff[cur]:
            continue
        if sizes[best] + 1 > cap:
            continue
        assignment[host] = best
        sizes[cur] -= 1
        sizes[best] += 1
        moves += 1
        if max_moves is not None and moves >= max_moves:
            break
    return PartitionMap(assignment, P, pmap.cross_latency), moves


# ------------------------------------------------------------ window math
def _grid_next(t: float, L: float) -> float:
    """The smallest multiple of ``L`` strictly greater than ``t``."""
    return (math.floor(t / L) + 1) * L


def _grid_ceil(t: float, L: float) -> float:
    """The smallest multiple of ``L`` at or above ``t``."""
    return math.ceil(t / L) * L


# -------------------------------------------------------------- the worker
class _Worker:
    """One partition's event loop plus the per-phase bookkeeping.

    Identical code runs in all three backends; only how the coordinator
    reaches it differs (direct calls, or a command pipe).
    """

    def __init__(self, program):
        self.program = program
        self.sim: Simulator = program.sim
        self.transit: Transit = program.transit
        self._mode: Optional[str] = None
        self._open = 0
        self._done_t = 0.0
        self.busy_wall = 0.0

    # Commands ----------------------------------------------------------
    def handle(self, cmd: tuple):
        t0 = time.perf_counter()
        try:
            op = cmd[0]
            if op == "phase":
                return self._start_phase(cmd[1], cmd[2])
            if op == "win":
                return self._run_window(cmd[1], cmd[2])
            if op == "result":
                return {
                    "result": self.program.result(),
                    "events": self.sim._nprocessed,
                    "peak_pending": self.sim._peak_pending,
                    "clock": self.sim.now,
                    "busy_wall_s": self.busy_wall,
                    "transit": self.transit.stats_dict(),
                    "traffic_out": self.transit.traffic_out,
                    "traffic_in": self.transit.traffic_in,
                }
            raise ValueError(f"unknown worker command {op!r}")
        finally:
            self.busy_wall += time.perf_counter() - t0

    def _status(self) -> tuple:
        done = self._mode != "procs" or self._open == 0
        return ("s", self.sim.next_event_time(), done, self._done_t,
                self.transit.flush_outbox())

    def _start_phase(self, idx: int, t_start: float) -> tuple:
        sim = self.sim
        if t_start > sim.now:
            # Grid-aligned and > every processed event: a pure clock hop.
            sim.now = t_start
        kind, arg = self.program.phases()[idx]
        self._mode = kind
        self._open = 0
        self._done_t = sim.now
        if kind == "call":
            arg(self.program)
        elif kind == "procs":
            procs = arg(self.program)
            self._open = len(procs)

            def _one_done(_ev):
                self._open -= 1
                t = self.sim.now
                if t > self._done_t:
                    self._done_t = t

            for p in procs:
                if p.triggered:
                    self._open -= 1
                else:
                    p.add_callback(_one_done)
        elif kind != "until":
            raise ValueError(f"unknown phase kind {kind!r}")
        return self._status()

    def _run_window(self, t_end: float, inbound) -> tuple:
        if inbound:
            self.transit.inject(inbound)
        sim = self.sim
        step = sim.step
        nxt = sim.next_event_time
        while True:
            t = nxt()
            if t is None or t >= t_end:
                break
            step()
        return self._status()


# ------------------------------------------------------------- endpoints
class _LocalEndpoint:
    """In-process coordinator<->worker link (serial/inproc backends)."""

    def __init__(self, worker: _Worker):
        self.worker = worker
        self._reply = None

    def post(self, cmd: tuple) -> None:
        self._reply = self.worker.handle(cmd)

    def wait(self):
        reply, self._reply = self._reply, None
        return reply

    def stop(self) -> None:
        pass


class _PipeEndpoint:
    """Fork-per-partition link: commands and records ride one Pipe."""

    def __init__(self, conn, proc):
        self.conn = conn
        self.proc = proc

    def post(self, cmd: tuple) -> None:
        self.conn.send(cmd)

    def wait(self):
        reply = self.conn.recv()
        if isinstance(reply, tuple) and reply and reply[0] == "err":
            raise RuntimeError(f"partition worker failed: {reply[1]}")
        return reply

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
            self.conn.close()
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=30)
        if self.proc.is_alive():
            self.proc.terminate()


def _mp_worker_main(conn, builder, args, pid) -> None:
    try:
        program = builder(*args, local_pid=pid)
        worker = _Worker(program)
    except Exception as exc:  # noqa: BLE001 - ship the failure to the parent
        conn.send(("err", f"{type(exc).__name__}: {exc}"))
        return
    while True:
        cmd = conn.recv()
        if cmd[0] == "stop":
            return
        try:
            conn.send(worker.handle(cmd))
        except Exception as exc:  # noqa: BLE001
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
            return


# ----------------------------------------------------------- coordinator
@dataclass
class RunStats:
    backend: str = "serial"
    n_partitions: int = 1
    windows: int = 0
    barriers: int = 0
    records_shipped: int = 0
    wall_s: float = 0.0
    barrier_wall_s: float = 0.0     # coordinator time around window rounds
    busy_wall_s: List[float] = field(default_factory=list)
    events: List[int] = field(default_factory=list)
    phase_log: List[Dict[str, float]] = field(default_factory=list)


def run_partitioned(builder: Callable, args: tuple, pmap: PartitionMap,
                    phase_meta: Sequence[Tuple[str, Optional[float]]],
                    backend: str = "serial",
                    fabric_latency: Optional[float] = None,
                    horizon: float = 1e7) -> Dict[str, Any]:
    """Execute a phased partition program under conservative windows.

    ``builder(*args, local_pid=...)`` constructs one partition program: an
    object with ``sim`` (Simulator), ``transit`` (Transit), ``phases()``
    (the phase list) and ``result()`` (a picklable summary).  With
    ``local_pid=None`` it builds the whole model in one Simulator — the
    serial reference execution of the *same* partitioned model.

    ``phase_meta`` mirrors ``phases()`` shapes for the coordinator:
    ``("until", T)`` advances every partition to the grid point at/above
    ``T``; ``("call", None)`` runs a setup callable at the current grid
    point (no sim time passes); ``("procs", None)`` spawns processes and
    windows forward until every partition's processes have completed.

    Returns ``{"results": [per-partition result dicts], "stats": RunStats,
    "traffic_out"/"traffic_in": merged matrices}``.
    """
    t_wall0 = time.perf_counter()
    stats = RunStats(backend=backend, n_partitions=pmap.n_partitions)

    endpoints: List[Any] = []
    if backend == "serial":
        program = builder(*args, local_pid=None)
        endpoints.append(_LocalEndpoint(_Worker(program)))
        L = program.transit.lookahead
    elif backend == "inproc":
        for p in range(pmap.n_partitions):
            program = builder(*args, local_pid=p)
            endpoints.append(_LocalEndpoint(_Worker(program)))
        L = endpoints[0].worker.transit.lookahead
    elif backend == "mp":
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context("spawn")
        for p in range(pmap.n_partitions):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_mp_worker_main,
                               args=(child_conn, builder, args, p),
                               daemon=True)
            proc.start()
            child_conn.close()
            endpoints.append(_PipeEndpoint(parent_conn, proc))
        if fabric_latency is None:
            raise ValueError("mp backend needs fabric_latency for lookahead")
        L = pmap.lookahead(fabric_latency)
    else:
        raise ValueError(f"unknown backend {backend!r}")

    def broadcast(make_cmd) -> List[tuple]:
        for i, ep in enumerate(endpoints):
            ep.post(make_cmd(i))
        return [ep.wait() for ep in endpoints]

    # Records generated in one window, distributed at the next barrier.
    pending: Dict[int, List[tuple]] = {i: [] for i in range(len(endpoints))}

    def absorb(replies) -> Tuple[Optional[float], bool, float]:
        """Fold a round of status replies into (T_min, all_done, t_all)."""
        t_min: Optional[float] = None
        all_done = True
        t_all = 0.0
        for _tag, next_t, done, done_t, out in replies:
            if next_t is not None and (t_min is None or next_t < t_min):
                t_min = next_t
            all_done = all_done and done
            if done_t > t_all:
                t_all = done_t
            for dst_pid, recs in out.items():
                pending[dst_pid if len(endpoints) > 1 else 0].extend(recs)
                stats.records_shipped += len(recs)
        for recs in pending.values():
            for rec in recs:
                if t_min is None or rec[0] < t_min:
                    t_min = rec[0]
        return t_min, all_done, t_all

    try:
        t_cursor = 0.0
        for idx, (kind, until_t) in enumerate(phase_meta):
            t_phase0 = time.perf_counter()
            t_phase_start = t_cursor
            replies = broadcast(lambda _i, idx=idx: ("phase", idx, t_cursor))
            t_min, all_done, t_all = absorb(replies)
            target = None
            if kind == "until":
                target = max(_grid_ceil(until_t, L), t_cursor)
            if kind != "call":
                while True:
                    if kind == "until" and (t_min is None or t_min >= target):
                        t_cursor = target
                        break
                    if kind == "procs" and all_done:
                        t_cursor = _grid_next(t_all, L)
                        break
                    if t_min is None:
                        raise RuntimeError(
                            f"phase {idx}: processes pending but no events "
                            "in any partition (deadlock)")
                    t_end = _grid_next(t_min, L)
                    if kind == "until" and t_end > target:
                        t_end = target
                    if t_end > horizon:
                        raise RuntimeError(
                            f"phase {idx}: exceeded horizon {horizon}s")
                    t_b0 = time.perf_counter()
                    inbound, pending = pending, {
                        i: [] for i in range(len(endpoints))}
                    replies = broadcast(
                        lambda i, t_end=t_end: ("win", t_end, inbound[i]))
                    stats.barrier_wall_s += time.perf_counter() - t_b0
                    stats.windows += 1
                    stats.barriers += 1
                    t_min, all_done, t_all = absorb(replies)
            stats.phase_log.append({
                "kind": kind, "t_start": round(t_phase_start, 9),
                "t_end": round(t_cursor, 9),
                "wall_s": round(time.perf_counter() - t_phase0, 3),
            })
        replies = broadcast(lambda _i: ("result",))
    finally:
        for ep in endpoints:
            ep.stop()

    stats.wall_s = time.perf_counter() - t_wall0
    stats.busy_wall_s = [r["busy_wall_s"] for r in replies]
    stats.events = [r["events"] for r in replies]
    return {
        "results": [r["result"] for r in replies],
        "clocks": [r["clock"] for r in replies],
        "peaks": [r.get("peak_pending", 0) for r in replies],
        "transit": [r["transit"] for r in replies],
        "traffic_out": merge_traffic([r["traffic_out"] for r in replies]),
        "traffic_in": merge_traffic([r["traffic_in"] for r in replies]),
        "stats": stats,
    }
