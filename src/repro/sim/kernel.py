"""The simulation kernel: virtual clock, event heap, and process driver.

Hot-path layout (this is the substrate every experiment is bottlenecked
on, so the per-event taxes are explicit):

* zero-delay events bypass ``heapq`` through two FIFOs — one for
  priority-0 "urgent" events (process bootstrap, interrupts) and one for
  ordinary same-tick triggers — preserving exactly the ``(time,
  priority, lane, seq)`` order the heap would have produced;
* deadlines are :class:`~repro.sim.events.Timer` objects that callers
  cancel on completion; cancelled entries are tombstones, swept (and the
  timer recycled through a free-list) when popped, and compacted in bulk
  when they outnumber the live heap;
* bootstrap/interrupt kick events are pooled (:class:`_Kick`);
* :meth:`Simulator.wait_any` waits for first-of-(event, deadline)
  without the per-call ``AnyOf`` allocation the RPC path used to pay.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Generator, Optional

from repro.sim.events import (
    CANCELLED,
    FAILED,
    PENDING,
    SUCCEEDED,
    AllOf,
    AnyOf,
    Event,
    EventFailed,
    Interrupt,
    Timeout,
    Timer,
    WaitAny,
)

#: Upper bound on the timer/kick free-lists (beyond this, garbage collect).
_POOL_MAX = 1024
#: Minimum tombstone count before a bulk heap compaction is considered.
_COMPACT_MIN = 64


class _Kick(Event):
    """A pooled, valueless, always-succeeded event used to (re)start a
    process: bootstrap and interrupts.  Recycled right after dispatch —
    nothing outside the kernel ever holds one."""

    __slots__ = ()


class Simulator:
    """Drives events in virtual time.

    The heap holds ``(time, priority, lane, seq, event)`` tuples.  ``lane``
    is the same-instant arbitration rule: local events carry lane 0, wire
    deliveries carry a stable lane derived from the (src, dst) pair (see
    :func:`repro.network.message.delivery_lane`), so ties at one
    ``(time, priority)`` resolve by *content* — locals first, then
    deliveries in lane order — independent of heap insertion order.  That
    independence is what makes one global Simulator and K per-partition
    Simulators (whose ``seq`` counters advance differently) dispatch
    same-instant events identically.  ``seq`` still breaks the remaining
    ties (same lane = same (src, dst) pair = per-pair FIFO).  The
    zero-delay FIFOs hold tuples of the same shape (always lane 0 — a
    laned zero-delay schedule is routed to the heap), and every pop takes
    the lexicographically-smallest tuple across all three containers, so
    the fast path is order-equivalent to the pure-heap kernel.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._imm0: deque = deque()  # zero-delay, priority 0 (urgent)
        self._imm1: deque = deque()  # zero-delay, priority 1
        self._seq: int = 0
        self._nprocessed: int = 0
        self._nswept: int = 0        # tombstoned timers removed un-dispatched
        self._ntomb: int = 0         # cancelled entries still in containers
        self._npending: int = 0
        self._peak_pending: int = 0
        self._timer_pool: list = []
        self._kick_pool: list = []
        #: Cooperative break for :meth:`run_window`: a callback fired
        #: mid-window (e.g. "my last local process completed") sets this
        #: to make the window loop return early.  The caller owns
        #: clearing it.
        self.window_break: bool = False
        #: The process whose generator is currently executing (None
        #: between resumptions).  Consumers like the tracer use it to
        #: attribute work to a logical task without threading a context
        #: argument through every generator.
        self.active_process: Optional["Process"] = None

    # -- introspection --------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Scheduled-but-unpopped events (tombstones included)."""
        return self._npending

    @property
    def peak_pending(self) -> int:
        """High-water mark of :attr:`pending_events` over the run."""
        return self._peak_pending

    def next_event_time(self) -> Optional[float]:
        """When the next event fires, or None if the simulation is idle."""
        t = self._heap[0][0] if self._heap else None
        if self._imm1 and (t is None or self._imm1[0][0] < t):
            t = self._imm1[0][0]
        if self._imm0 and (t is None or self._imm0[0][0] < t):
            t = self._imm0[0][0]
        return t

    # -- scheduling ---------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1,
                  lane: int = 0) -> None:
        self._seq += 1
        if delay == 0.0 and lane == 0:
            if priority == 0:
                self._imm0.append((self.now, 0, 0, self._seq, event))
            elif priority == 1:
                self._imm1.append((self.now, 1, 0, self._seq, event))
            else:
                heapq.heappush(self._heap,
                               (self.now, priority, 0, self._seq, event))
        else:
            heapq.heappush(self._heap,
                           (self.now + delay, priority, lane, self._seq, event))
        n = self._npending + 1
        self._npending = n
        if n > self._peak_pending:
            self._peak_pending = n

    def _schedule_at(self, event: Event, t: float, priority: int = 1,
                     lane: int = 0) -> None:
        """Schedule ``event`` at the *absolute* instant ``t``.

        ``_schedule(ev, t - now)`` stores ``now + (t - now)``, which under
        float arithmetic is not always ``t``.  The conservative parallel
        engine (:mod:`repro.sim.parallel`) needs its transit-drain wakes to
        fire at bit-identical instants in serial and partitioned runs, so
        it schedules by absolute time.  ``t`` must be ``>= now``.
        """
        self._seq += 1
        heapq.heappush(self._heap, (t, priority, lane, self._seq, event))
        n = self._npending + 1
        self._npending = n
        if n > self._peak_pending:
            self._peak_pending = n

    def timeout(self, delay: float, value: Any = None,
                lane: int = 0) -> Timeout:
        """An event firing after ``delay`` simulated seconds.

        ``lane`` is the same-instant arbitration lane (0 for ordinary
        local events; wire deliveries pass their (src, dst) lane so ties
        resolve insertion-order-independently).
        """
        return Timeout(self, delay, value, lane=lane)

    def timer(self, delay: float, value: Any = None) -> Timer:
        """A cancellable deadline, drawn from the kernel's free-list.

        Cancel it (``timer.cancel()``) the moment the thing it guards
        completes: the heap entry becomes a tombstone and the object is
        recycled.  Do not keep references to a cancelled timer.
        """
        if delay < 0:
            raise ValueError(f"negative timer delay: {delay}")
        pool = self._timer_pool
        if pool:
            t = pool.pop()
            t.state = SUCCEEDED
            t.value = value
            t._callbacks = []
            t.delay = delay
        else:
            t = Timer(self, delay, value)
        self._schedule(t, delay)
        return t

    def wait_any(self, event: Event, deadline: float) -> Event:
        """An event firing when ``event`` triggers or ``deadline`` seconds
        pass, whichever is first; its value is True if ``event`` won.

        This is the RPC hot path's replacement for
        ``AnyOf(sim, [ev, sim.timeout(deadline)])``: the deadline is a
        pooled cancellable timer, so a completed RPC leaves no dead event
        behind on the heap.
        """
        w = WaitAny(self)
        w._arm(event, self.timer(deadline))
        return w

    def event(self, name: str = "") -> Event:
        """A fresh untriggered event."""
        return Event(self, name)

    def all_of(self, events) -> Event:
        """An event firing once every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events) -> Event:
        """An event firing as soon as any event in ``events`` fires.

        For the two-way (event, deadline) case prefer :meth:`wait_any`,
        which cancels the losing deadline instead of leaving it on the
        heap.
        """
        return AnyOf(self, events)

    def process(self, gen: Generator, name: str = "") -> "Process":
        """Run a generator as a process; returns its Process event."""
        return Process(self, gen, name)

    def _kick(self, callback) -> None:
        """Schedule ``callback`` to run at the current instant with urgent
        priority, through a pooled kick event."""
        pool = self._kick_pool
        if pool:
            k = pool.pop()
            k._callbacks = [callback]
        else:
            k = _Kick(self)
            k.state = SUCCEEDED
            k._callbacks = [callback]
        self._schedule(k, 0.0, 0)

    def _note_cancelled(self) -> None:
        """Called by Timer.cancel(); compacts the heap when tombstones
        outnumber live entries (amortized O(1) per cancellation)."""
        self._ntomb += 1
        heap = self._heap
        if self._ntomb < _COMPACT_MIN or self._ntomb * 2 < len(heap):
            return
        pool = self._timer_pool
        live = []
        for entry in heap:
            ev = entry[4]
            if ev.state is CANCELLED:
                if type(ev) is Timer and len(pool) < _POOL_MAX:
                    ev.value = None
                    pool.append(ev)
            else:
                live.append(entry)
        removed = len(heap) - len(live)
        heapq.heapify(live)
        self._heap = live
        self._npending -= removed
        self._nswept += removed
        self._ntomb = 0

    # -- execution ------------------------------------------------------
    def step(self) -> None:
        """Process the next event (lowest ``(time, priority, lane, seq)``)."""
        imm0, imm1, heap = self._imm0, self._imm1, self._heap
        best = imm0[0] if imm0 else None
        use = 0
        if imm1 and (best is None or imm1[0] < best):
            best = imm1[0]
            use = 1
        if heap and (best is None or heap[0] < best):
            use = 2
        if use == 2:
            entry = heapq.heappop(heap)
        elif use == 1:
            entry = imm1.popleft()
        else:
            entry = imm0.popleft()
        when, _prio, _lane, _seq, event = entry
        self._npending -= 1
        self.now = when
        if event.state is CANCELLED:
            # Tombstone sweep: the deadline was voided after scheduling.
            self._nswept += 1
            if self._ntomb:
                self._ntomb -= 1
            if type(event) is Timer and len(self._timer_pool) < _POOL_MAX:
                event.value = None
                self._timer_pool.append(event)
            return
        self._nprocessed += 1
        event._dispatch()
        if type(event) is _Kick and len(self._kick_pool) < _POOL_MAX:
            self._kick_pool.append(event)

    def run_window(self, t_end: float, grid: float = 0.0) -> int:
        """Process every event strictly before ``t_end`` in one fused loop.

        The conservative-parallel harness used to alternate
        ``next_event_time()`` + ``step()``, peeking all three containers
        twice per event; with multi-window grants this *is* the worker
        hot loop, so the peek and the pop are fused here.  Selection
        order is identical to :meth:`step` (lexicographically smallest
        ``(time, priority, lane, seq)`` across the FIFOs and the heap).

        Returns the number of distinct grid-aligned windows of width
        ``grid`` that contained at least one processed event (0 when
        ``grid`` is 0) — the "granted vs executed" accounting for the
        grant protocol.  Stops early when :attr:`window_break` is set by
        a callback; the caller inspects and clears the flag.
        """
        imm0, imm1 = self._imm0, self._imm1
        pop = heapq.heappop
        wins = 0
        edge = -1.0
        while True:
            # NB: ``_heap`` must be re-read every iteration — a cancel
            # during dispatch can compact it into a fresh list
            # (:meth:`_note_cancelled`); the deques are never rebound.
            heap = self._heap
            src = 0
            best = imm0[0] if imm0 else None
            if imm1 and (best is None or imm1[0] < best):
                best = imm1[0]
                src = 1
            if heap and (best is None or heap[0] < best):
                best = heap[0]
                src = 2
            if best is None or best[0] >= t_end:
                return wins
            if src == 2:
                pop(heap)
            elif src == 1:
                imm1.popleft()
            else:
                imm0.popleft()
            when, _prio, _lane, _seq, event = best
            self._npending -= 1
            self.now = when
            if event.state is CANCELLED:
                self._nswept += 1
                if self._ntomb:
                    self._ntomb -= 1
                if type(event) is Timer and len(self._timer_pool) < _POOL_MAX:
                    event.value = None
                    self._timer_pool.append(event)
                continue
            self._nprocessed += 1
            if grid and when >= edge:
                wins += 1
                edge = (int(when / grid) + 1.0) * grid
            event._dispatch()
            if type(event) is _Kick and len(self._kick_pool) < _POOL_MAX:
                self._kick_pool.append(event)
            if self.window_break:
                return wins

    def run(self, until: Optional[float] = None) -> None:
        """Run until no events remain or virtual time passes ``until``."""
        if until is not None:
            while True:
                t = self.next_event_time()
                if t is None or t > until:
                    break
                self.step()
            self.now = max(self.now, until)
        else:
            while self._npending:
                self.step()

    def run_process(self, proc: "Process", until: Optional[float] = None) -> Any:
        """Run until ``proc`` finishes; return its value (raise on failure)."""
        while not proc.triggered:
            if not self._npending:
                raise RuntimeError(
                    f"deadlock: process {proc.name!r} never finished and no "
                    f"events remain at t={self.now:g}"
                )
            if until is not None and self.next_event_time() > until:
                raise RuntimeError(
                    f"process {proc.name!r} still pending at t={until:g}"
                )
            self.step()
        if proc.state == FAILED:
            raise proc.value
        return proc.value


def gather(sim: Simulator, gens) -> Generator:
    """Run sub-generators concurrently; return their results in order.

    Usage from a process: ``results = yield from gather(sim, [g1, g2])``.
    If any sub-process raises, the exception propagates (after all have
    settled) — callers needing partial results should catch per-generator.
    """
    procs = [sim.process(g, name="gather") for g in gens]
    done = Event(sim, name="gather-done")
    remaining = len(procs)
    if remaining == 0:
        return []

    def _on_done(_ev):
        nonlocal remaining
        remaining -= 1
        if remaining == 0 and not done.triggered:
            done.succeed()

    for p in procs:
        p.add_callback(_on_done)
    yield done
    results = []
    for p in procs:
        if p.state == FAILED:
            raise p.value
        results.append(p.value)
    return results


class Process(Event):
    """A generator-based coroutine running in virtual time.

    The generator yields :class:`Event` instances; the process resumes with
    the event's value (or the event's exception is thrown into it).  The
    process is itself an event that triggers when the generator returns
    (value = return value) or raises.
    """

    __slots__ = ("_gen", "_waiting_on", "_interrupts", "_resume_cb")

    def __init__(self, sim: Simulator, gen: Generator, name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self._interrupts: Optional[list] = None  # built lazily; rare
        # One bound method for the process's lifetime: registering and
        # tombstoning callbacks then never re-allocates it per yield.
        self._resume_cb = self._resume
        # Bootstrap: start the generator at the current sim time via a
        # pooled immediate kick.
        sim._kick(self._resume_cb)

    @property
    def is_alive(self) -> bool:
        """Whether the process is still running."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self.triggered:
            return
        if self._interrupts is None:
            self._interrupts = []
        self._interrupts.append(Interrupt(cause))
        if self._waiting_on is not None:
            target, self._waiting_on = self._waiting_on, None
            target.remove_callback(self._resume_cb)
        # Resume immediately (urgent priority so interrupts preempt).
        self.sim._kick(self._resume_cb)

    # -- internal ---------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        prev = self.sim.active_process
        self.sim.active_process = self
        try:
            self._step(trigger)
        finally:
            self.sim.active_process = prev

    def _step(self, trigger: Event) -> None:
        gen = self._gen
        while True:
            try:
                if self._interrupts:
                    target = gen.throw(self._interrupts.pop(0))
                elif trigger.state is FAILED:
                    exc = trigger.value
                    if not isinstance(exc, BaseException):
                        exc = EventFailed(exc)
                    target = gen.throw(exc)
                else:
                    target = gen.send(trigger.value)
            except StopIteration as stop:
                if self.state is PENDING:
                    self.succeed(stop.value)
                return
            except Interrupt:
                # Uncaught interrupt kills the process silently: this is the
                # normal fate of daemon loops on a crashed node.
                if self.state is PENDING:
                    self.succeed(None)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate to waiters
                if self.state is PENDING:
                    self.fail(exc)
                    return
                raise
            if not isinstance(target, Event):
                raise TypeError(
                    f"process {self.name!r} yielded {target!r}, not an Event"
                )
            if target.triggered and target._callbacks is None:
                # Already dispatched in the past: loop and consume inline.
                trigger = target
                continue
            self._waiting_on = target
            target.add_callback(self._resume_cb)
            return
