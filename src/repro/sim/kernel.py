"""The simulation kernel: virtual clock, event heap, and process driver."""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from repro.sim.events import (
    FAILED,
    PENDING,
    Event,
    EventFailed,
    Interrupt,
    Timeout,
)


class Simulator:
    """Drives events in virtual time.

    The heap holds ``(time, priority, seq, event)`` tuples; ``seq`` breaks
    ties deterministically, so identical runs replay identically.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self._nprocessed: int = 0
        #: The process whose generator is currently executing (None
        #: between resumptions).  Consumers like the tracer use it to
        #: attribute work to a logical task without threading a context
        #: argument through every generator.
        self.active_process: Optional["Process"] = None

    # -- scheduling ---------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, priority, self._seq, event))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def event(self, name: str = "") -> Event:
        """A fresh untriggered event."""
        return Event(self, name)

    def process(self, gen: Generator, name: str = "") -> "Process":
        """Run a generator as a process; returns its Process event."""
        return Process(self, gen, name)

    # -- execution ------------------------------------------------------
    def step(self) -> None:
        """Process the next event on the heap."""
        when, _prio, _seq, event = heapq.heappop(self._heap)
        self.now = when
        self._nprocessed += 1
        event._dispatch()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or virtual time passes ``until``."""
        if until is not None:
            while self._heap and self._heap[0][0] <= until:
                self.step()
            self.now = max(self.now, until)
        else:
            while self._heap:
                self.step()

    def run_process(self, proc: "Process", until: Optional[float] = None) -> Any:
        """Run until ``proc`` finishes; return its value (raise on failure)."""
        while not proc.triggered:
            if not self._heap:
                raise RuntimeError(
                    f"deadlock: process {proc.name!r} never finished and no "
                    f"events remain at t={self.now:g}"
                )
            if until is not None and self._heap[0][0] > until:
                raise RuntimeError(
                    f"process {proc.name!r} still pending at t={until:g}"
                )
            self.step()
        if proc.state == FAILED:
            raise proc.value
        return proc.value


def gather(sim: Simulator, gens) -> Generator:
    """Run sub-generators concurrently; return their results in order.

    Usage from a process: ``results = yield from gather(sim, [g1, g2])``.
    If any sub-process raises, the exception propagates (after all have
    settled) — callers needing partial results should catch per-generator.
    """
    procs = [sim.process(g, name=f"gather[{i}]") for i, g in enumerate(gens)]
    done = Event(sim, name="gather-done")
    remaining = len(procs)
    if remaining == 0:
        return []

    def _on_done(_ev):
        nonlocal remaining
        remaining -= 1
        if remaining == 0 and not done.triggered:
            done.succeed()

    for p in procs:
        p.add_callback(_on_done)
    yield done
    results = []
    for p in procs:
        if p.state == FAILED:
            raise p.value
        results.append(p.value)
    return results


class Process(Event):
    """A generator-based coroutine running in virtual time.

    The generator yields :class:`Event` instances; the process resumes with
    the event's value (or the event's exception is thrown into it).  The
    process is itself an event that triggers when the generator returns
    (value = return value) or raises.
    """

    __slots__ = ("_gen", "_waiting_on", "_interrupts")

    def __init__(self, sim: Simulator, gen: Generator, name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self._interrupts: list = []
        # Bootstrap: start the generator at the current sim time via an
        # immediate event.
        start = Event(sim, name=f"start:{self.name}")
        start.state = "succeeded"
        sim._schedule(start, 0.0, priority=0)
        start.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """Whether the process is still running."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self.triggered:
            return
        self._interrupts.append(Interrupt(cause))
        if self._waiting_on is not None:
            target, self._waiting_on = self._waiting_on, None
            target.remove_callback(self._resume)
        # Resume immediately (urgent priority so interrupts preempt).
        kick = Event(self.sim, name=f"interrupt:{self.name}")
        kick.state = "succeeded"
        self.sim._schedule(kick, 0.0, priority=0)
        kick.add_callback(self._resume)

    # -- internal ---------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        prev = self.sim.active_process
        self.sim.active_process = self
        try:
            self._step(trigger)
        finally:
            self.sim.active_process = prev

    def _step(self, trigger: Event) -> None:
        while True:
            try:
                if self._interrupts:
                    target = self._gen.throw(self._interrupts.pop(0))
                elif trigger.state == FAILED:
                    exc = trigger.value
                    if not isinstance(exc, BaseException):
                        exc = EventFailed(exc)
                    target = self._gen.throw(exc)
                else:
                    target = self._gen.send(trigger.value)
            except StopIteration as stop:
                if self.state == PENDING:
                    self.succeed(stop.value)
                return
            except Interrupt:
                # Uncaught interrupt kills the process silently: this is the
                # normal fate of daemon loops on a crashed node.
                if self.state == PENDING:
                    self.succeed(None)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate to waiters
                if self.state == PENDING:
                    self.fail(exc)
                    return
                raise
            if not isinstance(target, Event):
                raise TypeError(
                    f"process {self.name!r} yielded {target!r}, not an Event"
                )
            if target.triggered and target._callbacks is None:
                # Already dispatched in the past: loop and consume inline.
                trigger = target
                continue
            self._waiting_on = target
            target.add_callback(self._resume)
            return
