"""Discrete-event simulation kernel.

A small, dependency-free DES in the style of SimPy: a :class:`Simulator`
drives an event heap in virtual time, and *processes* are Python generators
that ``yield`` events (timeouts, resource grants, message arrivals) and are
resumed when those events trigger.

The kernel is the substrate that stands in for the paper's physical
clusters: all Sorrento daemons, clients, and baseline servers run as
processes on top of it.
"""

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    EventFailed,
    Interrupt,
    Timeout,
    Timer,
    WaitAny,
)
from repro.sim.kernel import Process, Simulator, gather
from repro.sim.resources import BandwidthPipe, Barrier, Resource, Store
from repro.sim.rng import RngStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthPipe",
    "Barrier",
    "Event",
    "EventFailed",
    "Interrupt",
    "Process",
    "Resource",
    "RngStreams",
    "Simulator",
    "Store",
    "Timeout",
    "Timer",
    "WaitAny",
    "gather",
]
