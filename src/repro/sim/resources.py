"""Shared resources for the DES: semaphores, queues, and bandwidth pipes."""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.events import PENDING, Event
from repro.sim.kernel import Simulator


class Resource:
    """A counted resource (semaphore) with FIFO granting.

    Usage from a process::

        grant = resource.request()
        yield grant
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def request(self) -> Event:
        """Ask for a slot; yields immediately if capacity is free."""
        ev = Event(self.sim, name="resource-grant")
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Free a slot, waking the next live waiter."""
        if self.in_use <= 0:
            raise RuntimeError("release without matching request")
        # Hand the slot to the next live waiter, if any.
        while self._waiters:
            ev = self._waiters.popleft()
            if ev.state is PENDING:
                ev.succeed()
                return
        self.in_use -= 1

    def cancel(self, ev: Event) -> None:
        """Abandon a pending request (e.g. the requester was interrupted)."""
        if ev in self._waiters and ev.state is PENDING:
            self._waiters.remove(ev)

    @property
    def queue_length(self) -> int:
        """Pending (unserved) requests."""
        return len(self._waiters)


class Store:
    """An unbounded FIFO queue of items; ``get`` blocks until one arrives."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Enqueue; wakes a waiting getter if any."""
        while self._getters:
            ev = self._getters.popleft()
            if ev.state is PENDING:
                ev.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """Event that yields the next item (immediately if buffered)."""
        ev = Event(self.sim, name="store-get")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)


class Barrier:
    """An MPI-style barrier for a fixed party size.

    The n-th arrival releases everyone; the barrier then resets for the
    next round (cyclic, like MPI_Barrier on a communicator).
    """

    def __init__(self, sim: Simulator, parties: int):
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.sim = sim
        self.parties = parties
        self._arrived = 0
        self._gate = Event(sim, name="barrier")
        self.generation = 0

    def wait(self):
        """Generator: block until all parties arrive."""
        self._arrived += 1
        if self._arrived >= self.parties:
            gate, self._gate = self._gate, Event(self.sim, name="barrier")
            self._arrived = 0
            self.generation += 1
            gate.succeed(self.generation)
            yield self.sim.timeout(0)
            return self.generation
        gen = yield self._gate
        return gen


class BandwidthPipe:
    """A byte server modelling a link or a disk bus.

    Bulk transfers are FIFO: ``nbytes`` completes ``nbytes / rate``
    seconds after all previously queued bulk work.  Small messages
    (≤ ``small_bypass`` bytes) *cut through*: on a packet-switched link a
    64-byte RPC interleaves with an in-flight 4 MB stream instead of
    waiting behind it, so small completions ignore the bulk backlog while
    still consuming capacity.  ``small_bypass=0`` (disks) disables the
    bypass — platters really do serialize.
    """

    def __init__(self, sim: Simulator, rate: float, overhead: float = 0.0,
                 small_bypass: int = 0):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.rate = rate
        self.overhead = overhead
        self.small_bypass = small_bypass
        self._ready_at = 0.0
        self.bytes_transferred = 0

    def reserve(self, nbytes: float, not_before: float = 0.0):
        """Book ``nbytes`` of capacity; returns (start, done) times.

        Unlike :meth:`transfer`, no event is created — callers compose
        reservations across pipes (e.g. pipelined tx→rx transfers).
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if self.small_bypass and nbytes <= self.small_bypass:
            start = max(self.sim.now, not_before)
            done = start + self.overhead + nbytes / self.rate
            # Capacity is still consumed; only the waiting is skipped.
            self._ready_at = max(self._ready_at, self.sim.now) + nbytes / self.rate
            self.bytes_transferred += int(nbytes)
            return start, done
        start = max(self.sim.now, self._ready_at, not_before)
        done = start + self.overhead + nbytes / self.rate
        self._ready_at = done
        self.bytes_transferred += int(nbytes)
        return start, done

    def transfer(self, nbytes: float) -> Event:
        """Queue ``nbytes`` and return an event for its completion."""
        _start, done = self.reserve(nbytes)
        return self.sim.timeout(done - self.sim.now)

    def busy_until(self) -> float:
        """When the pipe's queued work drains."""
        return max(self.sim.now, self._ready_at)

    @property
    def backlog_seconds(self) -> float:
        """Seconds of queued work ahead of a new arrival."""
        return max(0.0, self._ready_at - self.sim.now)

    def utilization_since(self, t0: float, bytes0: int) -> float:
        """Average utilization over [t0, now] given a byte snapshot at t0."""
        dt = self.sim.now - t0
        if dt <= 0:
            return 0.0
        return min(1.0, (self.bytes_transferred - bytes0) / self.rate / dt)
