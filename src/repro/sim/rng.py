"""Deterministic, named random streams.

Every component draws from its own stream so that adding randomness in one
place never perturbs another — runs are reproducible bit-for-bit from a
single root seed.
"""

from __future__ import annotations

import hashlib
import random

import numpy as np


def _derive(seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A factory of independent named random generators."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._py: dict[str, random.Random] = {}
        self._np: dict[str, np.random.Generator] = {}

    def py(self, name: str) -> random.Random:
        """A ``random.Random`` stream, created on first use."""
        rng = self._py.get(name)
        if rng is None:
            rng = self._py[name] = random.Random(_derive(self.seed, name))
        return rng

    def np(self, name: str) -> np.random.Generator:
        """A numpy Generator stream, created on first use."""
        rng = self._np.get(name)
        if rng is None:
            rng = self._np[name] = np.random.default_rng(_derive(self.seed, name))
        return rng
