"""Event primitives for the DES kernel.

An :class:`Event` is a one-shot occurrence in virtual time.  Processes wait
on events by ``yield``-ing them; the kernel resumes the process with the
event's value (or raises its exception) once the event triggers.

Hot-path discipline: events carry no eagerly-built name strings (names are
lazy, computed in ``__repr__``), deadline :class:`Timer` objects are
cancellable and pooled by the simulator, and callback removal tombstones
instead of compacting the list.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

PENDING = "pending"
SUCCEEDED = "succeeded"
FAILED = "failed"
#: A triggered-but-undispatched timer whose deadline no longer matters;
#: the kernel sweeps it from the heap without dispatching (and recycles
#: :class:`Timer` instances through its free-list).
CANCELLED = "cancelled"


class EventFailed(Exception):
    """Raised in a waiting process when the event it waited on failed."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    ``cause`` carries an arbitrary payload describing why (e.g. a node
    crash during the failure-injection experiments).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    Events move from *pending* to exactly one of *succeeded* or *failed*.
    Callbacks registered before the trigger fire when the kernel pops the
    event from its heap; callbacks added afterwards fire immediately.
    """

    __slots__ = ("sim", "state", "value", "_callbacks", "_name")

    def __init__(self, sim: "Simulator", name: str = ""):  # noqa: F821
        self.sim = sim
        self.state = PENDING
        self.value: Any = None
        self._callbacks: Optional[list] = []
        self._name = name

    # -- state ------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @name.setter
    def name(self, value: str) -> None:
        self._name = value

    @property
    def triggered(self) -> bool:
        return self.state is not PENDING

    @property
    def ok(self) -> bool:
        return self.state is SUCCEEDED

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Mark the event successful and schedule its callbacks."""
        if self.state is not PENDING:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self.state = SUCCEEDED
        self.value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed; waiters will see ``exc`` raised."""
        if self.state is not PENDING:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self.state = FAILED
        self.value = exc
        self.sim._schedule(self, delay)
        return self

    # -- callbacks --------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self._callbacks is None:
            # Already dispatched: run inline (event is in the past).
            fn(self)
        else:
            self._callbacks.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        """Detach ``fn`` by tombstoning its slot (swept at dispatch).

        No list compaction: interrupts and ``wait_any`` cleanup hit this
        on the hot path, and shifting the tail is the expensive part of
        ``list.remove``.
        """
        cbs = self._callbacks
        if cbs is not None:
            for i, cb in enumerate(cbs):
                if cb == fn:
                    cbs[i] = None
                    return

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for fn in callbacks:
                if fn is not None:
                    fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} {self.state}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation.

    ``lane`` feeds the kernel's same-instant arbitration: 0 (the default)
    for ordinary local events, a stable ``delivery_lane(src, dst)`` value
    for wire deliveries — so two events colliding at one ``(time,
    priority)`` order by content, never by scheduling order.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,  # noqa: F821
                 lane: int = 0):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self.state = SUCCEEDED
        self.value = value
        sim._schedule(self, delay, lane=lane)

    @property
    def name(self) -> str:
        # Lazy: the hot path never pays for the f-string.
        return self._name or f"timeout({self.delay:g})"

    @name.setter
    def name(self, value: str) -> None:
        self._name = value


class Timer(Event):
    """A cancellable deadline, pooled by the simulator.

    Like :class:`Timeout` it is born in the succeeded state and fires
    ``delay`` seconds after scheduling — but :meth:`cancel` turns the
    pending heap entry into a tombstone the kernel sweeps (and recycles)
    without dispatching.  Acquire through ``Simulator.timer()``; never
    hold a reference past cancellation, the object is reused.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):  # noqa: F821
        super().__init__(sim)
        self.delay = delay
        self.state = SUCCEEDED
        self.value = value

    def cancel(self) -> None:
        """Void the deadline; a no-op once the timer has dispatched."""
        if self.state is SUCCEEDED and self._callbacks is not None:
            self.state = CANCELLED
            self._callbacks = None
            self.sim._note_cancelled()

    @property
    def name(self) -> str:
        return self._name or f"timer({self.delay:g})"

    @name.setter
    def name(self, value: str) -> None:
        self._name = value


class WaitAny(Event):
    """First-of-(event, deadline) without an :class:`AnyOf` allocation.

    Fires with value ``True`` if the child event triggered first and
    ``False`` if the deadline expired; the losing side is detached
    (deadline cancelled, or the child's callback tombstoned).  A child
    *failure* is treated as silence, matching ``AnyOf``'s behaviour of
    only failing once every child has failed — with a deadline present,
    that surfaces as a timeout.  Built via ``Simulator.wait_any()``.
    """

    __slots__ = ("_child", "_timer")

    def _arm(self, child: Event, timer: Timer) -> None:
        self._child = child
        self._timer = timer
        child.add_callback(self._on_child)  # may fire inline if in the past
        if self.state is PENDING:
            timer.add_callback(self._on_timer)
        else:
            timer.cancel()

    def _on_child(self, ev: Event) -> None:
        if self.state is PENDING and ev.state is not FAILED:
            self._timer.cancel()
            self.succeed(True)

    def _on_timer(self, _timer: Event) -> None:
        if self.state is PENDING:
            self._child.remove_callback(self._on_child)
            self.succeed(False)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):  # noqa: F821
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        # Only events that have actually *dispatched* count: a Timeout is
        # born in the succeeded state but hasn't happened until the kernel
        # pops it from the heap (callbacks cleared at dispatch).
        return {
            i: ev.value
            for i, ev in enumerate(self.events)
            if ev.state == SUCCEEDED and ev._callbacks is None
        }


class AllOf(_Condition):
    """Triggers once every child event has triggered.

    Fails (with the first child's exception) if any child fails.
    """

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev.state == FAILED:
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._results())


class AnyOf(_Condition):
    """Triggers as soon as any child event succeeds.

    Fails only if *all* children fail.
    """

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev.state == SUCCEEDED:
            self.succeed(self._results())
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.fail(ev.value)
