"""The simulated cluster node: CPU, storage device, NIC, and load monitor.

A node is the unit of failure.  ``crash()`` kills every process spawned on
the node and silences its NIC; the file system contents survive (the paper:
a repaired machine "can be directly connected to the network without the
need to reformat the partitions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.spec import NodeSpec
from repro.network.switch import Fabric, Host
from repro.network.transport import Endpoint
from repro.runtime import ServiceRuntime
from repro.sim import BandwidthPipe, Event, Process, Simulator
from repro.storage import DISK_SPECS, Disk, LocalFS, Raid0

#: Load-sampling interval (seconds).
SAMPLE_INTERVAL = 1.0

#: EWMA weight for new samples (the paper specifies EWMA for I/O wait).
EWMA_ALPHA = 0.3


@dataclass
class LoadSample:
    """One snapshot of a node's resource usage."""

    t: float
    cpu_util: float
    io_wait: float
    storage_util: float


class Node(Host):
    """A cluster node: CPU pipe + optional local FS + network endpoint."""

    def __init__(self, sim: Simulator, fabric: Fabric, spec: NodeSpec,
                 dormant: bool = False):
        super().__init__(sim, spec.name, rate=spec.nic_rate)
        self.spec = spec
        self.fabric = fabric
        # Dormant shells exist so every partition worker builds the full
        # cluster identically (same construction order, same named RNG
        # streams) while only its own partition's daemons actually run:
        # spawn() drops the generator and the load monitor never starts.
        # The node stays attached and alive — messages addressed to it are
        # diverted to the owning partition by the fabric's transit hook,
        # never delivered here.
        self.dormant = dormant
        fabric.attach(self)
        self.endpoint = Endpoint(sim, fabric, self)
        # Daemons talk RPC through the runtime, never the raw endpoint;
        # both survive crash()/restart() (services stay registered).
        self.runtime = ServiceRuntime(self.endpoint)
        # CPU: a FIFO pipe whose "bytes" are reference-GHz-seconds of work.
        self.cpu_pipe = BandwidthPipe(sim, rate=spec.cpus * spec.cpu_ghz)
        # Storage device + local FS, if this node exports storage.
        self.device = None
        self.fs: Optional[LocalFS] = None
        if spec.disks:
            disks = [Disk(sim, DISK_SPECS[d]) for d in spec.disks]
            self.device = disks[0] if len(disks) == 1 else Raid0(sim, disks)
            self.fs = LocalFS(sim, self.device,
                              capacity=spec.export_capacity or None)
        # Load bookkeeping.
        self.cpu_util = 0.0
        self.io_wait = 0.0
        self._procs: List[Process] = []
        self._prune_at = 64
        self._last_cpu_bytes = 0
        self._last_disk_busy = 0.0
        self._monitor: Optional[Process] = None
        if not dormant:
            self.start_monitor()

    # -- CPU ------------------------------------------------------------
    def cpu(self, work_s: float) -> Event:
        """Queue ``work_s`` reference-GHz-seconds of CPU work."""
        return self.cpu_pipe.transfer(work_s)

    # -- process management ----------------------------------------------
    def spawn(self, gen, name: str = "") -> Optional[Process]:
        """Run a process that dies with the node (no-op when dormant)."""
        if self.dormant:
            gen.close()
            return None
        proc = self.sim.process(gen, name=f"{self.hostid}:{name}")
        self._procs.append(proc)
        if len(self._procs) >= self._prune_at:
            # Amortized prune: rescan only once the list has doubled past
            # the survivors, so steady-state spawns cost O(1) instead of
            # an is_alive sweep each time the list exceeds a fixed cap.
            self._procs = [p for p in self._procs if p.is_alive]
            self._prune_at = max(64, 2 * len(self._procs))
        return proc

    def start_monitor(self) -> None:
        self._monitor = self.sim.process(self._monitor_loop(),
                                         name=f"{self.hostid}:loadmon")

    def _monitor_loop(self):
        while self.alive:
            yield self.sim.timeout(SAMPLE_INTERVAL)
            cpu_bytes = self.cpu_pipe.bytes_transferred
            cpu_inst = min(1.0, (cpu_bytes - self._last_cpu_bytes)
                           / (self.cpu_pipe.rate * SAMPLE_INTERVAL))
            self._last_cpu_bytes = cpu_bytes
            io_inst = 0.0
            if self.device is not None:
                busy = self.device.busy_accum
                io_inst = min(1.0, (busy - self._last_disk_busy) / SAMPLE_INTERVAL)
                self._last_disk_busy = busy
            self.cpu_util = EWMA_ALPHA * cpu_inst + (1 - EWMA_ALPHA) * self.cpu_util
            self.io_wait = EWMA_ALPHA * io_inst + (1 - EWMA_ALPHA) * self.io_wait

    # -- load reporting ---------------------------------------------------
    @property
    def load(self) -> float:
        """Combined CPU + I/O-wait load in [0, 1] (the paper's ``l``)."""
        return min(1.0, self.cpu_util + self.io_wait)

    @property
    def storage_utilization(self) -> float:
        return self.fs.utilization if self.fs is not None else 0.0

    @property
    def storage_available(self) -> int:
        return self.fs.available if self.fs is not None else 0

    def sample(self) -> LoadSample:
        return LoadSample(self.sim.now, self.cpu_util, self.io_wait,
                          self.storage_utilization)

    # -- failure injection --------------------------------------------
    def set_disk_fault(self, fault) -> None:
        """Degrade this node's storage device (see :mod:`repro.faults`);
        ``fault`` is a :class:`~repro.storage.disk.DiskFaultState`."""
        if self.device is None:
            raise ValueError(f"{self.hostid} exports no storage device")
        self.device.set_fault(fault)

    def clear_disk_fault(self) -> None:
        """Restore nominal disk service (no-op without a device)."""
        if self.device is not None:
            self.device.clear_fault()

    def crash(self, wipe: bool = False) -> None:
        """Fail the node: NIC silent, all node processes interrupted.

        Disk contents survive unless ``wipe=True`` (disk replacement).
        """
        if not self.alive:
            return
        self.alive = False
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt(cause=f"{self.hostid} crashed")
        self._procs.clear()
        self._prune_at = 64
        if self._monitor is not None and self._monitor.is_alive:
            self._monitor.interrupt(cause="crash")
            self._monitor = None
        if self.fs is not None and self.fs.engine is not None:
            # Power loss: the page cache dies with the node; dirty pages
            # (and the files they belonged to) are recorded as lost for
            # the provider's restart path to reconcile.
            self.fs.engine.on_crash()
        if wipe and self.fs is not None:
            self.fs.files.clear()
            self.fs.used = 0

    def restart(self) -> None:
        """Bring the node back up (daemons must be restarted by their owners)."""
        if self.alive:
            return
        self.alive = True
        self.cpu_util = 0.0
        self.io_wait = 0.0
        self._last_cpu_bytes = self.cpu_pipe.bytes_transferred
        if self.device is not None:
            # Power-cycle the drive before sampling its busy ledger: the
            # pre-crash request backlog must not be inherited (and the
            # ledger reset must not make monitor deltas negative).
            self.device.reset()
            self._last_disk_busy = self.device.busy_accum
        self.start_monitor()
