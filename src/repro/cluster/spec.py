"""Hardware descriptions of the paper's two clusters (Figure 8).

Cluster A: 30 dual P-II 400 MHz nodes, 512 MB each; 10 nodes export one
SCSI disk each (2 Cheetah ST373405LW + 8 Barracuda ST336737LW); total
exported capacity 210 GB (they exported partitions, so per-node exported
capacity is 21 GB, not the whole drive).

Cluster B: 46 nodes (8 dual P-III 1.3 GHz, 30 dual P-III 1.4 GHz, 4 quad
Xeon 1.8 GHz, 4 quad Xeon 2.4 GHz), 4 GB each; 38 nodes export a software
RAID-0 of three SCSI partitions; total 6.55 TB (~176 GB per exporting
node).  All access links are Fast Ethernet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.network.nic import FAST_ETHERNET_BPS

GB = 1 << 30
TB = 1 << 40


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one cluster node."""

    name: str
    cpus: int = 2
    cpu_ghz: float = 1.0
    memory: int = 512 * (1 << 20)
    disks: tuple = ()              # DISK_SPECS keys; empty = no exported storage
    export_capacity: int = 0       # bytes exported to the storage volume
    nic_rate: float = FAST_ETHERNET_BPS
    rack: str = ""                 # failure domain for replica placement

    @property
    def exports_storage(self) -> bool:
        return bool(self.disks) and self.export_capacity > 0


@dataclass
class ClusterSpec:
    """A full cluster: nodes plus fabric latency."""

    name: str
    nodes: List[NodeSpec] = field(default_factory=list)
    latency: float = 80e-6

    @property
    def storage_nodes(self) -> List[NodeSpec]:
        return [n for n in self.nodes if n.exports_storage]

    @property
    def compute_nodes(self) -> List[NodeSpec]:
        return [n for n in self.nodes if not n.exports_storage]

    @property
    def total_capacity(self) -> int:
        return sum(n.export_capacity for n in self.nodes)


def _cluster_a() -> ClusterSpec:
    nodes = []
    for i in range(30):
        if i < 2:
            disks = ("cheetah-st373405",)
        elif i < 10:
            disks = ("barracuda-st336737",)
        else:
            disks = ()
        nodes.append(NodeSpec(
            name=f"a{i:02d}",
            cpus=2,
            cpu_ghz=0.4,
            memory=512 * (1 << 20),
            disks=disks,
            export_capacity=21 * GB if disks else 0,
        ))
    return ClusterSpec("cluster-a", nodes)


def _cluster_b() -> ClusterSpec:
    nodes = []
    per_node = int(6.55 * TB) // 38
    for i in range(46):
        if i < 8:
            cpus, ghz = 2, 1.3
        elif i < 38:
            cpus, ghz = 2, 1.4
        elif i < 42:
            cpus, ghz = 4, 1.8
        else:
            cpus, ghz = 4, 2.4
        exports = i < 38
        nodes.append(NodeSpec(
            name=f"b{i:02d}",
            cpus=cpus,
            cpu_ghz=ghz,
            memory=4 * GB,
            disks=("ultrastar-dk32ej",) * 3 if exports else (),
            export_capacity=per_node if exports else 0,
        ))
    return ClusterSpec("cluster-b", nodes)


CLUSTER_A = _cluster_a()
CLUSTER_B = _cluster_b()


def small_cluster(
    n_storage: int,
    n_compute: int = 2,
    capacity_per_node: int = 4 * GB,
    disks_per_node: int = 1,
    disk: str = "ultrastar-dk32ej",
    cpu_ghz: float = 1.4,
    name: Optional[str] = None,
) -> ClusterSpec:
    """A reduced cluster for tests and quick benchmark runs."""
    nodes = [
        NodeSpec(
            name=f"s{i:02d}",
            cpus=2,
            cpu_ghz=cpu_ghz,
            disks=(disk,) * disks_per_node,
            export_capacity=capacity_per_node,
        )
        for i in range(n_storage)
    ]
    nodes += [
        NodeSpec(name=f"c{i:02d}", cpus=2, cpu_ghz=cpu_ghz)
        for i in range(n_compute)
    ]
    return ClusterSpec(name or f"small-{n_storage}s{n_compute}c", nodes)
