"""Cluster hardware specs (paper Figure 8) and the simulated node."""

from repro.cluster.node import LoadSample, Node
from repro.cluster.spec import (
    CLUSTER_A,
    CLUSTER_B,
    ClusterSpec,
    NodeSpec,
    small_cluster,
)

__all__ = [
    "CLUSTER_A",
    "CLUSTER_B",
    "ClusterSpec",
    "LoadSample",
    "Node",
    "NodeSpec",
    "small_cluster",
]
