"""Series statistics for experiment reports.

Thin, well-tested wrappers so every experiment summarizes measurements
the same way (the paper reports EWMA-smoothed loads, min/max/avg
execution times, and bucketed time series).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import stats as sps


def ewma(values: Sequence[float], alpha: float = 0.3) -> List[float]:
    """Exponentially weighted moving average (the paper's load smoother)."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    out: List[float] = []
    acc = None
    for v in values:
        acc = v if acc is None else alpha * v + (1 - alpha) * acc
        out.append(acc)
    return out


def percentile_summary(values: Sequence[float],
                       pcts: Sequence[float] = (50, 90, 99)) -> Dict[str, float]:
    """min/mean/max plus the requested percentiles."""
    if len(values) == 0:
        raise ValueError("empty series")
    arr = np.asarray(values, dtype=float)
    out = {"min": float(arr.min()), "mean": float(arr.mean()),
           "max": float(arr.max())}
    for p in pcts:
        out[f"p{p:g}"] = float(np.percentile(arr, p))
    return out


def mean_ci(values: Sequence[float],
            confidence: float = 0.95) -> Tuple[float, float, float]:
    """(mean, lo, hi): Student-t confidence interval on the mean."""
    arr = np.asarray(values, dtype=float)
    n = len(arr)
    if n == 0:
        raise ValueError("empty series")
    mean = float(arr.mean())
    if n == 1:
        return mean, mean, mean
    sem = float(sps.sem(arr))
    if sem == 0.0:
        return mean, mean, mean
    lo, hi = sps.t.interval(confidence, n - 1, loc=mean, scale=sem)
    return mean, float(lo), float(hi)


def bucket_series(events: Sequence[Tuple[float, float]], width: float,
                  reduce: str = "mean") -> List[Tuple[float, float]]:
    """Bucket (time, value) events into fixed windows.

    ``reduce``: "mean" averages values per bucket (latency series);
    "rate" sums values and divides by the width (throughput series).
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if reduce not in ("mean", "rate"):
        raise ValueError(f"unknown reduce {reduce!r}")
    if not events:
        return []
    t0 = min(t for t, _ in events)
    buckets: Dict[int, List[float]] = {}
    for t, v in events:
        buckets.setdefault(int((t - t0) // width), []).append(v)
    out = []
    for b in sorted(buckets):
        vals = buckets[b]
        y = (sum(vals) / len(vals)) if reduce == "mean" \
            else sum(vals) / width
        out.append((t0 + (b + 1) * width, y))
    return out
