"""Monitoring, diagnosis and maintenance utilities.

The paper's prototype shipped "system monitoring, diagnosis and
maintenance utilities" alongside the core (Section 4).  This package is
that toolbox for the simulated cluster:

- :mod:`repro.tools.inspector` — replica maps, consistency audits,
  orphan detection, balance reports;
- :mod:`repro.tools.topology` — networkx views of data placement and
  failure-domain analysis ("which files die with node X?");
- :mod:`repro.tools.stats` — series smoothing and summaries used by the
  experiment reports.
"""

from repro.tools.inspector import ClusterInspector
from repro.tools.stats import bucket_series, ewma, mean_ci, percentile_summary
from repro.tools.topology import (
    availability_after_failure,
    max_survivable_failures,
    placement_graph,
    replica_overlap_graph,
)

__all__ = [
    "ClusterInspector",
    "availability_after_failure",
    "bucket_series",
    "ewma",
    "max_survivable_failures",
    "mean_ci",
    "percentile_summary",
    "placement_graph",
    "replica_overlap_graph",
]
