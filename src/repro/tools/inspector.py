"""Cluster inspection: the administrator's view of a running volume.

All methods read live deployment state (no simulated I/O) — this is the
offline diagnosis path, equivalent to an admin tool querying daemons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class ReplicaReport:
    """Replication-health summary for one volume."""

    total_segments: int = 0
    healthy: int = 0
    under_replicated: List[Tuple[int, int, int]] = field(default_factory=list)
    #   (segid, have, want)
    over_replicated: List[Tuple[int, int, int]] = field(default_factory=list)
    version_divergent: List[Tuple[int, List[int]]] = field(default_factory=list)
    #   (segid, distinct versions held)

    @property
    def ok(self) -> bool:
        return not (self.under_replicated or self.version_divergent)


@dataclass
class BalanceReport:
    """Storage/load balance across providers."""

    storage_utilization: Dict[str, float] = field(default_factory=dict)
    io_wait: Dict[str, float] = field(default_factory=dict)
    unevenness_ratio: float = 0.0
    mean_utilization: float = 0.0


class ClusterInspector:
    """Read-only diagnostics over a :class:`SorrentoDeployment`."""

    def __init__(self, deployment):
        self.dep = deployment

    # ------------------------------------------------------------ replicas
    def replica_map(self) -> Dict[int, Dict[str, int]]:
        """segid -> {hostid: latest committed version held}."""
        out: Dict[int, Dict[str, int]] = {}
        for host, provider in self.dep.providers.items():
            if not provider.node.alive:
                continue
            for seg in provider.store.committed_segments():
                out.setdefault(seg.segid, {})[host] = seg.version
        return out

    def segment_degrees(self) -> Dict[int, int]:
        """segid -> desired replication degree (max any holder claims)."""
        out: Dict[int, int] = {}
        for provider in self.dep.providers.values():
            if not provider.node.alive:
                continue
            for seg in provider.store.committed_segments():
                out[seg.segid] = max(out.get(seg.segid, 0),
                                     seg.replication_degree)
        return out

    def replica_report(self) -> ReplicaReport:
        """Audit replication degree and version convergence."""
        report = ReplicaReport()
        degrees = self.segment_degrees()
        for segid, holders in self.replica_map().items():
            report.total_segments += 1
            want = degrees.get(segid, 1)
            versions = sorted(set(holders.values()))
            if len(versions) > 1:
                report.version_divergent.append((segid, versions))
            elif len(holders) < want:
                report.under_replicated.append((segid, len(holders), want))
            elif len(holders) > want:
                report.over_replicated.append((segid, len(holders), want))
            else:
                report.healthy += 1
        return report

    # ------------------------------------------------------------ orphans
    def _namespace_dbs(self):
        """Every authoritative namespace DB: all shards, or the single
        server (mirrors are excluded — they are replicas, not truth)."""
        shard_servers = getattr(self.dep, "ns_shard_servers", None)
        if shard_servers:
            return [srv.db for srv in shard_servers.values()]
        return [self.dep.ns.db]

    def referenced_segments(self) -> Set[int]:
        """Every SegID reachable from the namespace (index + data)."""
        refs: Set[int] = set()
        for db in self._namespace_dbs():
            for key, entry in db.items(low="f:", high="f;"):
                fileid = entry["fileid"]
                refs.add(fileid)
                meta = self._index_meta(fileid)
                if meta and meta.get("layout") is not None:
                    refs.update(r.segid for r in meta["layout"].segments)
        return refs

    def _index_meta(self, fileid: int) -> Optional[dict]:
        best = None
        for provider in self.dep.providers.values():
            if not provider.node.alive:
                continue
            seg = provider.store.latest_committed(fileid)
            if seg is not None and seg.meta is not None:
                if best is None or seg.version > best[0]:
                    best = (seg.version, seg.meta)
        return best[1] if best else None

    def orphaned_segments(self) -> List[int]:
        """Committed segments no live file references (leak candidates;
        uncommitted shadows are excluded — TTLs own those)."""
        refs = self.referenced_segments()
        return sorted(segid for segid in self.replica_map() if segid not in refs)

    # ---------------------------------------------------- location tables
    def location_audit(self) -> Dict[str, List[int]]:
        """Compare home-host location tables against reality.

        Returns {"missing": [...], "ghost": [...]}: segments whose home
        host doesn't know a live owner, and table entries claiming owners
        that hold nothing.  Both self-heal (refresh/purge); persistent
        entries indicate a protocol bug.
        """
        missing: List[int] = []
        ghost: List[int] = []
        actual = self.replica_map()
        members = sorted(h for h, p in self.dep.providers.items()
                         if p.node.alive)
        if not members:
            return {"missing": sorted(actual), "ghost": []}
        ring = next(iter(self.dep.providers.values())).ring
        for segid, holders in actual.items():
            home = ring.home_host(segid, members)
            table = self.dep.providers[home].loc
            known = {h for h, _ in table.lookup(segid)}
            if not (known & set(holders)):
                missing.append(segid)
        for host, provider in self.dep.providers.items():
            if not provider.node.alive:
                continue
            for segid in provider.loc.segids():
                for owner, _v in provider.loc.lookup(segid):
                    holder = self.dep.providers.get(owner)
                    if holder is None or not holder.node.alive \
                            or holder.store.latest_committed(segid) is None:
                        ghost.append(segid)
                        break
        return {"missing": sorted(missing), "ghost": sorted(set(ghost))}

    # ------------------------------------------------------------- balance
    def balance_report(self) -> BalanceReport:
        report = BalanceReport()
        utils = []
        for host, provider in self.dep.providers.items():
            if not provider.node.alive:
                continue
            u = provider.node.storage_utilization
            report.storage_utilization[host] = u
            report.io_wait[host] = provider.node.io_wait
            utils.append(u)
        if utils:
            report.mean_utilization = sum(utils) / len(utils)
            lo = min(utils)
            report.unevenness_ratio = (max(utils) / lo) if lo > 0 else float("inf")
        return report

    # --------------------------------------------------------------- RPC
    def runtime_report(self, scope: Optional[str] = None) -> str:
        """Per-service RPC counters from the deployment's runtime layer.

        Empty string when the deployment predates the metrics registry
        (or was built without one).
        """
        registry = getattr(self.dep, "metrics", None)
        if registry is None:
            return ""
        return registry.report(scope)

    def busiest_services(self, scope: str = "client",
                         top: int = 5) -> List[Tuple[str, int]]:
        """The most-called services under a scope: (service, calls+oneways)."""
        registry = getattr(self.dep, "metrics", None)
        if registry is None:
            return []
        totals = [(service, st.calls + st.oneways)
                  for (_sc, service), st in registry.items(scope)]
        return sorted(totals, key=lambda kv: (-kv[1], kv[0]))[:top]

    def cache_report(self) -> Dict[str, int]:
        """Client-cache effectiveness, aggregated across every stub.

        Counts come from the per-client ``stats`` dicts (the registry's
        "cache" scope holds the same numbers when a registry is wired).
        """
        keys = ("loc_hits", "loc_misses", "loc_stale",
                "entry_hits", "entry_misses", "meta_hits", "meta_misses",
                "vec_rpcs", "vec_pieces")
        totals = dict.fromkeys(keys, 0)
        for client in getattr(self.dep, "clients", []):
            stats = getattr(client, "stats", None)
            if not stats:
                continue
            for key in keys:
                totals[key] += stats.get(key, 0)
        return totals

    def disk_report(self) -> Dict[str, int]:
        """Storage-engine effectiveness, aggregated across providers.

        All zeros when no provider runs an engine (``cache_bytes=0``) —
        the raw-disk configuration has nothing to report.
        """
        keys = ("cache_hits", "cache_misses", "writes_absorbed",
                "writes_through", "readahead_pages", "meta_ops",
                "coalesced", "flush_batches", "flush_pages", "flush_errors",
                "sync_flushes", "evicted", "evicted_dirty", "queue_peak",
                "dirty_pages", "cached_pages")
        totals = dict.fromkeys(keys, 0)
        for provider in self.dep.providers.values():
            engine = getattr(provider.node.fs, "engine", None)
            if engine is None:
                continue
            for key, val in engine.stats.items():
                if key == "queue_peak":
                    totals[key] = max(totals[key], val)
                else:
                    totals[key] = totals.get(key, 0) + val
            totals["dirty_pages"] += engine.dirty_pages
            totals["cached_pages"] += engine.cached_pages
        return totals

    # ----------------------------------------------------------- namespace
    def namespace_report(self) -> Dict[str, object]:
        """The routed-metadata plane: shard map, per-shard load, standby
        shipping, mirrors, and how often clients were redirected.

        Works for every deployment shape; ``sharded`` is False for the
        classic single-server (or legacy-partitioned) namespace.
        """
        dep = self.dep
        shard_servers = getattr(dep, "ns_shard_servers", None) or {}
        shard_map = getattr(dep, "ns_shard_map", None)
        report: Dict[str, object] = {
            "sharded": bool(shard_servers),
            "epoch": shard_map.epoch if shard_map is not None else 0,
            "shards": {},
            "mirrors": {},
            "client_redirects": sum(c.stats.get("ns_redirects", 0)
                                    for c in dep.clients),
            "route_hits": sum(c.stats.get("route_hits", 0)
                              for c in dep.clients),
            "route_misses": sum(c.stats.get("route_misses", 0)
                                for c in dep.clients),
        }
        servers = shard_servers or {dep.ns_host: dep.ns}
        active = (set(shard_map.shards) if shard_map is not None
                  else set(servers))
        for host, srv in sorted(servers.items()):
            report["shards"][host] = {
                "in_map": host in active,
                "entries": len(srv.db),
                "ops_served": srv.ops_served,
                "standbys": [link.hostid for link in srv.standbys],
                "ship_lag": srv.replication_lag(),
                "shipped_batches": srv.shipped_batches,
                "staged_txns": len(srv._staged),
            }
        for host, mirror in getattr(dep, "ns_mirrors", {}).items():
            report["mirrors"][host] = {
                "entries": len(mirror.db),
                "applied_seq": mirror.applied_seq,
            }
        return report

    # ---------------------------------------------------------- partitions
    def partition_report(self) -> Dict[str, object]:
        """Conservative-parallel diagnostics for a partitioned deployment.

        Empty dict when no partition map is installed (the common case).
        Reports the partition layout, this worker's transit counters, and
        the cross-edge traffic matrix (``"p0->p1" -> [records, bytes]``)
        — the same matrix :func:`repro.sim.parallel.refine` clusters on.
        In worker mode the numbers cover this partition's sends/receives;
        the coordinator's merged view lives in ``run_partitioned``'s
        result.
        """
        transit = getattr(self.dep, "transit", None)
        if transit is None:
            return {}
        stats = transit.stats_dict()
        pmap = transit.pmap
        stats["partition_sizes"] = pmap.sizes()
        stats["cut_edges"] = pmap.cut_edges(transit.traffic_out)
        # Per-host chatter across the cut, noisiest first — the refine()
        # migration candidates.
        chatter: Dict[str, int] = {}
        for (host, _pid), (cnt, _b) in transit.traffic_out.items():
            chatter[host] = chatter.get(host, 0) + cnt
        for (host, _pid), (cnt, _b) in transit.traffic_in.items():
            chatter[host] = chatter.get(host, 0) + cnt
        stats["noisiest_hosts"] = sorted(
            chatter.items(), key=lambda kv: (-kv[1], kv[0]))[:10]
        return stats

    # ------------------------------------------------------------- compute
    def compute_report(self) -> Dict[str, object]:
        """Task-queue diagnostics when the compute plane is running.

        Empty dict when :func:`repro.compute.start_compute` was never
        called on this deployment.  Splits scheduled tasks by locality
        class (``local`` / ``pre-staged`` / ``pulled``) and bytes moved
        by the scheduler's pre-staging vs by the tasks themselves.
        """
        queue = getattr(self.dep, "compute", None)
        if queue is None:
            return {}
        st = queue.stats
        return {
            "queue_host": queue.host,
            "policy": queue.policy,
            "workers": len(queue.workers),
            "queued": queue.pending_count(),
            "leased": queue.leased_count(),
            "submitted": st["submitted"],
            "completed": st["completed"],
            "failed": st["failed"],
            "requeued": st["requeued"],
            "by_class": queue.by_class(),
            "prestage_segments": st["prestage_segments"],
            "prestage_already": st["prestage_already"],
            "scheduler_bytes_moved": st["prestage_bytes"],
            "task_local_bytes": st["task_local_bytes"],
            "task_remote_bytes": st["task_remote_bytes"],
            "task_out_bytes": st["task_out_bytes"],
            "jobs": len(queue.jobs),
            "jobs_finished": sum(
                1 for rec in queue.jobs.values()
                if rec["finished"] is not None),
        }

    # --------------------------------------------------------------- text
    def summary(self) -> str:
        rep = self.replica_report()
        bal = self.balance_report()
        orphans = self.orphaned_segments()
        lines = [
            f"providers: {len(bal.storage_utilization)} live",
            f"segments: {rep.total_segments} "
            f"(healthy {rep.healthy}, under {len(rep.under_replicated)}, "
            f"over {len(rep.over_replicated)}, "
            f"divergent {len(rep.version_divergent)})",
            f"orphans: {len(orphans)}",
            f"storage balance: mean {100 * bal.mean_utilization:.1f}%, "
            f"unevenness {bal.unevenness_ratio:.2f}",
        ]
        busiest = self.busiest_services()
        if busiest:
            lines.append("busiest services: " + ", ".join(
                f"{svc} ({n})" for svc, n in busiest))
        cache = self.cache_report()
        if any(cache.values()):
            width = (cache["vec_pieces"] / cache["vec_rpcs"]
                     if cache["vec_rpcs"] else 0.0)
            lines.append(
                f"location cache: {cache['loc_hits']} hits / "
                f"{cache['loc_misses']} misses / {cache['loc_stale']} stale; "
                f"meta {cache['meta_hits']}/{cache['meta_misses']}; "
                f"vectored rpcs {cache['vec_rpcs']} "
                f"(avg width {width:.1f})")
        disk = self.disk_report()
        if any(disk.values()):
            lines.append(
                f"page cache: {disk['cache_hits']} hits / "
                f"{disk['cache_misses']} misses; "
                f"write-back absorbed {disk['writes_absorbed']}, "
                f"flushed {disk['flush_pages']} pages in "
                f"{disk['flush_batches']} batches "
                f"({disk['dirty_pages']} still dirty); "
                f"coalesced {disk['coalesced']} requests "
                f"(queue peak {disk['queue_peak']})")
        ns = self.namespace_report()
        if ns["sharded"]:
            shards = ns["shards"]
            ops = ", ".join(f"{h} {row['ops_served']} ops"
                            for h, row in shards.items())
            line = (f"namespace: {sum(row['in_map'] for row in shards.values())}"
                    f" shards (epoch {ns['epoch']}): {ops}; "
                    f"{ns['client_redirects']} client redirects")
            if ns["mirrors"]:
                line += f"; {len(ns['mirrors'])} mirrors"
            lines.append(line)
        part = self.partition_report()
        if part:
            lines.append(
                f"partitions: {part['n_partitions']} "
                f"(lookahead {part['lookahead_s'] * 1e6:.0f}us, "
                f"cut edges {part['cut_edges']}, "
                f"records out {part['records_out']} / "
                f"in {part['records_in']}, dropped {part['dropped']})")
        comp = self.compute_report()
        if comp:
            cls = comp["by_class"]
            lines.append(
                f"compute: {comp['policy']} policy, "
                f"queue depth {comp['queued']} (+{comp['leased']} leased), "
                f"{comp['completed']}/{comp['submitted']} tasks done "
                f"(local {cls['local']} / pre-staged {cls['pre-staged']} / "
                f"pulled {cls['pulled']}, requeued {comp['requeued']}); "
                f"bytes moved: scheduler "
                f"{comp['scheduler_bytes_moved'] >> 20} MB, tasks "
                f"{comp['task_remote_bytes'] >> 20} MB remote")
        return "\n".join(lines)
