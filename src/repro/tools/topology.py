"""Placement topology analysis (networkx views of a volume).

Administrators of a real Sorrento would ask: where does each file live,
which nodes back each other up, and what goes dark if a node dies?
These helpers answer that from live deployment state.
"""

from __future__ import annotations

from typing import Dict, List, Set

import networkx as nx

from repro.tools.inspector import ClusterInspector


def placement_graph(deployment) -> "nx.Graph":
    """Bipartite graph: provider nodes ↔ the segments they hold.

    Node attributes: ``kind`` ("provider" | "segment"); provider nodes
    carry ``utilization``; segment nodes carry ``degree`` (desired) and
    ``holders`` (actual).  Edges carry the held ``version``.
    """
    insp = ClusterInspector(deployment)
    g = nx.Graph()
    degrees = insp.segment_degrees()
    for host, provider in deployment.providers.items():
        if not provider.node.alive:
            continue
        g.add_node(host, kind="provider",
                   utilization=provider.node.storage_utilization)
    for segid, holders in insp.replica_map().items():
        sname = f"seg:{segid:x}"
        g.add_node(sname, kind="segment", degree=degrees.get(segid, 1),
                   holders=len(holders))
        for host, version in holders.items():
            g.add_edge(host, sname, version=version)
    return g


def replica_overlap_graph(deployment) -> "nx.Graph":
    """Provider graph where edge weight = number of co-held segments.

    Heavily weighted cliques mean correlated failure exposure: losing
    either endpoint stresses the same re-replication sources.
    """
    insp = ClusterInspector(deployment)
    g = nx.Graph()
    for host, p in deployment.providers.items():
        if p.node.alive:
            g.add_node(host)
    for segid, holders in insp.replica_map().items():
        hosts = sorted(holders)
        for i, a in enumerate(hosts):
            for b in hosts[i + 1:]:
                w = g.get_edge_data(a, b, {}).get("weight", 0)
                g.add_edge(a, b, weight=w + 1)
    return g


def availability_after_failure(deployment, failed: List[str]) -> Dict[str, List]:
    """What survives if ``failed`` nodes all die at once?

    Returns {"lost_segments": [...], "degraded_segments": [...],
    "lost_files": [...]}: segments with zero surviving replicas, segments
    that survive but below their desired degree, and files whose index or
    any data segment is lost.
    """
    insp = ClusterInspector(deployment)
    dead: Set[str] = set(failed)
    degrees = insp.segment_degrees()
    lost: List[int] = []
    degraded: List[int] = []
    for segid, holders in insp.replica_map().items():
        alive = [h for h in holders if h not in dead]
        if not alive:
            lost.append(segid)
        elif len(alive) < degrees.get(segid, 1):
            degraded.append(segid)
    lost_set = set(lost)
    lost_files: List[str] = []
    for key, entry in deployment.ns.db.items(low="f:", high="f;"):
        path = key[2:]
        fileid = entry["fileid"]
        if fileid in lost_set:
            lost_files.append(path)
            continue
        meta = insp._index_meta(fileid)
        if meta is None:
            if entry["version"] > 0:
                lost_files.append(path)
            continue
        layout = meta.get("layout")
        if layout is not None and any(r.segid in lost_set
                                      for r in layout.segments):
            lost_files.append(path)
    return {"lost_segments": sorted(lost),
            "degraded_segments": sorted(degraded),
            "lost_files": sorted(lost_files)}


def max_survivable_failures(deployment) -> int:
    """The largest k such that *every* k-node failure keeps all data.

    Brute force over failure combinations — fine for the cluster sizes
    the experiments use; this is an offline planning query.
    """
    import itertools

    hosts = [h for h, p in deployment.providers.items() if p.node.alive]
    for k in range(1, len(hosts)):
        for combo in itertools.combinations(hosts, k):
            result = availability_after_failure(deployment, list(combo))
            if result["lost_segments"]:
                return k - 1
    return len(hosts) - 1
