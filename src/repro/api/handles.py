"""The NFS-style handle interface (Section 2.3).

Operations are based on opaque file and directory handles, mirroring the
NFSv3 procedures the paper cites [4]: LOOKUP, CREATE, MKDIR, READ,
WRITE, GETATTR, READDIR, REMOVE, RMDIR, plus Sorrento's COMMIT.  All
methods are generators to run inside sim processes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.client import NotFoundError, SorrentoClient, SorrentoError


@dataclass(frozen=True)
class Handle:
    """An opaque NFS-style handle."""

    hid: int
    path: str
    is_dir: bool


class HandleAPI:
    """Stateless-protocol-style facade over the Sorrento client."""

    def __init__(self, client: SorrentoClient):
        self.client = client
        self._open_files: Dict[int, object] = {}
        # Per-instance ids: two deployments in one interpreter must mint
        # independent, reproducible handle-id sequences.
        self._handle_ids = itertools.count(1)
        self.root = Handle(next(self._handle_ids), "/", True)

    def _child(self, dirh: Handle, name: str) -> str:
        if not dirh.is_dir:
            raise SorrentoError(f"{dirh.path} is not a directory")
        base = dirh.path.rstrip("/")
        return f"{base}/{name}"

    # -- namespace procedures ---------------------------------------------
    def lookup(self, dirh: Handle, name: str):
        """LOOKUP: resolve a name under a directory handle."""
        path = self._child(dirh, name)
        try:
            yield from self.client.stat(path)
            return Handle(next(self._handle_ids), path, False)
        except NotFoundError:
            listing = yield from self.client.listdir(dirh.path)
            if name + "/" in listing:
                return Handle(next(self._handle_ids), path, True)
            raise

    def create(self, dirh: Handle, name: str, **params):
        """CREATE: make a file and return its handle."""
        path = self._child(dirh, name)
        yield from self.client.create(path, **params)
        return Handle(next(self._handle_ids), path, False)

    def mkdir(self, dirh: Handle, name: str):
        """MKDIR under a directory handle."""
        path = self._child(dirh, name)
        yield from self.client.mkdir(path)
        return Handle(next(self._handle_ids), path, True)

    def readdir(self, dirh: Handle):
        """READDIR: child names (subdirs end with '/')."""
        listing = yield from self.client.listdir(dirh.path)
        return listing

    def getattr(self, h: Handle):
        """GETATTR: the Sorrento file entry (version, times, policy)."""
        entry = yield from self.client.stat(h.path)
        return entry

    def remove(self, dirh: Handle, name: str):
        """REMOVE a file under a directory handle."""
        entry = yield from self.client.unlink(self._child(dirh, name))
        return entry

    def rmdir(self, dirh: Handle, name: str):
        """RMDIR an empty directory."""
        result = yield from self.client.rmdir(self._child(dirh, name))
        return result

    # -- data procedures ---------------------------------------------------
    def _session(self, h: Handle, mode: str):
        fh = self._open_files.get(h.hid)
        if fh is None or fh.closed or (mode == "w" and fh.mode != "w"):
            if fh is not None and not fh.closed:
                yield from self.client.close(fh)
            fh = yield from self.client.open(h.path, mode)
            self._open_files[h.hid] = fh
        return fh

    def read(self, h: Handle, offset: int, length: int):
        """READ through the handle's cached session."""
        fh = yield from self._session(h, "r")
        data = yield from self.client.read(fh, offset, length)
        return data

    def write(self, h: Handle, offset: int, length: int,
              data: Optional[bytes] = None):
        """WRITE into the handle's shadow session."""
        fh = yield from self._session(h, "w")
        yield from self.client.write(fh, offset, length, data=data)

    def commit(self, h: Handle):
        """COMMIT: make this handle's pending writes the next version."""
        fh = self._open_files.get(h.hid)
        if fh is None or fh.closed:
            return None
        version = yield from self.client.commit(fh)
        return version

    def close(self, h: Handle):
        """Close the cached session (committing pending writes)."""
        fh = self._open_files.pop(h.hid, None)
        if fh is not None and not fh.closed:
            version = yield from self.client.close(fh)
            return version
        return None
