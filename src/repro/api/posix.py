"""The UNIX-like file-system call interface (Section 2.3).

"Upon this [handle] layer, we have implemented another library interface
that is similar to the UNIX file-system calls."  File descriptors are
small integers; a per-fd cursor supports sequential read/write; close()
is the implicit commit; fsync() is an explicit one.  Extensions expose
Sorrento-specific knobs (replication degree, placement policy) the way
the paper describes applications fine-tuning per-file management.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.core.client import NotFoundError, SorrentoClient, SorrentoError

#: Open flags, ``os``-style ints.  The historical string forms ("r"/"w")
#: are still accepted by :meth:`PosixAPI.open`.
O_RDONLY = 0
O_WRONLY = 1

#: flag -> internal open mode; keys cover both spellings.
_OPEN_MODES = {O_RDONLY: "r", O_WRONLY: "w", "r": "r", "w": "w"}

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


@dataclass
class _OpenFile:
    fh: object
    pos: int = 0


class PosixAPI:
    """UNIX-flavoured wrapper with fd-table semantics."""

    def __init__(self, client: SorrentoClient):
        self.client = client
        self._fds: Dict[int, _OpenFile] = {}
        self._next_fd = 3  # 0-2 reserved, as tradition demands

    # -- fd lifecycle ---------------------------------------------------
    def open(self, path: str, flags: Union[int, str] = O_RDONLY,
             create: bool = False, **create_params):
        """open(2): returns a small-integer fd.

        ``flags`` accepts the ``O_RDONLY``/``O_WRONLY`` ints or the
        historical ``"r"``/``"w"`` strings.
        """
        mode = _OPEN_MODES.get(flags)
        if mode is None:
            raise ValueError(f"bad flags {flags!r}")
        fh = yield from self.client.open(path, mode, create=create,
                                         **create_params)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = _OpenFile(fh=fh)
        return fd

    def close(self, fd: int):
        """close(2): commits pending writes (Section 3.5 semantics)."""
        of = self._fds.pop(fd, None)
        if of is None:
            raise NotFoundError(f"EBADF {fd}")
        version = yield from self.client.close(of.fh)
        return version

    def fsync(self, fd: int):
        """fsync(2): an explicit commit; the fd stays open and a fresh
        shadow session begins on the next write."""
        of = self._require(fd)
        version = yield from self.client.commit(of.fh)
        return version

    # -- cursor I/O --------------------------------------------------------
    def read(self, fd: int, length: int):
        """read(2): from the fd's cursor, advancing it."""
        of = self._require(fd)
        data = yield from self.client.read(of.fh, of.pos, length)
        advance = min(length, max(0, of.fh.size - of.pos))
        of.pos += advance
        return data

    def write(self, fd: int, length: int, data: Optional[bytes] = None):
        """write(2): at the fd's cursor, advancing it."""
        of = self._require(fd)
        yield from self.client.write(of.fh, of.pos, length, data=data)
        of.pos += length
        return length

    def pread(self, fd: int, offset: int, length: int):
        """pread(2): positioned read; the cursor does not move."""
        of = self._require(fd)
        data = yield from self.client.read(of.fh, offset, length)
        return data

    def pwrite(self, fd: int, offset: int, length: int,
               data: Optional[bytes] = None):
        """pwrite(2): positioned write; the cursor does not move."""
        of = self._require(fd)
        yield from self.client.write(of.fh, offset, length, data=data)
        return length

    def lseek(self, fd: int, offset: int, whence: int = SEEK_SET) -> int:
        """lseek(2) with SEEK_SET/CUR/END."""
        of = self._require(fd)
        if whence == SEEK_SET:
            of.pos = offset
        elif whence == SEEK_CUR:
            of.pos += offset
        elif whence == SEEK_END:
            of.pos = of.fh.size + offset
        else:
            raise ValueError(f"bad whence {whence}")
        if of.pos < 0:
            raise SorrentoError("EINVAL negative offset")
        return of.pos

    def fstat(self, fd: int) -> dict:
        """fstat(2): size/version/fileid of the open file."""
        of = self._require(fd)
        return {"size": of.fh.size, "version": of.fh.entry["version"],
                "fileid": of.fh.fileid}

    # -- path ops --------------------------------------------------------
    def stat(self, path: str):
        """stat(2): the namespace entry for a path."""
        entry = yield from self.client.stat(path)
        return entry

    def unlink(self, path: str):
        """unlink(2): remove the file and all its replicas."""
        entry = yield from self.client.unlink(path)
        return entry

    def mkdir(self, path: str):
        """mkdir(2)."""
        result = yield from self.client.mkdir(path)
        return result

    def rmdir(self, path: str):
        """rmdir(2): directory must be empty."""
        result = yield from self.client.rmdir(path)
        return result

    def listdir(self, path: str):
        """Directory listing (names; subdirs end with '/')."""
        names = yield from self.client.listdir(path)
        return names

    # -- Sorrento extensions ------------------------------------------
    def set_policy(self, path: str, *, degree: Optional[int] = None,
                   alpha: Optional[float] = None,
                   placement: Optional[str] = None):
        """Fine-tune per-file management (replication degree, placement
        favoritism, placement policy) — the paper's functional extension."""
        req = {"path": path}
        if degree is not None:
            req["degree"] = degree
        if alpha is not None:
            req["alpha"] = alpha
        if placement is not None:
            req["placement"] = placement
        entry = yield from self.client._call_ns("ns_update_entry", req,
                                                size=128)
        return entry

    # ------------------------------------------------------------------
    def _require(self, fd: int) -> _OpenFile:
        of = self._fds.get(fd)
        if of is None:
            raise NotFoundError(f"EBADF {fd}")
        return of
