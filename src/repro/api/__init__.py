"""Client-side programming interfaces (Section 2.3).

Sorrento "provides multiple flavors of client-side programming
interfaces": a basic NFS-style layer operating on opaque handles, and a
UNIX-like file-system call layer built on top of it.  Both wrap
:class:`repro.core.client.SorrentoClient`.

The front door is :func:`connect`, which returns a :class:`Session`
exposing every flavor (``.posix``, ``.handles``, ``.pario``) over one
shared client; the flavor constructors remain available for code that
manages its own stubs.  The typed error surface
(:class:`NotFoundError`, :class:`ConflictError`, :class:`TimeoutError`,
:class:`WrongShardError`, all under :class:`SorrentoError`) is
re-exported here so applications need only this package.
"""

from repro.api.handles import Handle, HandleAPI
from repro.api.pario import ParallelIO, make_parallel_session
from repro.api.posix import O_RDONLY, O_WRONLY, PosixAPI
from repro.api.session import Session, connect
from repro.core.client import (
    CommitConflict,
    ConflictError,
    NotFoundError,
    SorrentoError,
    TimeoutError,
    WrongShardError,
)
from repro.runtime import CallPolicy

__all__ = [
    "CallPolicy",
    "CommitConflict",
    "ConflictError",
    "Handle",
    "HandleAPI",
    "NotFoundError",
    "O_RDONLY",
    "O_WRONLY",
    "ParallelIO",
    "PosixAPI",
    "Session",
    "SorrentoError",
    "TimeoutError",
    "WrongShardError",
    "connect",
    "make_parallel_session",
]
