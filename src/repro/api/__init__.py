"""Client-side programming interfaces (Section 2.3).

Sorrento "provides multiple flavors of client-side programming
interfaces": a basic NFS-style layer operating on opaque handles, and a
UNIX-like file-system call layer built on top of it.  Both wrap
:class:`repro.core.client.SorrentoClient`.
"""

from repro.api.handles import HandleAPI
from repro.api.pario import ParallelIO, make_parallel_session
from repro.api.posix import PosixAPI

__all__ = ["HandleAPI", "ParallelIO", "PosixAPI", "make_parallel_session"]
