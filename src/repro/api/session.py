"""The one public entry point: ``connect(dep, host) -> Session``.

A :class:`Session` binds a single shared
:class:`~repro.core.client.SorrentoClient` to a node and exposes every
interface flavor over it — ``.posix`` (UNIX-like fds), ``.handles``
(NFS-style), ``.pario`` (byte-range sharing) — so an application can mix
levels without juggling stubs, and so all of them share one membership
view, one RPC policy, and one set of client stats.

Policy overrides go through :meth:`Session.with_policy`, which takes a
:class:`~repro.runtime.CallPolicy`; callers never reach into
``repro.runtime`` internals::

    sess = connect(dep, "c00").with_policy(CallPolicy(timeout=2.0,
                                                      attempts=3))
    dep.run(sess.posix.stat("/data"))

The flavor-specific constructors (``PosixAPI(client)``, ...) keep
working as thin shims for code that builds its own client stubs.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.api.handles import HandleAPI
from repro.api.pario import ParallelIO
from repro.api.posix import PosixAPI
from repro.compute.api import ComputeAPI
from repro.core.client import SorrentoClient
from repro.runtime import CallPolicy
from repro.sim import Barrier


class Session:
    """All client-side interfaces over one shared Sorrento client."""

    def __init__(self, client: SorrentoClient):
        self.client = client
        self._posix: Optional[PosixAPI] = None
        self._handles: Optional[HandleAPI] = None
        self._pario: Optional[ParallelIO] = None
        self._compute: Optional[ComputeAPI] = None

    # -- interface views (built lazily, one each) -----------------------
    @property
    def posix(self) -> PosixAPI:
        """The UNIX-like fd interface."""
        if self._posix is None:
            self._posix = PosixAPI(self.client)
        return self._posix

    @property
    def handles(self) -> HandleAPI:
        """The NFS-style opaque-handle interface."""
        if self._handles is None:
            self._handles = HandleAPI(self.client)
        return self._handles

    @property
    def pario(self) -> ParallelIO:
        """The byte-range sharing (versioning-off) interface."""
        if self._pario is None:
            self._pario = ParallelIO(self.client)
        return self._pario

    @property
    def compute(self) -> ComputeAPI:
        """The task-queue interface (bind it to a queue host first)."""
        if self._compute is None:
            self._compute = ComputeAPI(self.client)
        return self._compute

    def with_barrier(self, barrier: Barrier) -> "Session":
        """Attach a collective barrier to the ``pario`` view (for
        ``ParallelIO.sync``); returns self for chaining."""
        self.pario.barrier = barrier
        return self

    # -- policy ----------------------------------------------------------
    @property
    def policy(self) -> CallPolicy:
        """The RPC policy governing this session's node."""
        return self.client.rpc.policy

    def with_policy(self, policy: CallPolicy) -> "Session":
        """Override timeout/retry for this session's RPCs; returns self.

        The policy applies to the node's service runtime, which the
        session's client shares with any daemons co-located on the same
        node — per-node, like a kernel socket option.
        """
        self.client.rpc.configure(policy=policy)
        return self

    # -- convenience pass-throughs --------------------------------------
    @property
    def sim(self):
        return self.client.sim

    @property
    def node(self):
        return self.client.node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Session on {self.client.node.hostid!r}>"


def connect(dep: Any, host: str, **client_kwargs: Any) -> Session:
    """Open a :class:`Session` on ``host`` of a deployment.

    ``dep`` is anything with a ``client_on(host)`` factory (a
    :class:`~repro.core.volume.SorrentoDeployment`); extra keyword
    arguments are forwarded to it when it accepts them.
    """
    client = dep.client_on(host, **client_kwargs) if client_kwargs \
        else dep.client_on(host)
    return Session(client)
