"""Parallel byte-range sharing interface (Section 3.5's versioning-off
option; used in the paper to replay BTIO's MPI-IO list-writes).

Multiple processes share one file and write disjoint byte ranges
concurrently — no shadow copies, no commits, reads/writes "directly
applied to the data segments" (replication is disabled in this mode, as
the paper states).  ``list_write``/``list_read`` emulate PVFS's
list-I/O primitive "through asynchronous I/O calls": all pieces of the
vector go out in parallel.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.client import ConflictError, SorrentoClient, SorrentoError
from repro.sim import Barrier, gather

Range = Tuple[int, int]  # (offset, length)


class ParallelIO:
    """One process's view of the shared-file interface."""

    def __init__(self, client: SorrentoClient,
                 barrier: Optional[Barrier] = None):
        self.client = client
        self.sim = client.sim
        self.barrier = barrier

    # ------------------------------------------------------------ session
    def open_shared(self, path: str, create: bool = False,
                    size: Optional[int] = None, **create_params):
        """Open (optionally create) a shared, versioning-disabled file.

        ``size`` pre-allocates the layout (like BTIO declaring its
        solution size up front).  Writers from *different* processes must
        stay within the pre-sized region — concurrent growth across
        clients is racy by construction.
        """
        create_params.setdefault("versioning", False)
        create_params.setdefault("degree", 1)
        fh = yield from self.client.open(path, "w", create=create,
                                         **create_params)
        if fh.versioning:
            # The existing entry conflicts with what this interface needs.
            raise ConflictError(
                f"{path} is a versioned file; the byte-range sharing "
                "interface needs versioning disabled at creation"
            )
        if size is not None and size > fh.size:
            yield from self.client.truncate(fh, size)
        return fh

    def close(self, fh):
        version = yield from self.client.close(fh)
        return version

    # ------------------------------------------------------------- data
    def write_at(self, fh, offset: int, length: int,
                 data: Optional[bytes] = None, sequential: bool = False):
        """Direct in-place write; concurrent writers to disjoint ranges
        never conflict."""
        yield from self.client.write(fh, offset, length, data=data,
                                     sequential=sequential)

    def read_at(self, fh, offset: int, length: int,
                sequential: bool = False):
        data = yield from self.client.read(fh, offset, length,
                                           sequential=sequential)
        return data

    def list_write(self, fh, ranges: Sequence[Range],
                   data: Optional[bytes] = None):
        """Vector write: every (offset, length) piece issues in parallel.

        ``data``, when given, is consumed range by range in order.
        """
        writes, pos = [], 0
        for offset, length in ranges:
            chunk = data[pos:pos + length] if data is not None else None
            pos += length
            writes.append(self.client.write(fh, offset, length, data=chunk))
        yield from gather(self.sim, writes)
        return sum(n for _, n in ranges)

    def list_read(self, fh, ranges: Sequence[Range]) -> List[Optional[bytes]]:
        """Vector read: returns one buffer (or None for synthetic content)
        per requested range, in order."""
        reads = [self.client.read(fh, offset, length)
                 for offset, length in ranges]
        results = yield from gather(self.sim, reads)
        return results

    # -------------------------------------------------------- collective
    def sync(self):
        """Collective barrier (when the session was built with one)."""
        if self.barrier is None:
            raise SorrentoError("no barrier attached to this session")
        gen = yield from self.barrier.wait()
        return gen


def make_parallel_session(clients: Sequence[SorrentoClient]):
    """Build one ParallelIO per process sharing a collective barrier."""
    barrier = Barrier(clients[0].sim, len(clients))
    return [ParallelIO(c, barrier) for c in clients]
