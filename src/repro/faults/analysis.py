"""Recovery metrics over a sampled throughput series.

Experiments sample throughput into ``(time, rate)`` series; given the
instant a fault struck, :func:`recovery_metrics` summarizes the response
the way availability studies report it:

* **baseline** — mean rate over the pre-fault samples;
* **dip depth** — worst post-fault drop, as a fraction of baseline
  (0.0 = no visible effect, 1.0 = full outage);
* **MTTR** — seconds from the fault until the rate first comes back to
  ``recovered_frac`` of baseline *and stays there* (sustained recovery,
  not a single lucky sample);
* **post-recovery throughput** and its **steady-state delta** vs the
  baseline (re-replication overhead or a permanently smaller cluster
  shows up here).
"""

from __future__ import annotations

import math
from typing import Dict, Sequence


def recovery_metrics(times: Sequence[float], rates: Sequence[float],
                     fault_at: float, *, recovered_frac: float = 0.9,
                     sustain: int = 2) -> Dict[str, float]:
    """Summarize a fault's impact on a throughput time series.

    ``sustain`` is how many consecutive samples must clear the recovery
    threshold before the first of them counts as the recovery point.
    Returns NaN/inf placeholders when the series cannot support the
    computation (no pre-fault samples; never recovered).
    """
    if len(times) != len(rates):
        raise ValueError("times and rates must have equal length")
    before = [r for t, r in zip(times, rates) if t <= fault_at]
    after = [(t, r) for t, r in zip(times, rates) if t > fault_at]
    if not before or not after:
        return {"baseline": float("nan"), "dip_depth": float("nan"),
                "mttr": float("inf"), "post_mean": float("nan"),
                "steady_delta": float("nan")}
    baseline = sum(before) / len(before)
    worst = min(r for _, r in after)
    dip_depth = max(0.0, 1.0 - worst / baseline) if baseline > 0 else 0.0

    threshold = recovered_frac * baseline
    recovered_at = None
    run = 0
    for i, (t, r) in enumerate(after):
        run = run + 1 if r >= threshold else 0
        if run >= sustain:
            recovered_at = after[i - sustain + 1][0]
            break
    mttr = (recovered_at - fault_at) if recovered_at is not None \
        else float("inf")

    if recovered_at is not None:
        post = [r for t, r in after if t >= recovered_at]
    else:  # never recovered: report the tail quarter anyway
        post = [r for _, r in after[-max(1, len(after) // 4):]]
    post_mean = sum(post) / len(post)
    steady_delta = (post_mean / baseline - 1.0) if baseline > 0 \
        else float("nan")
    return {"baseline": baseline, "dip_depth": dip_depth, "mttr": mttr,
            "post_mean": post_mean, "steady_delta": steady_delta}


def format_recovery(metrics: Dict[str, float]) -> str:
    """Human-readable one-liner for experiment reports."""
    mttr = metrics["mttr"]
    mttr_s = f"{mttr:.1f}s" if math.isfinite(mttr) else "not recovered"
    return (f"baseline {metrics['baseline']:.1f} MB/s, "
            f"dip depth {100 * metrics['dip_depth']:.0f}%, "
            f"MTTR {mttr_s}, "
            f"post-recovery {metrics['post_mean']:.1f} MB/s "
            f"({100 * metrics['steady_delta']:+.0f}% vs baseline)")
