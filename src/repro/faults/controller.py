"""The process that executes a :class:`~repro.faults.plan.FaultPlan`.

``FaultController`` is duck-typed over the deployment: it needs ``sim``,
``fabric``, and ``nodes``, and uses ``providers``/``restart_provider``,
``rngs``, ``metrics``, and ``tracer`` when present.  This keeps the fault
plane below :mod:`repro.core` in the layering — any deployment-shaped
object (Sorrento, the NFS/PVFS baselines, or a bare test harness) can be
driven without an import cycle.

Every executed event is appended to :attr:`FaultController.timeline`,
counted in the deployment ``MetricsRegistry`` under scope ``"fault"``,
and (when tracing is on) recorded as a zero-or-more-second span — so an
experiment report can interleave the fault schedule with its throughput
samples.

Determinism contract: all randomness used by injected faults comes from
named :class:`~repro.sim.rng.RngStreams` streams derived from the
deployment seed (``faults:link:SRC->DST``, ``faults:disk:HOST``), and an
installed-but-inactive hook draws nothing — same seed, same plan, same
schedule, bit-identical run.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Tuple

from repro.faults.plan import (
    DiskFault,
    DiskHeal,
    FaultPlan,
    Heal,
    LinkDegrade,
    LinkRestore,
    NodeCrash,
    NodeRestart,
    Partition,
)
from repro.network.switch import LinkFault
from repro.storage.disk import DiskFaultState

#: MetricsRegistry scope under which fault events are counted.
FAULT_SCOPE = "fault"


class FaultController:
    """Runs a plan against a deployment on the sim clock."""

    def __init__(self, dep: Any, plan: FaultPlan):
        self.dep = dep
        self.sim = dep.sim
        self.plan = plan
        #: Executed events: ``(sim_time, event.kind, event)``.
        self.timeline: List[Tuple[float, str, object]] = []
        self.proc = None

    # -- lifecycle -------------------------------------------------------
    def start(self):
        """Spawn the controller process; returns it (waitable)."""
        if self.proc is not None:
            raise RuntimeError("controller already started")
        self.proc = self.sim.process(self._run(), name="fault-controller")
        return self.proc

    def _run(self):
        base = self.sim.now
        for at, event in self.plan.schedule():
            delay = base + at - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            self._execute(event)

    # -- execution -------------------------------------------------------
    def _execute(self, event) -> None:
        tracer = getattr(self.dep, "tracer", None)
        span = None
        if tracer is not None:
            span = tracer.start(f"fault:{event.kind}", parent=None,
                                event=repr(event))
        self._dispatch(event)
        self.timeline.append((self.sim.now, event.kind, event))
        registry = getattr(self.dep, "metrics", None)
        if registry is not None:
            registry.stats(FAULT_SCOPE, event.kind).observe_oneway()
        if span is not None:
            tracer.finish(span)

    def _dispatch(self, event) -> None:
        dep, fabric = self.dep, self.dep.fabric
        if isinstance(event, NodeCrash):
            dep.nodes[event.host].crash(wipe=event.wipe)
        elif isinstance(event, NodeRestart):
            providers = getattr(dep, "providers", None)
            if providers and event.host in providers \
                    and hasattr(dep, "restart_provider"):
                dep.restart_provider(event.host)
            else:
                dep.nodes[event.host].restart()
        elif isinstance(event, Partition):
            side_b = event.side_b
            if side_b is None:
                isolated = set(event.side_a)
                side_b = tuple(sorted(set(fabric.hosts) - isolated))
            fabric.partition(event.side_a, side_b,
                             symmetric=event.symmetric)
        elif isinstance(event, Heal):
            fabric.heal(event.side_a, event.side_b)
        elif isinstance(event, LinkDegrade):
            fabric.degrade_link(event.src, event.dst, LinkFault(
                rng=self._rng(f"faults:link:{event.src}->{event.dst}"),
                extra_latency=event.extra_latency, jitter=event.jitter,
                drop=event.drop, duplicate=event.duplicate,
                bandwidth_cap=event.bandwidth_cap,
            ))
        elif isinstance(event, LinkRestore):
            fabric.restore_link(event.src, event.dst)
        elif isinstance(event, DiskFault):
            dep.nodes[event.host].set_disk_fault(DiskFaultState(
                rng=self._rng(f"faults:disk:{event.host}"),
                error_rate=event.error_rate, slowdown=event.slowdown,
            ))
        elif isinstance(event, DiskHeal):
            dep.nodes[event.host].clear_disk_fault()
        else:  # pragma: no cover - FaultPlan.at already type-checks
            raise TypeError(f"unknown fault event: {event!r}")

    def _rng(self, name: str) -> random.Random:
        rngs = getattr(self.dep, "rngs", None)
        if rngs is not None:
            return rngs.py(name)
        # Bare harnesses without RngStreams still get a deterministic
        # stream (seeded by the stream name alone).
        return random.Random(name)


def inject(dep: Any, plan: FaultPlan) -> FaultController:
    """Build and start a controller in one call."""
    controller = FaultController(dep, plan)
    controller.start()
    return controller


def fault_timeline_report(controller: FaultController,
                          t0: Optional[float] = None) -> str:
    """One line per executed event, for experiment reports."""
    lines = []
    for t, kind, event in controller.timeline:
        rel = t - (t0 if t0 is not None else 0.0)
        lines.append(f"  t={rel:8.3f}s  {kind:<13} {event}")
    return "\n".join(lines) if lines else "  (no fault events executed)"
