"""Declarative fault schedules.

A :class:`FaultPlan` is an ordered schedule of typed fault events, each
pinned to a virtual-time offset (relative to the moment the controlling
:class:`~repro.faults.controller.FaultController` starts).  Plans are
plain data: they can be built up front, printed, compared, and replayed —
the same plan on the same seed produces a bit-identical run.

Event types map one-to-one onto the substrate hooks:

========================  ==================================================
:class:`NodeCrash`        ``Node.crash`` (fail-stop; NIC silent, procs die)
:class:`NodeRestart`      ``Node.restart`` / provider restart
:class:`Partition`        ``Fabric.partition`` (symmetric or one-way)
:class:`Heal`             ``Fabric.heal``
:class:`LinkDegrade`      ``Fabric.degrade_link`` (latency/jitter/drop/dup/
                          bandwidth cap on a directed link, ``"*"`` wildcards)
:class:`LinkRestore`      ``Fabric.restore_link``
:class:`DiskFault`        ``Node.set_disk_fault`` (IO error rate, service-
                          time inflation)
:class:`DiskHeal`         ``Node.clear_disk_fault``
========================  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class NodeCrash:
    """Fail-stop a node (disk contents survive unless ``wipe``)."""

    host: str
    wipe: bool = False
    kind = "node_crash"


@dataclass(frozen=True)
class NodeRestart:
    """Bring a crashed node back up (provider daemons restart too)."""

    host: str
    kind = "node_restart"


@dataclass(frozen=True)
class Partition:
    """Block the switch between two host sets.

    ``side_b=None`` isolates ``side_a`` from every other attached host.
    ``symmetric=False`` blocks only the ``side_a -> side_b`` direction —
    the asymmetric ("I can hear you but you can't hear me") case.
    """

    side_a: Tuple[str, ...]
    side_b: Optional[Tuple[str, ...]] = None
    symmetric: bool = True
    kind = "partition"


@dataclass(frozen=True)
class Heal:
    """Lift a partition; with no sides given, lift every one."""

    side_a: Optional[Tuple[str, ...]] = None
    side_b: Optional[Tuple[str, ...]] = None
    kind = "heal"


@dataclass(frozen=True)
class LinkDegrade:
    """Degrade the directed ``src -> dst`` link (``"*"`` wildcards)."""

    src: str = "*"
    dst: str = "*"
    extra_latency: float = 0.0      # deterministic added delay (s)
    jitter: float = 0.0             # uniform [0, jitter) extra delay (s)
    drop: float = 0.0               # per-message drop probability
    duplicate: float = 0.0          # per-message duplication probability
    bandwidth_cap: Optional[float] = None  # bytes/s
    kind = "link_degrade"


@dataclass(frozen=True)
class LinkRestore:
    """Remove the degradation on the directed ``src -> dst`` link."""

    src: str = "*"
    dst: str = "*"
    kind = "link_restore"


@dataclass(frozen=True)
class DiskFault:
    """Degrade a node's storage device."""

    host: str
    error_rate: float = 0.0         # per-request DiskIOError probability
    slowdown: float = 1.0           # service-time multiplier
    kind = "disk_fault"


@dataclass(frozen=True)
class DiskHeal:
    """Restore nominal disk service on a node."""

    host: str
    kind = "disk_heal"


FaultEvent = (NodeCrash, NodeRestart, Partition, Heal,
              LinkDegrade, LinkRestore, DiskFault, DiskHeal)


@dataclass
class FaultPlan:
    """A schedule of ``(at_seconds, event)`` pairs.

    Offsets are relative to controller start, so the same plan can run
    against a warmed-up deployment at any absolute time.  Build fluently::

        plan = (FaultPlan()
                .at(30.0, NodeCrash("b03"))
                .at(45.0, NodeRestart("b03")))
    """

    events: List[Tuple[float, object]] = field(default_factory=list)

    def at(self, t: float, event) -> "FaultPlan":
        """Schedule ``event`` ``t`` seconds after controller start."""
        if t < 0:
            raise ValueError(f"fault time must be >= 0, got {t}")
        if not isinstance(event, FaultEvent):
            raise TypeError(f"not a fault event: {event!r}")
        self.events.append((t, event))
        return self

    def schedule(self) -> List[Tuple[float, object]]:
        """Events in execution order (stable sort: ties keep insertion
        order, so e.g. a Heal queued before a Partition at the same
        instant still runs first)."""
        return sorted(self.events, key=lambda pair: pair[0])

    @property
    def duration(self) -> float:
        """Offset of the last scheduled event (0.0 for an empty plan)."""
        return max((t for t, _ in self.events), default=0.0)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.schedule())
