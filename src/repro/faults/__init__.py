"""Declarative, seed-deterministic fault injection.

The fault plane turns the crash-only chaos test into a scenario library:
a :class:`FaultPlan` schedules typed events (crashes, partitions,
degraded links, disk faults), a :class:`FaultController` process executes
them on the sim clock, and :func:`recovery_metrics` summarizes the
damage (dip depth, MTTR, steady-state delta) from any sampled
throughput series.

All injection flows through named deterministic RNG streams, so a run
with an active plan replays bit-identically from its seed.  See
``docs/faults.md`` for the fault model and a scenario cookbook.
"""

from repro.faults.analysis import format_recovery, recovery_metrics
from repro.faults.controller import (
    FAULT_SCOPE,
    FaultController,
    fault_timeline_report,
    inject,
)
from repro.faults.plan import (
    DiskFault,
    DiskHeal,
    FaultPlan,
    Heal,
    LinkDegrade,
    LinkRestore,
    NodeCrash,
    NodeRestart,
    Partition,
)

__all__ = [
    "DiskFault",
    "DiskHeal",
    "FAULT_SCOPE",
    "FaultController",
    "FaultPlan",
    "Heal",
    "LinkDegrade",
    "LinkRestore",
    "NodeCrash",
    "NodeRestart",
    "Partition",
    "fault_timeline_report",
    "format_recovery",
    "inject",
    "recovery_metrics",
]
