"""Sorrento reproduction: a self-organizing storage cluster (SC 2004).

Top-level convenience exports; see the subpackages for the full API:

- :mod:`repro.core` — Sorrento itself (deployment, client, daemons)
- :mod:`repro.baselines` — NFS and PVFS comparison systems
- :mod:`repro.workloads` — the paper's workload generators + trace replay
- :mod:`repro.experiments` — one harness per evaluation table/figure
- :mod:`repro.sim` / :mod:`repro.network` / :mod:`repro.storage` /
  :mod:`repro.cluster` / :mod:`repro.kvstore` — the simulated substrate
"""

__version__ = "0.1.0"

from repro.core import SorrentoConfig, SorrentoDeployment  # noqa: F401

__all__ = ["SorrentoConfig", "SorrentoDeployment", "__version__"]
