"""The storage provider daemon.

A provider wears three hats at once:

* **owner** — it stores segments on its native FS (:class:`SegmentStore`)
  and serves client reads/writes, shadow creation, and 2PC participation;
* **home host** — for SegIDs that consistent-hash to it, it keeps the
  soft-state :class:`LocationTable` and supervises replica consistency and
  replication degree (lazy update propagation, Section 3.6);
* **self-organizer** — it announces heartbeats, refreshes remote location
  tables (the four event types of Section 3.4.1), and runs the migration
  decision loop of Section 3.7.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional, Tuple

from repro.core.hashing import HashRing
from repro.core.locality import AccessHistory
from repro.core.location import LocationTable
from repro.core.membership import MembershipManager
from repro.core.migration import decide_migration
from repro.core.params import SorrentoParams
from repro.core.placement import choose_provider
from repro.core.segment import SegmentError, SegmentStore, StoredSegment
from repro.network.message import RpcRemoteError, RpcTimeout
from repro.sim import Resource
from repro.storage import DiskIOError, StorageEngine

#: Multicast group for the backup location scheme (Section 3.4.2).
LOCATION_GROUP = "sorrento-loc"

#: Per-location-entry wire size in refresh messages.
LOC_ENTRY_BYTES = 40


def _meta_bytes(meta: Optional[dict]) -> int:
    """On-disk footprint of an index segment's contents."""
    if not meta:
        return 4096
    layout = meta.get("layout")
    nsegs = len(layout.segments) if layout is not None else 0
    return 4096 + 24 * nsegs + (meta.get("attached_len") or 0)


class StorageProvider:
    """One provider daemon on one cluster node."""

    SERVICES = (
        "seg_create", "seg_create_shadow", "seg_write", "seg_read",
        "seg_write_vec", "seg_read_vec",
        "seg_truncate", "seg_renew", "seg_prepare", "seg_commit",
        "seg_abort", "seg_delete", "seg_fetch", "seg_sync",
        "seg_replicate", "seg_trim", "seg_pin", "loc_lookup",
        "loc_update", "loc_refresh", "loc_probe",
    )

    def __init__(self, node, volume: str, params: Optional[SorrentoParams] = None,
                 rng: Optional[random.Random] = None):
        if node.fs is None:
            raise ValueError(f"{node.hostid} exports no storage")
        self.node = node
        self.sim = node.sim
        self.volume = volume
        self.params = params or SorrentoParams()
        # crc32, not hash(): the builtin string hash is randomized per
        # interpreter launch (PYTHONHASHSEED), which would make "same
        # seed, same run" hold only within one process.
        self.rng = rng or random.Random(zlib.crc32(node.hostid.encode()) & 0xFFFF)
        self.store = SegmentStore(self.sim, node.fs,
                                  shadow_ttl=self.params.shadow_ttl)
        if self.params.cache_bytes > 0 and node.fs.engine is None:
            # The storage engine (page cache + write-back + scheduler)
            # is strictly opt-in: with cache_bytes=0 the FS talks to the
            # raw device exactly as before.
            node.fs.engine = StorageEngine(
                self.sim, node.fs.device,
                page_size=self.params.page_size,
                cache_bytes=self.params.cache_bytes,
                writeback=self.params.writeback,
                flush_interval=self.params.flush_interval,
                dirty_watermark=self.params.dirty_watermark,
                readahead_pages=self.params.readahead_pages,
                metrics=node.runtime.registry,
                host=node.hostid,
            )
        self.loc = LocationTable()
        self.ring = HashRing(self.params.ring_vnodes)
        self.history = AccessHistory(self.params.locality_segments,
                                     self.params.locality_history)
        self.membership = MembershipManager(
            node, interval=self.params.heartbeat_interval, announce=True
        )
        # Membership events drive the consistent-hash ring incrementally:
        # a join/leave splices that host's vnode points instead of the
        # ring rebuilding from the full member list on the next lookup.
        self.membership.on_join.append(self.ring.add_host)
        self.membership.on_leave.append(self.ring.remove_host)
        self.membership.on_join.append(self._on_join)
        self.membership.on_leave.append(self._on_leave)
        # "we only allow one active data migration process per node"
        self.transfer_lock = Resource(self.sim, 1)
        self._repair_recent: Dict[Tuple[int, str, str], float] = {}
        self._recheck_pending: set = set()
        self._trim_pending: set = set()
        self._locality_recent: Dict[int, float] = {}
        self.stats = {"migrations": 0, "replications": 0, "syncs": 0,
                      "reads": 0, "writes": 0}
        self.rpc = node.runtime
        self.rpc.configure(policy=self.params.rpc_policy())
        for svc in self.SERVICES:
            self.rpc.register(svc, getattr(self, "_h_" + svc), replace=True)
        self.rpc.subscribe(LOCATION_GROUP)
        self.start()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Spawn the background loops (used at boot and after restart)."""
        self.node.spawn(self._refresh_loop(), name="loc-refresh")
        self.node.spawn(self._shadow_sweep_loop(), name="shadow-sweep")
        self.node.spawn(self._migration_loop(), name="migration")
        engine = self.node.fs.engine
        if engine is not None and engine.writeback:
            self.node.spawn(engine.flush_loop(), name="fs-flush")

    def restart(self) -> None:
        """Rejoin after a crash: node back up, location table rebuilt.

        The paper: the location table "is reconstructed every time a
        storage provider starts up"; FS contents survive and the system
        works out "what data are still current and what are outdated"
        via versions.
        """
        self.node.restart()
        engine = self.node.fs.engine
        if engine is not None:
            # Write-back pages died with the node: any version whose data
            # was only ever acknowledged from cache is gone.  Committed
            # versions synced before ack, so only shadows can drop here.
            for fs_name in sorted(engine.take_lost()):
                self.store.discard_lost(fs_name)
        self.loc = LocationTable()
        self.membership.clear()
        self.membership.start()
        self.start()
        # Announce surviving segments to their home hosts right away.
        self.node.spawn(self._refresh_everything(jitter=1.0), name="rejoin")

    # ----------------------------------------------------- common charging
    def _charge(self, nbytes: int = 0):
        yield self.node.cpu(self.params.provider_op_cpu
                            + nbytes * self.params.provider_byte_cpu)

    def _members(self) -> Dict[str, object]:
        return self.membership.snapshot()

    def _home_of(self, segid: int) -> Optional[str]:
        members = self.membership.live_providers()
        if not members:
            return None
        return self.ring.home_host(segid, members)

    # =================================================================
    # Owner-side services (client data path)
    # =================================================================
    def _h_seg_create(self, req: dict, src: str):
        yield from self._charge()
        seg = yield from self.store.create(
            req["segid"], req.get("version", 1),
            replication_degree=req.get("degree", 1),
            alpha=req.get("alpha", self.params.default_alpha),
            placement=req.get("placement", "load"),
            committed=req.get("committed", False),
            creator=src,
        )
        if req.get("meta") is not None:
            seg.meta = req["meta"]
        if seg.committed:
            self._announce_segment(seg)
        return {"version": seg.version}, 48

    def _h_seg_create_shadow(self, req: dict, src: str):
        yield from self._charge()
        seg = yield from self.store.create_shadow(req["segid"],
                                                  req["base_version"],
                                                  creator=src)
        return {"version": seg.version}, 48

    def _owner_hint(self, segid: int, version: int) -> List[Tuple[str, int]]:
        """Piggybacked location knowledge for a data-path reply: our own
        claim, merged with the location table's view when we happen to be
        the segment's home host (lazy propagation, Section 3.4/3.6)."""
        hint = [(self.node.hostid, version)]
        for host, v in self.loc.lookup(segid):
            if host != self.node.hostid:
                hint.append((host, v))
        return hint

    def _write_one(self, req: dict, src: str):
        """Core of ``seg_write``; shared with the vectored handler."""
        segid, version = req["segid"], req["version"]
        length = req["length"]
        yield from self._charge(length)
        existing = self.store.get(segid, version)
        sequential = existing is not None and req["offset"] >= existing.extents.end
        if req.get("in_place"):
            seg = yield from self.store.write_in_place(
                segid, version, req["offset"], length,
                data=req.get("data"), sequential=sequential)
        else:
            seg = yield from self.store.write(
                segid, version, req["offset"], length,
                data=req.get("data"), sequential=sequential)
        self.history.record(segid, src, length)
        self.stats["writes"] += 1
        return {"version": seg.version, "size": seg.size}, 48

    def _h_seg_write(self, req: dict, src: str):
        resp, nbytes = yield from self._write_one(req, src)
        resp["hint"] = self._owner_hint(req["segid"], resp["version"])
        return resp, nbytes + 16 * len(resp["hint"])

    def _h_seg_write_vec(self, req: dict, src: str):
        """Vectored write: every piece of one request lands here.

        Per-piece status lets a partial failure degrade to the client's
        single-piece retry path without poisoning its siblings.
        """
        out, total = [], 0
        for piece in req["pieces"]:
            try:
                resp, nbytes = yield from self._write_one(piece, src)
            except (SegmentError, DiskIOError) as exc:
                out.append({"ok": False, "segid": piece["segid"],
                            "error": str(exc)})
                continue
            resp["ok"] = True
            resp["segid"] = piece["segid"]
            resp["hint"] = self._owner_hint(piece["segid"], resp["version"])
            out.append(resp)
            total += nbytes
        return {"owner": self.node.hostid, "pieces": out}, 48 + total

    def _read_one(self, req: dict, src: str):
        """Core of ``seg_read``; shared with the vectored handler."""
        segid = req["segid"]
        version = req.get("version")
        yield from self._charge()
        if version is None:
            latest = self.store.latest_committed(segid)
            if latest is None:
                raise SegmentError(f"not an owner of {segid:#x}")
            version = latest.version
        length = req["length"]
        seg = self.store.get(segid, version)
        if seg is not None and seg.meta is not None:
            # Index-segment fetch: disk pattern differs from data reads.
            length = yield from self._index_io(
                seg, meta_only=req.get("meta_only", False))
            self.history.record(segid, src, length)
            self.stats["reads"] += 1
            return {"version": version, "data": None, "length": length,
                    "meta": seg.meta}, 64 + length
        data = yield from self.store.read(segid, version, req["offset"], length,
                                          sequential=req.get("sequential", False))
        yield from self._charge(length)
        self.history.record(segid, src, length)
        self.stats["reads"] += 1
        seg = self.store.get(segid, version)
        return {"version": version, "data": data, "length": length,
                "meta": seg.meta}, 64 + length

    def _h_seg_read(self, req: dict, src: str):
        resp, nbytes = yield from self._read_one(req, src)
        resp["hint"] = self._owner_hint(req["segid"], resp["version"])
        return resp, nbytes + 16 * len(resp["hint"])

    def _h_seg_read_vec(self, req: dict, src: str):
        """Vectored read: per-piece payloads and per-piece failure."""
        sequential = req.get("sequential", False)
        out, total = [], 0
        for piece in req["pieces"]:
            one = dict(piece)
            one.setdefault("sequential", sequential)
            try:
                resp, nbytes = yield from self._read_one(one, src)
            except (SegmentError, DiskIOError) as exc:
                out.append({"ok": False, "segid": piece["segid"],
                            "error": str(exc)})
                continue
            resp["ok"] = True
            resp["segid"] = piece["segid"]
            resp["hint"] = self._owner_hint(piece["segid"], resp["version"])
            out.append(resp)
            total += nbytes
        return {"owner": self.node.hostid, "pieces": out}, 48 + total

    def _h_seg_truncate(self, req: dict, src: str):
        yield from self._charge()
        yield from self.store.truncate(req["segid"], req["version"], req["size"])
        return True, 32

    def _h_seg_renew(self, req: dict, src: str):
        yield from self._charge()
        self.store.renew_shadow(req["segid"], req["version"])
        return True, 32

    # -- 2PC participant ---------------------------------------------------
    def _h_seg_prepare(self, req: dict, src: str):
        yield from self._charge()
        seg = self.store.get(req["segid"], req["version"])
        if seg is None or seg.committed:
            return seg is not None, 32  # already committed counts as yes
        if seg.expires_at is not None and seg.expires_at <= self.sim.now:
            return False, 32
        # A yes vote promises the data survives a crash: flush any
        # write-back pages for this shadow before answering.
        yield from self.node.fs.sync(seg.fs_name)
        # Hold the shadow through the commit window.
        seg.expires_at = self.sim.now + self.params.commit_grant_ttl * 4
        return True, 32

    def _h_seg_commit(self, req: dict, src: str):
        yield from self._charge()
        meta = req.get("meta")
        if meta is not None:
            # Persist the index segment's contents (layout + attached
            # data) before sealing the version: one positioned write.
            existing = self.store.get(req["segid"], req["version"])
            if existing is not None and not existing.committed:
                existing.meta = meta
                nbytes = _meta_bytes(meta)
                yield from self.store.write(req["segid"], req["version"],
                                            0, nbytes)
        seg = yield from self.store.commit(req["segid"], req["version"])
        if meta is not None:
            seg.meta = meta
        self._announce_segment(seg)
        hint = self._owner_hint(seg.segid, seg.version)
        # "Sorrento consolidates earlier versions of a segment and only
        # keeps one or a few latest stable versions" — off the commit
        # path, in the background.
        self.node.spawn(self._consolidate_later(req["segid"]),
                        name=f"consolidate:{req['segid']:x}")
        if self.params.eager_propagation:
            yield from self._eager_push(seg)
        return {"version": seg.version, "hint": hint}, 48 + 16 * len(hint)

    def _consolidate_later(self, segid: int):
        yield self.sim.timeout(1.0)
        try:
            yield from self.store.consolidate(segid,
                                              self.params.keep_versions)
        except SegmentError:
            pass  # segment deleted meanwhile

    def _h_seg_abort(self, req: dict, src: str):
        yield from self._charge()
        seg = self.store.get(req["segid"], req["version"])
        # Only the shadow's creator may abort it — a losing committer must
        # not be able to destroy a rival's in-flight shadow.
        if seg is not None and not seg.committed \
                and (not seg.created_by or seg.created_by == src):
            yield from self.store.drop(req["segid"], req["version"])
        return True, 32

    def _h_seg_delete(self, req: dict, src: str):
        segid = req["segid"]
        yield from self._charge()
        yield from self.store.delete_segment(segid)
        self.history.forget(segid)
        home = self._home_of(segid)
        if home is not None:
            self._loc_send(home, "remove", segid, 0, 0, 0)
        return True, 32

    def _h_seg_pin(self, req: dict, src: str):
        """Pin a milestone version against consolidation (Section 3.5's
        Elephant-style extension)."""
        yield from self._charge()
        seg = self.store.get(req["segid"], req["version"])
        if seg is None or not seg.committed:
            return False, 32
        self.store.pin(req["segid"], req["version"])
        return True, 32

    def _h_seg_trim(self, req: dict, src: str):
        """Home host asked us to drop an excess replica."""
        yield from self._charge()
        mine = self.store.latest_committed(req["segid"])
        if mine is None or mine.version != req["version"]:
            return False, 32  # not ours to trim (stale request)
        yield from self.store.delete_segment(req["segid"])
        self.history.forget(req["segid"])
        home = self._home_of(req["segid"])
        if home == self.node.hostid:
            self.loc.remove(req["segid"], self.node.hostid)
        elif home is not None:
            self._loc_send(home, "remove", req["segid"], 0, 0, 0)
        return True, 32

    # -- transfer services (sync / replicate / migrate) ------------------
    def _h_seg_fetch(self, req: dict, src: str):
        """Serve segment content to a peer (full copy or version diff)."""
        segid = req["segid"]
        seg = self.store.get(segid, req["version"]) if req.get("version") \
            else self.store.latest_committed(segid)
        if seg is None or not seg.committed:
            raise SegmentError(f"cannot serve {segid:#x}")
        since = req.get("since")
        regions = None
        if since is not None:
            regions = self.store.export_diff(segid, since, seg.version)
        # Serving replication reads from dirty cache would replicate data
        # that a crash could still lose — flush first (no-op when clean).
        yield from self.node.fs.sync(seg.fs_name)
        if regions is not None:
            nbytes = sum(e - s for s, e, _ in regions)
            yield from self._charge(nbytes)
            if nbytes > 0:
                yield self.node.fs.charge_read(seg.fs_name, 0, nbytes,
                                               sequential=True)
            return {
                "segid": segid, "version": seg.version, "size": seg.size,
                "degree": seg.replication_degree, "alpha": seg.alpha,
                "placement": seg.placement, "meta": seg.meta,
                "regions": regions, "data": None, "nbytes": nbytes,
            }, 128 + nbytes
        nbytes = seg.size
        yield from self._charge(nbytes)
        data = yield from self.store.read(segid, seg.version, 0, seg.size,
                                          sequential=True)
        return {
            "segid": segid, "version": seg.version, "size": seg.size,
            "degree": seg.replication_degree, "alpha": seg.alpha,
            "placement": seg.placement, "meta": seg.meta,
            "pinned": seg.pinned,
            "regions": None, "data": data, "nbytes": nbytes,
        }, 128 + nbytes

    def _h_seg_sync(self, req: dict, src: str):
        """Home host told us our replica is stale: pull the diff."""
        yield from self._charge()
        segid, target_version = req["segid"], req["version"]
        mine = self.store.latest_committed(segid)
        if mine is not None and mine.version >= target_version:
            return {"version": mine.version}, 48
        since = mine.version if mine is not None else None
        resp = yield from self.rpc.call(
            req["from"], "seg_fetch",
            {"segid": segid, "version": target_version, "since": since},
            size=64,
        )
        if self.store.get(segid, resp["version"]) is None:
            if resp.get("regions") is not None:
                seg = yield from self.store.apply_diff(
                    segid, resp["version"], resp["size"], resp["regions"],
                    replication_degree=resp["degree"], alpha=resp["alpha"],
                    placement=resp["placement"], meta=resp["meta"],
                )
            else:
                seg = yield from self.store.ingest(
                    segid, resp["version"], resp["size"],
                    replication_degree=resp["degree"], alpha=resp["alpha"],
                    placement=resp["placement"], meta=resp["meta"],
                    data=resp["data"], write_bytes=resp["nbytes"],
                )
            yield from self.store.consolidate(segid, self.params.keep_versions)
            self._announce_segment(seg)
        self.stats["syncs"] += 1
        return {"version": resp["version"]}, 48

    def _h_seg_replicate(self, req: dict, src: str):
        """Home host (or a migrating peer) asked us to host a replica.

        ``exact=True`` requests that precise version even if a newer one
        is already held (migration moving pinned milestone versions).
        """
        yield from self._charge()
        segid = req["segid"]
        exact = req.get("exact", False)

        def satisfied():
            if exact:
                return self.store.get(segid, req["version"]) is not None
            mine = self.store.latest_committed(segid)
            return mine is not None and mine.version >= req["version"]

        if satisfied():
            return {"already": True, "version": req["version"]}, 48
        grant = self.transfer_lock.request()
        yield grant
        try:
            if satisfied():
                return {"already": True, "version": req["version"]}, 48
            resp = yield from self.rpc.call(
                req["from"], "seg_fetch",
                {"segid": segid, "version": req["version"]},
                size=64,
            )
            t0 = self.sim.now
            seg = yield from self.store.ingest(
                segid, resp["version"], resp["size"],
                replication_degree=resp["degree"], alpha=resp["alpha"],
                placement=resp["placement"], meta=resp["meta"],
                data=resp["data"],
            )
            if resp.get("pinned"):
                seg.pinned = True
            self._announce_segment(seg)
            self.stats["replications"] += 1
            # Pace background transfers so recovery/migration traffic does
            # not starve foreground I/O: hold the node's single transfer
            # slot until the average rate drops to repair_bandwidth.
            pace = resp["size"] / self.params.repair_bandwidth
            elapsed = self.sim.now - t0
            if pace > elapsed:
                yield self.sim.timeout(pace - elapsed)
            return {"already": False, "version": seg.version}, 48
        finally:
            self.transfer_lock.release()

    # =================================================================
    # Home-host services (data location, Section 3.4)
    # =================================================================
    def _h_loc_lookup(self, req: dict, src: str):
        """Locate a segment's owners; serve small reads inline when local.

        Mirrors Figure 6 step (2): if the home host itself owns the
        segment, it "sends back the data immediately" instead of
        redirecting.
        """
        segid = req["segid"]
        yield from self._charge()
        mine = self.store.latest_committed(segid)
        read = req.get("read")
        latest_known = self.loc.latest_version(segid)
        if mine is not None and read is not None \
                and (latest_known is None or mine.version >= latest_known):
            data = None
            if mine.meta is not None:
                # Index segment: inode + (unless meta-only) attached data.
                length = yield from self._index_io(
                    mine, meta_only=read.get("meta_only", False))
            else:
                offset, length = read["offset"], read["length"]
                length = min(length, max(0, mine.size - offset))
                if length > 0:
                    data = yield from self.store.read(segid, mine.version,
                                                      offset, length)
            self.history.record(segid, src, length)
            resp = {
                "owners": self.loc.lookup(segid) or [(self.node.hostid, mine.version)],
                "inline": {"version": mine.version, "data": data,
                           "length": length, "meta": mine.meta,
                           "size": mine.size},
            }
            nbytes = 96 + length
        else:
            owners = self.loc.lookup(segid)
            if mine is not None and all(h != self.node.hostid for h, _ in owners):
                owners = [(self.node.hostid, mine.version)] + owners
            resp = {"owners": owners, "inline": None}
            nbytes = 64 + 16 * len(owners)
        if req.get("affinity"):
            # Opt-in (the compute scheduler sets it): the per-source byte
            # counts this home host's access history holds for the segment,
            # so a caller can score *who has been reading these bytes*
            # without a second RPC.  Existing flows never set the flag.
            traffic = self.history.traffic_by_source(segid)
            resp["affinity"] = traffic
            nbytes += 24 * len(traffic)
        return resp, nbytes

    def _h_loc_update(self, req: dict, src: str) -> None:
        """Eager add/remove of one location entry (segment events)."""
        if req["op"] == "add":
            self.loc.update(req["segid"], req["owner"], req["version"],
                            req["degree"], req["size"], self.sim.now)
        else:
            self.loc.remove(req["segid"], req["owner"])
        self._schedule_supervision(req["segid"])

    def _h_loc_refresh(self, req: dict, src: str):
        """Bulk periodic content refreshing from an owner."""
        yield from self._charge(LOC_ENTRY_BYTES * len(req["entries"]))
        for segid, version, degree, size in req["entries"]:
            self.loc.update(segid, req["owner"], version, degree, size,
                            self.sim.now)
            self._schedule_supervision(segid)
        return True, 32

    def _h_loc_probe(self, req: dict, src: str) -> None:
        """Backup scheme: answer a multicast who-has query if we own it."""
        mine = self.store.latest_committed(req["segid"])
        if mine is not None:
            self.rpc.send(src, "loc_probe_hit", {
                "nonce": req["nonce"], "segid": req["segid"],
                "owner": self.node.hostid, "version": mine.version,
            }, size=64)

    def _index_io(self, seg, meta_only: bool = False):
        """Disk charge for reading an index segment: the native-FS inode
        plus, unless only the layout is needed, the attached file data.

        Routed per-file through the page cache when an engine is on —
        repeated index fetches are exactly the hot small reads a buffer
        cache absorbs (the paper's NFS small-file advantage, §6.2)."""
        yield self.node.fs.meta_io()
        attached = (seg.meta or {}).get("attached_len") or 0
        if not meta_only:
            yield self.node.fs.charge_read(seg.fs_name, 0,
                                           max(4096, attached))
        seg.last_access = self.sim.now
        return 0 if meta_only else attached

    # ------------------------------------------------- announcements
    def _announce_segment(self, seg: StoredSegment) -> None:
        """Segment creation / version advance → tell the home host."""
        home = self._home_of(seg.segid)
        if home is None:
            return
        if home == self.node.hostid:
            self.loc.update(seg.segid, self.node.hostid, seg.version,
                            seg.replication_degree, seg.size, self.sim.now)
            self._schedule_supervision(seg.segid)
        else:
            self._loc_send(home, "add", seg.segid, seg.version,
                           seg.replication_degree, seg.size)

    def _loc_send(self, home: str, op: str, segid: int, version: int,
                  degree: int, size: int) -> None:
        self.rpc.send(home, "loc_update", {
            "op": op, "segid": segid, "owner": self.node.hostid,
            "version": version, "degree": degree, "size": size,
        }, size=LOC_ENTRY_BYTES)

    # ------------------------------------------- replica supervision
    def _schedule_supervision(self, segid: int) -> None:
        self.node.spawn(self._supervise(segid), name=f"supervise:{segid:x}")

    def _supervise(self, segid: int, delay: float = 0.0):
        """Home-host check: push syncs to stale owners, restore degree."""
        if delay > 0:
            yield self.sim.timeout(delay)
        latest, current, stale = self.loc.discrepancies(segid)
        if not current:
            return
        now = self.sim.now
        source = self.rng.choice(current)
        for host in stale:
            if self._repair_throttled(segid, "sync", host, now):
                continue
            self.rpc.send(host, "seg_sync", {
                "segid": segid, "version": latest, "from": source,
            }, size=48)
        owners = set(current) | set(stale)
        rec = self.loc.record(segid, current[0])
        degree = rec.degree if rec else 1
        size = rec.size if rec else 0
        age = self.loc.age(segid, now)
        if age < self.params.repair_grace:
            # Immature entry: owners may still be refreshing in.  Check
            # again once mature (rather than waiting a full refresh cycle).
            if segid not in self._recheck_pending:
                self._recheck_pending.add(segid)
                self.node.spawn(
                    self._recheck(segid, self.params.repair_grace - age + 0.1),
                    name=f"recheck:{segid:x}")
            return
        # Replications already in flight (sent recently, not yet owners).
        pending = {
            h for (sid, action, h), t in self._repair_recent.items()
            if sid == segid and action == "repl" and h not in owners
            and t > now - self.params.repair_cooldown
        }
        deficit = degree - len(owners) - len(pending)
        if deficit > 0:
            members = self._members()
            exclude = owners | pending
            for _ in range(deficit):
                # Rack-aware: prefer replica sites outside the failure
                # domains already holding a copy (GoogleFS-style).
                used_racks = {
                    members[h].rack for h in (owners | pending)
                    if h in members and members[h].rack
                }
                target = choose_provider(
                    self.rng, members, max(size, 1),
                    self.params.default_alpha, exclude=exclude,
                    avoid_racks=used_racks,
                )
                if target is None:
                    return
                exclude.add(target)
                if self._repair_throttled(segid, "repl", target, now):
                    continue
                self.rpc.send(target, "seg_replicate", {
                    "segid": segid, "version": latest, "from": source,
                }, size=48)
        elif not stale and len(owners) > degree:
            # Apparent excess replicas.  NEVER trim immediately: a
            # migration in flight shows two owners for a moment (target
            # announced, source's removal not yet arrived) and trimming
            # then — while the source erases its copy — loses the
            # segment.  Re-verify after a full cooldown instead.
            if segid not in self._trim_pending:
                self._trim_pending.add(segid)
                self.node.spawn(self._verify_trim(segid),
                                name=f"verify-trim:{segid:x}")

    def _verify_trim(self, segid: int):
        yield self.sim.timeout(self.params.repair_cooldown)
        self._trim_pending.discard(segid)
        latest, current, stale = self.loc.discrepancies(segid)
        if stale or not current:
            return
        rec = self.loc.record(segid, current[0])
        degree = rec.degree if rec else 1
        if len(current) <= degree:
            return  # the transient resolved itself (migration completed)
        now = self.sim.now
        extra = sorted(current)
        victim = extra[-1]
        if not self._repair_throttled(segid, "trim", victim, now):
            self.rpc.send(victim, "seg_trim", {
                "segid": segid, "version": latest,
            }, size=48)

    def _recheck(self, segid: int, delay: float):
        yield self.sim.timeout(delay)
        self._recheck_pending.discard(segid)
        yield from self._supervise(segid)

    def _repair_throttled(self, segid: int, action: str, host: str,
                          now: float) -> bool:
        key = (segid, action, host)
        if self._repair_recent.get(key, -1e18) > now - self.params.repair_cooldown:
            return True
        self._repair_recent[key] = now
        if len(self._repair_recent) > 10000:
            cutoff = now - self.params.repair_cooldown
            self._repair_recent = {
                k: t for k, t in self._repair_recent.items() if t > cutoff
            }
        return False

    # =================================================================
    # Membership events (the four refresh-trigger types, Section 3.4.1)
    # =================================================================
    def _on_join(self, hostid: str) -> None:
        if hostid == self.node.hostid:
            return
        delay = self.rng.random() * self.params.join_refresh_delay_max
        self.node.spawn(self._refresh_toward(hostid, delay),
                        name=f"join-refresh:{hostid}")

    def _on_leave(self, hostid: str) -> None:
        # (3) Node departure: purge its records; segments it owned may now
        # be under-replicated — recheck after a grace period.
        affected = self.loc.drop_owner(hostid)
        for segid in affected:
            self.node.spawn(
                self._supervise(segid, delay=self.params.repair_delay),
                name=f"repair:{segid:x}",
            )
        # Re-announce local segments whose home host was the dead node.
        self.node.spawn(self._rehome_after_departure(hostid), name="rehome")

    def _rehome_after_departure(self, dead: str):
        members = self.membership.live_providers()
        if not members:
            return
        yield self.sim.timeout(self.rng.random() * 2.0)
        by_home: Dict[str, List[tuple]] = {}
        for seg in self.store.committed_segments():
            old_ring = self.ring.home_host(
                seg.segid, sorted(set(members) | {dead})
            )
            if old_ring != dead:
                continue
            new_home = self.ring.home_host(seg.segid, members)
            by_home.setdefault(new_home, []).append(
                (seg.segid, seg.version, seg.replication_degree, seg.size)
            )
        yield from self._send_refreshes(by_home)

    def _refresh_toward(self, hostid: str, delay: float):
        yield self.sim.timeout(delay)
        members = self.membership.live_providers()
        if hostid not in members:
            return  # departed again before we refreshed
        entries = [
            (seg.segid, seg.version, seg.replication_degree, seg.size)
            for seg in self.store.committed_segments()
            if self.ring.home_host(seg.segid, members) == hostid
        ]
        yield from self._send_refreshes({hostid: entries} if entries else {})

    # ------------------------------------------------- periodic loops
    def _refresh_loop(self):
        # Stagger the first cycle so providers do not refresh in lockstep.
        yield self.sim.timeout(self.rng.random() * self.params.refresh_cycle)
        while True:
            yield from self._refresh_everything()
            self.loc.purge(
                self.sim.now,
                self.params.purge_age_factor * self.params.refresh_cycle,
            )
            yield self.sim.timeout(self.params.refresh_cycle)

    def _refresh_everything(self, jitter: float = 0.0):
        if jitter:
            yield self.sim.timeout(self.rng.random() * jitter)
        members = self.membership.live_providers()
        if not members:
            return
        by_home: Dict[str, List[tuple]] = {}
        for seg in self.store.committed_segments():
            home = self.ring.home_host(seg.segid, members)
            by_home.setdefault(home, []).append(
                (seg.segid, seg.version, seg.replication_degree, seg.size)
            )
        yield from self._send_refreshes(by_home)

    def _send_refreshes(self, by_home: Dict[str, List[tuple]]):
        for home, entries in by_home.items():
            if home == self.node.hostid:
                for segid, version, degree, size in entries:
                    self.loc.update(segid, self.node.hostid, version, degree,
                                    size, self.sim.now)
                    self._schedule_supervision(segid)
                continue
            self.rpc.send(home, "loc_refresh", {
                "owner": self.node.hostid, "entries": entries,
            }, size=32 + LOC_ENTRY_BYTES * len(entries))
            yield self.node.cpu(
                self.params.provider_op_cpu * (1 + len(entries) / 64)
            )

    def _shadow_sweep_loop(self):
        while True:
            yield self.sim.timeout(max(5.0, self.params.shadow_ttl / 4))
            for segid, version in self.store.expire_shadows():
                yield from self.store.drop(segid, version)

    # =================================================================
    # Migration (Section 3.7)
    # =================================================================
    def _migration_loop(self):
        yield self.sim.timeout(self.rng.random() * self.params.migration_interval)
        while True:
            try:
                yield from self._migration_round()
            except (RpcTimeout, RpcRemoteError, SegmentError):
                pass
            yield self.sim.timeout(self.params.migration_interval)

    def _migration_round(self):
        members = self._members()
        candidates = [s for s in self.store.committed_segments() if s.size > 0]
        # Locality-driven moves first: they are explicit application policy.
        yield from self._locality_round(members, candidates)
        decision = decide_migration(self.node.hostid, members,
                                    [s for s in candidates
                                     if s.placement != "locality"],
                                    self.params)
        if decision is None:
            return
        for seg in decision.segments:
            owners = {h for h, _ in self.loc.lookup(seg.segid)}
            target = choose_provider(
                self.rng, members, seg.size, decision.alpha,
                exclude=owners | {self.node.hostid},
            )
            if target is None:
                continue
            yield from self._migrate_out(seg, target)

    def _locality_round(self, members, candidates):
        now = self.sim.now
        for seg in candidates:
            if seg.placement != "locality":
                continue
            if self._locality_recent.get(seg.segid, -1e18) > now - 2 * self.params.migration_interval:
                continue
            dominant = self.history.dominant_source(
                seg.segid, self.params.locality_threshold,
                self.params.locality_min_samples,
            )
            if dominant is None or dominant == self.node.hostid:
                continue
            if dominant not in members:
                continue  # traffic source is not a storage provider
            self._locality_recent[seg.segid] = now
            yield from self._migrate_out(seg, dominant)

    def _migrate_out(self, seg: StoredSegment, target: str):
        """Replicate to ``target`` then erase locally (Section 3.7.1:
        migration = new replica elsewhere + erase the local copy).

        Pinned milestone versions travel with the segment — migration
        must never silently shed history."""
        grant = self.transfer_lock.request()
        yield grant
        try:
            timeout = max(self.params.rpc_timeout, seg.size / 1e6)
            # Move pinned history first (oldest up), then the live tip.
            pinned = [
                v for v in self.store.versions_of(seg.segid)
                if v != seg.version and self.store.get(seg.segid, v).pinned
            ]
            for v in pinned:
                try:
                    yield from self.rpc.call(
                        target, "seg_replicate", {
                            "segid": seg.segid, "version": v,
                            "from": self.node.hostid, "exact": True,
                        }, size=48, timeout=timeout)
                except (RpcTimeout, RpcRemoteError):
                    return False
            try:
                resp = yield from self.rpc.call(
                    target, "seg_replicate", {
                        "segid": seg.segid, "version": seg.version,
                        "from": self.node.hostid,
                    }, size=48, timeout=timeout,
                )
            except (RpcTimeout, RpcRemoteError):
                return False
            if resp.get("already"):
                # The target already held the live tip: nothing moved, so
                # keep the local copy (replica count must not shrink).
                # Any pinned history shipped above is harmlessly duplicated.
                return False
            yield from self.store.delete_segment(seg.segid)
            self.history.forget(seg.segid)
            home = self._home_of(seg.segid)
            if home == self.node.hostid:
                self.loc.remove(seg.segid, self.node.hostid)
            elif home is not None:
                self._loc_send(home, "remove", seg.segid, 0, 0, 0)
            self.stats["migrations"] += 1
            return True
        finally:
            self.transfer_lock.release()

    # ------------------------------------------------- eager propagation
    def _eager_push(self, seg: StoredSegment):
        """Synchronous commitment: push the new version to every replica
        before acknowledging (Section 3.6)."""
        home = self._home_of(seg.segid)
        if home is None:
            return
        try:
            if home == self.node.hostid:
                owners = self.loc.lookup(seg.segid)
            else:
                resp = yield from self.rpc.call(
                    home, "loc_lookup", {"segid": seg.segid}, size=48)
                owners = resp["owners"]
        except (RpcTimeout, RpcRemoteError):
            return
        stale = [h for h, v in owners
                 if h != self.node.hostid and v < seg.version]
        for host in stale:
            try:
                yield from self.rpc.call(host, "seg_sync", {
                    "segid": seg.segid, "version": seg.version,
                    "from": self.node.hostid,
                }, size=48)
            except (RpcTimeout, RpcRemoteError):
                continue
