"""All Sorrento tunables in one place.

Values marked "paper" are stated in the text; the rest are calibration
constants for the simulated substrate (documented in DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.policy import RPC_DEADLINE, CallPolicy

MB = 1 << 20


@dataclass
class SorrentoParams:
    """Deployment-wide configuration knobs."""

    # --- membership (Section 3.3) ---
    heartbeat_interval: float = 1.0          # announcement period
    # death after 5 missed intervals: DEATH_FACTOR in membership.py (paper)

    # --- data location (Section 3.4) ---
    refresh_cycle: float = 900.0             # paper: 15 minutes
    join_refresh_delay_max: float = 20.0     # paper: random delay <= 20 s
    purge_age_factor: float = 2.5            # purge entries older than
    #                                          factor x refresh_cycle
    ring_vnodes: int = 64

    # --- versioning (Section 3.5) ---
    shadow_ttl: float = 300.0                # shadow expiration window
    keep_versions: int = 2                   # consolidation retention
    commit_grant_ttl: float = 5.0            # namespace commit-lock expiry

    # --- replication (Section 3.6) ---
    default_degree: int = 1
    eager_propagation: bool = False          # paper default: lazy
    repair_delay: float = 20.0               # grace before re-replication
    repair_cooldown: float = 30.0            # per-(segment,target) backoff
    repair_grace: float = 25.0               # entry maturity before degree
    #                                          repair (avoids acting on a
    #                                          partially-refreshed view)
    repair_bandwidth: float = 4e6            # per-node average repair rate
    #                                          (bytes/s): keeps recovery
    #                                          traffic from starving clients

    # --- placement & migration (Section 3.7) ---
    default_alpha: float = 0.5               # paper
    migrate_alpha_io: float = 0.8            # paper: hot migration
    migrate_alpha_space: float = 0.3         # paper: cold migration
    migration_interval: float = 60.0         # paper: decision every minute
    migration_top_fraction: float = 0.10     # paper: highest 10%
    migration_sigma: float = 3.0             # paper: mean + 3 sigma
    small_segment_bytes: int = 64 * 1024     # home-host 3N boost threshold
    home_boost_enabled: bool = True
    migrations_per_round: int = 4            # segments moved per decision
    segment_affinity: float = 0.85           # probability a growing file's
    #                                          next segment stays with the
    #                                          previous one (keeps a file's
    #                                          data together; migration is
    #                                          the corrective force)

    # --- locality-driven policy (Section 3.7.2) ---
    locality_threshold: float = 0.6          # must be > 0.5 (paper)
    locality_history: int = 1000             # accesses kept per segment (paper)
    locality_segments: int = 1000            # segments tracked (paper)
    locality_min_samples: int = 20

    # --- attached small files (Section 3.2) ---
    attach_max: int = 60 * 1024              # paper: 60 KB

    # --- client caching & vectored I/O ---
    loc_cache_enabled: bool = True           # per-client location cache
    loc_cache_ttl: float = 30.0              # owner/version entry lifetime
    loc_cache_capacity: int = 4096           # entries per client
    entry_cache_enabled: bool = False        # namespace entries ("r" opens).
    #                                          Opt-in: relaxes "open sees the
    #                                          latest commit" to within-TTL
    #                                          (NFS-attribute-cache style);
    #                                          there is no cross-client
    #                                          invalidation channel for
    #                                          namespace entries.
    entry_cache_ttl: float = 2.0             # short: bounds cross-client
    #                                          staleness of open("r")
    entry_cache_capacity: int = 1024
    meta_cache_enabled: bool = True          # index-segment metadata,
    #                                          version-gated (exact match
    #                                          against the namespace entry)
    meta_cache_ttl: float = 60.0
    meta_cache_capacity: int = 256
    vectored_io: bool = True                 # one seg_read_vec/seg_write_vec
    #                                          per owner instead of one RPC
    #                                          per layout piece

    # --- namespace sharding (routed metadata API) ---
    ns_shard_vnodes: int = 16                # vnodes/shard on the prefix ring
    #                                          (client snapshot and the
    #                                          authoritative map must agree)
    ns_route_cache_ttl: float = 30.0         # client prefix->shard routes,
    ns_route_cache_capacity: int = 4096      # keyed by (epoch, prefix)
    ns_redirect_limit: int = 4               # EWRONGSHARD hops before the
    #                                          error surfaces to the app

    # --- provider storage engine (page cache + disk scheduler) ---
    cache_bytes: int = 0                     # per-provider page-cache size;
    #                                          0 disables the engine entirely
    #                                          (the seed's raw-disk path, kept
    #                                          as the default so recorded
    #                                          goldens stay bit-identical)
    page_size: int = 16 * 1024               # cache page granularity
    writeback: bool = True                   # ack writes from cache; False =
    #                                          write-through (cache reads only)
    flush_interval: float = 0.5              # background flusher period
    dirty_watermark: float = 0.25            # dirty fraction that wakes the
    #                                          flusher early
    readahead_pages: int = 2                 # extra pages on sequential miss

    # --- calibration: CPU charges (reference-GHz-seconds) ---
    ns_op_cpu: float = 6e-4                  # ~1300 ops/s on a Cluster A node
    provider_op_cpu: float = 3e-4            # per request, user-level daemon
    provider_byte_cpu: float = 2e-8          # per byte through the daemon
    client_op_cpu: float = 1e-4              # client stub bookkeeping

    # --- namespace durability ---
    ns_checkpoint_interval: float = 300.0

    # --- RPC behaviour ---
    rpc_timeout: float = RPC_DEADLINE        # paper: Figure 13's 5 s deadline
    open_rtts: int = 2                       # paper: 2 TCP roundtrips to open
    close_rtts: int = 3                      # paper: 3 TCP roundtrips to close

    def rpc_policy(self, attempts: int = 1, backoff: float = 0.0) -> CallPolicy:
        """The deployment's call policy for the service runtime."""
        return CallPolicy(timeout=self.rpc_timeout, attempts=attempts,
                          backoff=backoff)
