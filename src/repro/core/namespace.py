"""The namespace server (Sections 3.1 and 3.5).

One daemon per volume.  It maps pathnames to file entries — the Sorrento
inode: a 128-bit FileID (= the index segment's SegID), the file's latest
version, and timestamps — and arbitrates version commits.  It deliberately
does **not** track where data segments live; that is the distributed
location scheme's job, which keeps this server small and fast ("a single
namespace server is able to handle 1300 namespace operations per second").

The directory tree lives in the embedded KV store (the paper used
Berkeley DB) with write-ahead logging, group commit, and periodic
checkpoints for recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.params import SorrentoParams
from repro.kvstore import KVStore
from repro.sim import Store

ROOT = "/"


class NamespaceError(Exception):
    """Client-visible namespace failures (ENOENT, EEXIST, conflict...)."""


@dataclass
class FileEntry:
    """The Sorrento 'inode' kept per file (Section 3.1)."""

    path: str
    fileid: int
    version: int = 0          # 0 = created but never committed
    ctime: float = 0.0
    mtime: float = 0.0
    degree: int = 1           # replication degree (per-file, Section 3.6)
    alpha: float = 0.5        # placement favoritism (per-file, Section 3.7)
    mode: str = "linear"      # data organization mode
    versioning: bool = True   # False = application manages consistency
    placement: str = "load"   # "load" | "locality" | "random"
    stripe_count: int = 4     # striped/hybrid segment (group) width
    fixed_size: int = 0       # striped: declared max file size
    milestones: tuple = ()    # versions never consolidated (Elephant-like)

    def to_dict(self) -> dict:
        return dict(self.__dict__)

    @staticmethod
    def from_dict(d: dict) -> "FileEntry":
        return FileEntry(**d)


@dataclass
class _CommitGrant:
    fileid: int
    holder: str
    base_version: int
    expires_at: float


@dataclass
class _Lease:
    holder: str
    expires_at: float


def _dir_key(path: str) -> str:
    return "d:" + path


def _file_key(path: str) -> str:
    return "f:" + path


def _parent(path: str) -> str:
    if path == ROOT:
        return ROOT
    head, _, _ = path.rpartition("/")
    return head or ROOT


class NamespaceServer:
    """RPC daemon: directory tree + version arbitration for one volume."""

    SERVICES = (
        "ns_lookup", "ns_create", "ns_unlink", "ns_mkdir", "ns_rmdir",
        "ns_list", "ns_begin_commit", "ns_complete_commit",
        "ns_abort_commit", "ns_acquire_lease", "ns_release_lease",
        "ns_update_entry", "ns_mark_milestone",
    )

    def __init__(self, node, volume: str, params: Optional[SorrentoParams] = None):
        self.node = node
        self.sim = node.sim
        self.volume = volume
        self.params = params or SorrentoParams()
        self.db = KVStore()
        self.db.put(_dir_key(ROOT), {"ctime": self.sim.now})
        self._grants: Dict[int, _CommitGrant] = {}
        self._leases: Dict[int, _Lease] = {}
        self._flush_queue = Store(self.sim)
        self.ops_served = 0
        self.standby: Optional[str] = None    # hostid of the WAL-shipping
        #                                       target (replication ext.)
        self._ship_seq = 0
        self.rpc = node.runtime
        self.rpc.configure(policy=self.params.rpc_policy())
        for svc in self.SERVICES:
            self.rpc.register(svc, getattr(self, "_h_" + svc[3:]),
                              replace=True)
        self.rpc.register("nsr_apply", self._h_nsr_apply, replace=True)
        node.spawn(self._flusher_loop(), name="ns-wal-flush")
        node.spawn(self._checkpoint_loop(), name="ns-checkpoint")

    # ------------------------------------------------- replication (ext.)
    def attach_standby(self, hostid: str) -> None:
        """Ship every mutation batch to a hot-standby namespace server —
        the replication extension Section 3.1 points at.  The standby
        serves lookups/commits if the primary dies (volatile grant/lease
        state is lost; grants simply expire)."""
        self.standby = hostid

    def _put(self, key, value) -> None:
        self.db.put(key, value)
        self._ship("put", key, value)

    def _delete(self, key) -> None:
        self.db.delete(key)
        self._ship("del", key, None)

    def _ship(self, op: str, key, value) -> None:
        if self.standby is None:
            return
        self._ship_seq += 1
        self.rpc.send(self.standby, "nsr_apply", {
            "seq": self._ship_seq, "op": op, "key": key, "value": value,
        }, size=96 + (len(key) if isinstance(key, str) else 16))

    def _h_nsr_apply(self, rec: dict, src: str) -> None:
        """Standby side: apply one shipped mutation."""
        if rec["op"] == "put":
            value = rec["value"]
            self.db.put(rec["key"],
                        dict(value) if isinstance(value, dict) else value)
        else:
            self.db.delete(rec["key"])

    # ------------------------------------------------------------------
    # Durability plumbing: mutations wait for the next WAL group flush,
    # reads only pay CPU (the tree is memory-resident, as with BDB cache).
    # ------------------------------------------------------------------
    def _charge_cpu(self):
        self.ops_served += 1
        yield self.node.cpu(self.params.ns_op_cpu)

    def _durable(self):
        """Wait until the current WAL batch hits the disk (group commit)."""
        ev = self.sim.event("wal-flush")
        self._flush_queue.put(ev)
        yield ev

    def _flusher_loop(self):
        while True:
            first = yield self._flush_queue.get()
            waiters = [first]
            while len(self._flush_queue):
                waiters.append((yield self._flush_queue.get()))
            # One WAL write commits the whole batch; journal appends are
            # synchronous by definition and never pass through a cache.
            yield self.node.fs.journal_io(4096 + 512 * len(waiters))
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()

    def _checkpoint_loop(self):
        while True:
            yield self.sim.timeout(self.params.ns_checkpoint_interval)
            nbytes = self.db.checkpoint()
            yield self.node.fs.journal_io(max(4096, nbytes), sequential=True)

    # ------------------------------------------------------- handlers
    def _h_lookup(self, path: str, src: str):
        yield from self._charge_cpu()
        entry = self.db.get(_file_key(path))
        if entry is None:
            raise NamespaceError(f"ENOENT {path}")
        return dict(entry), 128

    def _h_create(self, req: dict, src: str):
        """Create a file entry; the client supplies the FileID it minted."""
        yield from self._charge_cpu()
        path = req["path"]
        if self.db.get(_file_key(path)) is not None:
            raise NamespaceError(f"EEXIST {path}")
        if self.db.get(_dir_key(_parent(path))) is None:
            raise NamespaceError(f"ENOENT parent of {path}")
        entry = FileEntry(
            path=path,
            fileid=req["fileid"],
            ctime=self.sim.now,
            mtime=self.sim.now,
            degree=req.get("degree", self.params.default_degree),
            alpha=req.get("alpha", self.params.default_alpha),
            mode=req.get("mode", "linear"),
            versioning=req.get("versioning", True),
            placement=req.get("placement", "load"),
            stripe_count=req.get("stripe_count", 4),
            fixed_size=req.get("fixed_size", 0),
        ).to_dict()
        self._put(_file_key(path), entry)
        yield from self._durable()
        return dict(entry), 128

    def _h_update_entry(self, req: dict, src: str):
        """Mutate policy fields (degree/alpha/placement) of an entry."""
        yield from self._charge_cpu()
        path = req["path"]
        entry = self.db.get(_file_key(path))
        if entry is None:
            raise NamespaceError(f"ENOENT {path}")
        for k in ("degree", "alpha", "placement"):
            if k in req:
                entry[k] = req[k]
        self._put(_file_key(path), entry)
        yield from self._durable()
        return dict(entry), 128

    def _h_unlink(self, path: str, src: str):
        yield from self._charge_cpu()
        entry = self.db.get(_file_key(path))
        if entry is None:
            raise NamespaceError(f"ENOENT {path}")
        self._delete(_file_key(path))
        self._grants.pop(entry["fileid"], None)
        self._leases.pop(entry["fileid"], None)
        yield from self._durable()
        return dict(entry), 128

    def _h_mkdir(self, path: str, src: str):
        yield from self._charge_cpu()
        if self.db.get(_dir_key(path)) is not None:
            raise NamespaceError(f"EEXIST {path}")
        if self.db.get(_dir_key(_parent(path))) is None:
            raise NamespaceError(f"ENOENT parent of {path}")
        self._put(_dir_key(path), {"ctime": self.sim.now})
        yield from self._durable()
        return True, 32

    def _h_rmdir(self, path: str, src: str):
        yield from self._charge_cpu()
        if path == ROOT:
            raise NamespaceError("cannot remove /")
        if self.db.get(_dir_key(path)) is None:
            raise NamespaceError(f"ENOENT {path}")
        if self._list_children(path):
            raise NamespaceError(f"ENOTEMPTY {path}")
        self._delete(_dir_key(path))
        yield from self._durable()
        return True, 32

    def _h_list(self, path: str, src: str):
        yield from self._charge_cpu()
        if self.db.get(_dir_key(path)) is None:
            raise NamespaceError(f"ENOENT {path}")
        names = self._list_children(path)
        return names, 64 + 16 * len(names)

    def _list_children(self, path: str) -> List[str]:
        prefix = path if path.endswith("/") else path + "/"
        out = []
        for kind in ("f:", "d:"):
            for key, _ in self.db.prefix_items(kind + prefix):
                rest = key[len(kind) + len(prefix):]
                if rest and "/" not in rest:
                    out.append(rest + ("/" if kind == "d:" else ""))
        return sorted(out)

    # ------------------------------------------------ version arbitration
    def _h_begin_commit(self, req: dict, src: str):
        """Grant the right to commit version base+1 of a file.

        Rejected if the stored version moved past ``base_version`` (another
        writer won: the caller sees a conflict) or if another commit is in
        flight (the caller retries; Figure 6 steps (7)-(9)).
        """
        yield from self._charge_cpu()
        path, base = req["path"], req["base_version"]
        entry = self.db.get(_file_key(path))
        if entry is None:
            raise NamespaceError(f"ENOENT {path}")
        fileid = entry["fileid"]
        grant = self._grants.get(fileid)
        if grant is not None and grant.expires_at > self.sim.now \
                and grant.holder != src:
            return {"status": "busy"}, 48
        if entry["version"] != base:
            return {"status": "conflict", "current": entry["version"]}, 48
        lease = self._leases.get(fileid)
        if lease is not None and lease.expires_at > self.sim.now \
                and lease.holder != src:
            return {"status": "lease_held", "holder": lease.holder}, 48
        self._grants[fileid] = _CommitGrant(
            fileid, src, base, self.sim.now + self.params.commit_grant_ttl
        )
        return {"status": "ok"}, 48

    def _h_complete_commit(self, req: dict, src: str):
        yield from self._charge_cpu()
        path, new_version = req["path"], req["new_version"]
        entry = self.db.get(_file_key(path))
        if entry is None:
            raise NamespaceError(f"ENOENT {path}")
        grant = self._grants.get(entry["fileid"])
        if grant is None or grant.holder != src \
                or grant.expires_at <= self.sim.now:
            raise NamespaceError(f"no commit grant for {path}")
        if new_version != grant.base_version + 1:
            raise NamespaceError(
                f"commit must advance version by one "
                f"({grant.base_version} -> {new_version})"
            )
        entry["version"] = new_version
        entry["mtime"] = self.sim.now
        self._put(_file_key(path), entry)
        del self._grants[entry["fileid"]]
        yield from self._durable()
        return dict(entry), 128

    def _h_abort_commit(self, req: dict, src: str):
        yield from self._charge_cpu()
        entry = self.db.get(_file_key(req["path"]))
        if entry is not None:
            grant = self._grants.get(entry["fileid"])
            if grant is not None and grant.holder == src:
                del self._grants[entry["fileid"]]
        return True, 32

    def _h_mark_milestone(self, req: dict, src: str):
        """Record a milestone version: it survives consolidation forever
        (the Elephant-inspired extension sketched in Section 3.5)."""
        yield from self._charge_cpu()
        path = req["path"]
        entry = self.db.get(_file_key(path))
        if entry is None:
            raise NamespaceError(f"ENOENT {path}")
        version = req.get("version") or entry["version"]
        if not 0 < version <= entry["version"]:
            raise NamespaceError(
                f"no version {version} of {path} to mark"
            )
        milestones = set(entry.get("milestones") or ())
        milestones.add(version)
        entry["milestones"] = tuple(sorted(milestones))
        self._put(_file_key(path), entry)
        yield from self._durable()
        return dict(entry), 128

    # --------------------------------------------------------- leases
    def _h_acquire_lease(self, req: dict, src: str):
        """Write-lock lease so cooperating processes avoid commit conflicts."""
        yield from self._charge_cpu()
        entry = self.db.get(_file_key(req["path"]))
        if entry is None:
            raise NamespaceError(f"ENOENT {req['path']}")
        fileid = entry["fileid"]
        lease = self._leases.get(fileid)
        if lease is not None and lease.expires_at > self.sim.now \
                and lease.holder != src:
            return {"status": "held", "holder": lease.holder}, 48
        self._leases[fileid] = _Lease(src, self.sim.now + req.get("duration", 30.0))
        return {"status": "ok"}, 48

    def _h_release_lease(self, req: dict, src: str):
        yield from self._charge_cpu()
        entry = self.db.get(_file_key(req["path"]))
        if entry is not None:
            lease = self._leases.get(entry["fileid"])
            if lease is not None and lease.holder == src:
                del self._leases[entry["fileid"]]
        return True, 32

    # ------------------------------------------------------------ recovery
    def crash(self) -> None:
        """Lose volatile state (grants, leases, DB cache)."""
        self.db.crash()
        self._grants.clear()
        self._leases.clear()

    def recover(self) -> int:
        return self.db.recover()
