"""The namespace server (Sections 3.1 and 3.5).

One daemon per volume.  It maps pathnames to file entries — the Sorrento
inode: a 128-bit FileID (= the index segment's SegID), the file's latest
version, and timestamps — and arbitrates version commits.  It deliberately
does **not** track where data segments live; that is the distributed
location scheme's job, which keeps this server small and fast ("a single
namespace server is able to handle 1300 namespace operations per second").

The directory tree lives in the embedded KV store (the paper used
Berkeley DB) with write-ahead logging, group commit, and periodic
checkpoints for recovery.

Sharding extension: the tree can be partitioned across N shard servers
by top-level directory.  :class:`NamespaceShardMap` is the authoritative
prefix -> shard assignment (a consistent-hash ring over shard names with
a monotonically increasing *epoch*); every shard server holds a
reference and answers requests for paths it does not own with an
``EWRONGSHARD`` redirect naming the owner and the current epoch, which
the client-side router uses to repair its stale route cache.  Cross-
shard renames/links run through staged prepare/commit/abort handlers
driven by the generic two-phase coordinator in ``core/twophase.py``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.hashing import HashRing
from repro.core.params import SorrentoParams
from repro.kvstore import KVStore
from repro.network.message import RpcRemoteError, RpcTimeout
from repro.sim import Store

ROOT = "/"


class NamespaceError(Exception):
    """Client-visible namespace failures (ENOENT, EEXIST, conflict...)."""


@dataclass
class FileEntry:
    """The Sorrento 'inode' kept per file (Section 3.1)."""

    path: str
    fileid: int
    version: int = 0          # 0 = created but never committed
    ctime: float = 0.0
    mtime: float = 0.0
    degree: int = 1           # replication degree (per-file, Section 3.6)
    alpha: float = 0.5        # placement favoritism (per-file, Section 3.7)
    mode: str = "linear"      # data organization mode
    versioning: bool = True   # False = application manages consistency
    placement: str = "load"   # "load" | "locality" | "random"
    stripe_count: int = 4     # striped/hybrid segment (group) width
    fixed_size: int = 0       # striped: declared max file size
    milestones: tuple = ()    # versions never consolidated (Elephant-like)

    def to_dict(self) -> dict:
        return dict(self.__dict__)

    @staticmethod
    def from_dict(d: dict) -> "FileEntry":
        return FileEntry(**d)


@dataclass
class _CommitGrant:
    fileid: int
    holder: str
    base_version: int
    expires_at: float


@dataclass
class _Lease:
    holder: str
    expires_at: float


def _dir_key(path: str) -> str:
    return "d:" + path


def _file_key(path: str) -> str:
    return "f:" + path


def _parent(path: str) -> str:
    if path == ROOT:
        return ROOT
    head, _, _ = path.rpartition("/")
    return head or ROOT


def shard_prefix(path: str) -> str:
    """The sharding key: the path's top-level directory component.

    A whole top-level subtree lives on one shard, so parent-existence
    checks and directory listings stay shard-local; only the root
    listing fans out across shards.
    """
    if path == ROOT:
        return ROOT
    return path.strip("/").split("/", 1)[0]


def _prefix_point(prefix: str) -> int:
    """Map a shard prefix onto the 128-bit key space the ring hashes."""
    return int.from_bytes(hashlib.sha1(prefix.encode()).digest()[:16], "big")


class NamespaceShardMap:
    """Authoritative prefix -> shard assignment for one volume.

    A thin wrapper over the incremental :class:`HashRing`: shards are
    named by their primary's hostid, and every membership change bumps
    ``epoch``.  The epoch travels inside ``EWRONGSHARD`` redirects so
    stale client route caches self-invalidate instead of looping.
    """

    def __init__(self, shards, vnodes: int = 16):
        self.ring = HashRing(vnodes)
        self.shards: List[str] = list(shards)
        self.epoch = 1

    def owner_of(self, path: str) -> str:
        return self.ring.home_host(_prefix_point(shard_prefix(path)),
                                   self.shards)

    # Membership changes build a NEW list: the ring's reconcile has an
    # identity fast path, so mutating the list it was last shown would
    # leave the ring stale.
    def add_shard(self, name: str) -> None:
        if name not in self.shards:
            self.shards = self.shards + [name]
            self.epoch += 1

    def remove_shard(self, name: str) -> None:
        if name in self.shards:
            self.shards = [s for s in self.shards if s != name]
            self.epoch += 1


@dataclass
class _StandbyLink:
    """One WAL-shipping target.  ``interval`` None = hot standby
    (every mutation shipped immediately); a float = scheduled bulk
    batches, the WAN mode used by satellite-tier mirrors."""

    hostid: str
    interval: Optional[float] = None
    buffer: List[dict] = field(default_factory=list)
    shipped_seq: int = 0


class NamespaceServer:
    """RPC daemon: directory tree + version arbitration for one volume."""

    SERVICES = (
        "ns_lookup", "ns_create", "ns_unlink", "ns_mkdir", "ns_rmdir",
        "ns_list", "ns_begin_commit", "ns_complete_commit",
        "ns_abort_commit", "ns_acquire_lease", "ns_release_lease",
        "ns_update_entry", "ns_mark_milestone", "ns_rename", "ns_link",
        "ns_prepare", "ns_commit", "ns_abort",
    )

    def __init__(self, node, volume: str, params: Optional[SorrentoParams] = None):
        self.node = node
        self.sim = node.sim
        self.volume = volume
        self.params = params or SorrentoParams()
        self.db = KVStore()
        self.db.put(_dir_key(ROOT), {"ctime": self.sim.now})
        self._grants: Dict[int, _CommitGrant] = {}
        self._leases: Dict[int, _Lease] = {}
        self._staged: Dict[int, dict] = {}    # txid -> staged cross-shard tx
        self._flush_queue = Store(self.sim)
        self.ops_served = 0
        self.standby: Optional[str] = None    # first hot-standby hostid
        self.standbys: List[_StandbyLink] = []
        self.shard_map: Optional[NamespaceShardMap] = None
        self.shard_name: Optional[str] = None
        self._ship_seq = 0
        self.applied_seq = 0                  # standby side: last seq applied
        self.shipped_batches = 0
        self.shipped_bytes = 0
        self.rpc = node.runtime
        self.rpc.configure(policy=self.params.rpc_policy())
        for svc in self.SERVICES:
            self.rpc.register(svc, getattr(self, "_h_" + svc[3:]),
                              replace=True)
        self.rpc.register("nsr_apply", self._h_nsr_apply, replace=True)
        self.rpc.register("nsr_apply_batch", self._h_nsr_apply_batch,
                          replace=True)
        node.spawn(self._flusher_loop(), name="ns-wal-flush")
        node.spawn(self._checkpoint_loop(), name="ns-checkpoint")

    # --------------------------------------------------------- sharding
    def configure_shard(self, shard_map: NamespaceShardMap,
                        shard_name: str) -> None:
        """Make this server one shard of a partitioned namespace.  It
        answers only for paths the map assigns to ``shard_name``;
        anything else gets an ``EWRONGSHARD`` redirect."""
        self.shard_map = shard_map
        self.shard_name = shard_name

    def _check_owner(self, path: str) -> None:
        if self.shard_map is None or path == ROOT:
            return
        owner = self.shard_map.owner_of(path)
        if owner != self.shard_name:
            raise NamespaceError(
                f"EWRONGSHARD {path} owner={owner} "
                f"epoch={self.shard_map.epoch}")

    # ------------------------------------------------- replication (ext.)
    def attach_standby(self, hostid: str,
                       interval: Optional[float] = None) -> None:
        """Ship every mutation to a standby namespace server — the
        replication extension Section 3.1 points at.  Without
        ``interval`` this is the hot-standby mode: each mutation is
        shipped as it commits, and the standby serves lookups/commits if
        the primary dies (volatile grant/lease state is lost; grants
        simply expire).  With ``interval`` mutations are buffered and
        shipped as one bulk ``nsr_apply_batch`` per period — the
        scheduled WAN-replication mode satellite-tier mirrors use."""
        link = _StandbyLink(hostid, interval)
        self.standbys.append(link)
        if interval is None and self.standby is None:
            self.standby = hostid
        if interval is not None:
            self.node.spawn(self._batch_ship_loop(link),
                            name=f"ns-ship-{hostid}")

    def _put(self, key, value) -> None:
        self.db.put(key, value)
        self._ship("put", key, value)

    def _delete(self, key) -> None:
        self.db.delete(key)
        self._ship("del", key, None)

    def _ship(self, op: str, key, value) -> None:
        if not self.standbys:
            return
        self._ship_seq += 1
        rec = {"seq": self._ship_seq, "op": op, "key": key, "value": value}
        size = 96 + (len(key) if isinstance(key, str) else 16)
        for link in self.standbys:
            if link.interval is None:
                link.shipped_seq = rec["seq"]
                self.rpc.send(link.hostid, "nsr_apply", rec, size=size)
            else:
                link.buffer.append(rec)

    def _batch_ship_loop(self, link: _StandbyLink):
        # Scheduled batches are *called*, not fire-and-forgotten: a WAN
        # partition must not silently lose a shipment, so on timeout the
        # batch goes back to the head of the buffer and the next tick
        # retries (the mirror converges once the link heals).
        while True:
            yield self.sim.timeout(link.interval)
            if not link.buffer:
                continue
            batch, link.buffer = link.buffer, []
            size = 96 + sum(
                64 + (len(r["key"]) if isinstance(r["key"], str) else 16)
                for r in batch)
            try:
                yield from self.rpc.call(link.hostid, "nsr_apply_batch",
                                         batch, size=size)
            except (RpcTimeout, RpcRemoteError):
                link.buffer = batch + link.buffer
                continue
            link.shipped_seq = batch[-1]["seq"]
            self.shipped_batches += 1
            self.shipped_bytes += size

    def replication_lag(self) -> Dict[str, int]:
        """Mutations not yet shipped, per standby link."""
        return {link.hostid: self._ship_seq - link.shipped_seq
                for link in self.standbys}

    def _h_nsr_apply(self, rec: dict, src: str) -> None:
        """Standby side: apply one shipped mutation."""
        if rec["op"] == "put":
            value = rec["value"]
            self.db.put(rec["key"],
                        dict(value) if isinstance(value, dict) else value)
        else:
            self.db.delete(rec["key"])
        self.applied_seq = max(self.applied_seq, rec["seq"])

    def _h_nsr_apply_batch(self, batch: List[dict], src: str) -> None:
        """Mirror side: apply one scheduled bulk shipment."""
        for rec in batch:
            self._h_nsr_apply(rec, src)

    # ------------------------------------------------------------------
    # Durability plumbing: mutations wait for the next WAL group flush,
    # reads only pay CPU (the tree is memory-resident, as with BDB cache).
    # ------------------------------------------------------------------
    def _charge_cpu(self):
        self.ops_served += 1
        yield self.node.cpu(self.params.ns_op_cpu)

    def _durable(self):
        """Wait until the current WAL batch hits the disk (group commit)."""
        ev = self.sim.event("wal-flush")
        self._flush_queue.put(ev)
        yield ev

    def _flusher_loop(self):
        while True:
            first = yield self._flush_queue.get()
            waiters = [first]
            while len(self._flush_queue):
                waiters.append((yield self._flush_queue.get()))
            # One WAL write commits the whole batch; journal appends are
            # synchronous by definition and never pass through a cache.
            yield self.node.fs.journal_io(4096 + 512 * len(waiters))
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()

    def _checkpoint_loop(self):
        while True:
            yield self.sim.timeout(self.params.ns_checkpoint_interval)
            nbytes = self.db.checkpoint()
            yield self.node.fs.journal_io(max(4096, nbytes), sequential=True)

    # ------------------------------------------------------- handlers
    def _h_lookup(self, path: str, src: str):
        yield from self._charge_cpu()
        self._check_owner(path)
        entry = self.db.get(_file_key(path))
        if entry is None:
            raise NamespaceError(f"ENOENT {path}")
        return dict(entry), 128

    def _h_create(self, req: dict, src: str):
        """Create a file entry; the client supplies the FileID it minted."""
        yield from self._charge_cpu()
        path = req["path"]
        self._check_owner(path)
        if self.db.get(_file_key(path)) is not None:
            raise NamespaceError(f"EEXIST {path}")
        if self.db.get(_dir_key(_parent(path))) is None:
            raise NamespaceError(f"ENOENT parent of {path}")
        entry = FileEntry(
            path=path,
            fileid=req["fileid"],
            ctime=self.sim.now,
            mtime=self.sim.now,
            degree=req.get("degree", self.params.default_degree),
            alpha=req.get("alpha", self.params.default_alpha),
            mode=req.get("mode", "linear"),
            versioning=req.get("versioning", True),
            placement=req.get("placement", "load"),
            stripe_count=req.get("stripe_count", 4),
            fixed_size=req.get("fixed_size", 0),
        ).to_dict()
        self._put(_file_key(path), entry)
        yield from self._durable()
        return dict(entry), 128

    def _h_update_entry(self, req: dict, src: str):
        """Mutate policy fields (degree/alpha/placement) of an entry."""
        yield from self._charge_cpu()
        path = req["path"]
        self._check_owner(path)
        entry = self.db.get(_file_key(path))
        if entry is None:
            raise NamespaceError(f"ENOENT {path}")
        for k in ("degree", "alpha", "placement"):
            if k in req:
                entry[k] = req[k]
        self._put(_file_key(path), entry)
        yield from self._durable()
        return dict(entry), 128

    def _h_unlink(self, path: str, src: str):
        yield from self._charge_cpu()
        self._check_owner(path)
        entry = self.db.get(_file_key(path))
        if entry is None:
            raise NamespaceError(f"ENOENT {path}")
        self._delete(_file_key(path))
        self._grants.pop(entry["fileid"], None)
        self._leases.pop(entry["fileid"], None)
        yield from self._durable()
        return dict(entry), 128

    def _h_mkdir(self, path: str, src: str):
        yield from self._charge_cpu()
        self._check_owner(path)
        if self.db.get(_dir_key(path)) is not None:
            raise NamespaceError(f"EEXIST {path}")
        if self.db.get(_dir_key(_parent(path))) is None:
            raise NamespaceError(f"ENOENT parent of {path}")
        self._put(_dir_key(path), {"ctime": self.sim.now})
        yield from self._durable()
        return True, 32

    def _h_rmdir(self, path: str, src: str):
        yield from self._charge_cpu()
        if path == ROOT:
            raise NamespaceError("cannot remove /")
        self._check_owner(path)
        if self.db.get(_dir_key(path)) is None:
            raise NamespaceError(f"ENOENT {path}")
        if self._list_children(path):
            raise NamespaceError(f"ENOTEMPTY {path}")
        self._delete(_dir_key(path))
        yield from self._durable()
        return True, 32

    def _h_list(self, path: str, src: str):
        yield from self._charge_cpu()
        self._check_owner(path)
        if self.db.get(_dir_key(path)) is None:
            raise NamespaceError(f"ENOENT {path}")
        names = self._list_children(path)
        if self.shard_map is not None and path == "/":
            # Root listings legitimately span every shard, so they can
            # never redirect — piggyback the shard-map snapshot instead,
            # letting a stale client discover shards it has never been
            # redirected to and re-fan before merging.
            reply = {"names": names, "epoch": self.shard_map.epoch,
                     "shards": list(self.shard_map.shards)}
            return reply, (64 + 16 * len(names)
                           + 16 * len(self.shard_map.shards))
        return names, 64 + 16 * len(names)

    def _list_children(self, path: str) -> List[str]:
        prefix = path if path.endswith("/") else path + "/"
        out = []
        for kind in ("f:", "d:"):
            for key, _ in self.db.prefix_items(kind + prefix):
                rest = key[len(kind) + len(prefix):]
                if rest and "/" not in rest:
                    out.append(rest + ("/" if kind == "d:" else ""))
        return sorted(out)

    # ------------------------------------------------------ rename / link
    def _h_rename(self, req: dict, src: str):
        """Move a file entry within one shard (cross-shard renames go
        through the staged prepare/commit handlers instead)."""
        yield from self._charge_cpu()
        path, dst = req["path"], req["dst"]
        self._check_owner(path)
        self._check_owner(dst)
        entry = self.db.get(_file_key(path))
        if entry is None:
            raise NamespaceError(f"ENOENT {path}")
        if self.db.get(_file_key(dst)) is not None:
            raise NamespaceError(f"EEXIST {dst}")
        if self.db.get(_dir_key(_parent(dst))) is None:
            raise NamespaceError(f"ENOENT parent of {dst}")
        moved = dict(entry, path=dst)
        self._delete(_file_key(path))
        self._put(_file_key(dst), moved)
        yield from self._durable()
        return dict(moved), 128

    def _h_link(self, req: dict, src: str):
        """Alias a file entry under a second path (same FileID, so both
        names resolve to the same index segment and data)."""
        yield from self._charge_cpu()
        path, dst = req["path"], req["dst"]
        self._check_owner(path)
        self._check_owner(dst)
        entry = self.db.get(_file_key(path))
        if entry is None:
            raise NamespaceError(f"ENOENT {path}")
        if self.db.get(_file_key(dst)) is not None:
            raise NamespaceError(f"EEXIST {dst}")
        if self.db.get(_dir_key(_parent(dst))) is None:
            raise NamespaceError(f"ENOENT parent of {dst}")
        alias = dict(entry, path=dst)
        self._put(_file_key(dst), alias)
        yield from self._durable()
        return dict(alias), 128

    # ------------------------------------- cross-shard transactions (2PC)
    # Generic staged-mutation participant driven by two_phase_commit()
    # with services=("ns_prepare", "ns_commit", "ns_abort").  Phase one
    # validates preconditions and stages the ops under the txid; commit
    # applies them through the normal WAL/standby path.
    def _h_prepare(self, req: dict, src: str):
        yield from self._charge_cpu()
        txid = req["txid"]
        keys = {op["key"] for op in req["ops"]}
        for tx in self._staged.values():
            if tx["expires_at"] > self.sim.now \
                    and not keys.isdisjoint(tx["keys"]):
                return False, 32
        for check in req.get("checks", ()):
            value = self.db.get(check["key"])
            if check["must"] == "absent" and value is not None:
                return False, 32
            if check["must"] == "present" and value is None:
                return False, 32
        self._staged[txid] = {
            "ops": [dict(op) for op in req["ops"]],
            "keys": keys,
            "expires_at": self.sim.now + self.params.commit_grant_ttl,
        }
        yield from self._durable()    # the prepare record hits the WAL
        return True, 32

    def _h_commit(self, req: dict, src: str):
        yield from self._charge_cpu()
        tx = self._staged.pop(req["txid"], None)
        if tx is None:
            return False, 32
        for op in tx["ops"]:
            if op["op"] == "put":
                value = op["value"]
                self._put(op["key"],
                          dict(value) if isinstance(value, dict) else value)
            else:
                self._delete(op["key"])
        yield from self._durable()
        return True, 32

    def _h_abort(self, req: dict, src: str):
        yield from self._charge_cpu()
        self._staged.pop(req["txid"], None)
        return True, 32

    # ------------------------------------------------ version arbitration
    def _h_begin_commit(self, req: dict, src: str):
        """Grant the right to commit version base+1 of a file.

        Rejected if the stored version moved past ``base_version`` (another
        writer won: the caller sees a conflict) or if another commit is in
        flight (the caller retries; Figure 6 steps (7)-(9)).
        """
        yield from self._charge_cpu()
        path, base = req["path"], req["base_version"]
        self._check_owner(path)
        entry = self.db.get(_file_key(path))
        if entry is None:
            raise NamespaceError(f"ENOENT {path}")
        fileid = entry["fileid"]
        grant = self._grants.get(fileid)
        if grant is not None and grant.expires_at > self.sim.now \
                and grant.holder != src:
            return {"status": "busy"}, 48
        if entry["version"] != base:
            return {"status": "conflict", "current": entry["version"]}, 48
        lease = self._leases.get(fileid)
        if lease is not None and lease.expires_at > self.sim.now \
                and lease.holder != src:
            return {"status": "lease_held", "holder": lease.holder}, 48
        self._grants[fileid] = _CommitGrant(
            fileid, src, base, self.sim.now + self.params.commit_grant_ttl
        )
        return {"status": "ok"}, 48

    def _h_complete_commit(self, req: dict, src: str):
        yield from self._charge_cpu()
        path, new_version = req["path"], req["new_version"]
        self._check_owner(path)
        entry = self.db.get(_file_key(path))
        if entry is None:
            raise NamespaceError(f"ENOENT {path}")
        grant = self._grants.get(entry["fileid"])
        if grant is None or grant.holder != src \
                or grant.expires_at <= self.sim.now:
            raise NamespaceError(f"no commit grant for {path}")
        if new_version != grant.base_version + 1:
            raise NamespaceError(
                f"commit must advance version by one "
                f"({grant.base_version} -> {new_version})"
            )
        entry["version"] = new_version
        entry["mtime"] = self.sim.now
        self._put(_file_key(path), entry)
        del self._grants[entry["fileid"]]
        yield from self._durable()
        return dict(entry), 128

    def _h_abort_commit(self, req: dict, src: str):
        yield from self._charge_cpu()
        entry = self.db.get(_file_key(req["path"]))
        if entry is not None:
            grant = self._grants.get(entry["fileid"])
            if grant is not None and grant.holder == src:
                del self._grants[entry["fileid"]]
        return True, 32

    def _h_mark_milestone(self, req: dict, src: str):
        """Record a milestone version: it survives consolidation forever
        (the Elephant-inspired extension sketched in Section 3.5)."""
        yield from self._charge_cpu()
        path = req["path"]
        self._check_owner(path)
        entry = self.db.get(_file_key(path))
        if entry is None:
            raise NamespaceError(f"ENOENT {path}")
        version = req.get("version") or entry["version"]
        if not 0 < version <= entry["version"]:
            raise NamespaceError(
                f"no version {version} of {path} to mark"
            )
        milestones = set(entry.get("milestones") or ())
        milestones.add(version)
        entry["milestones"] = tuple(sorted(milestones))
        self._put(_file_key(path), entry)
        yield from self._durable()
        return dict(entry), 128

    # --------------------------------------------------------- leases
    def _h_acquire_lease(self, req: dict, src: str):
        """Write-lock lease so cooperating processes avoid commit conflicts."""
        yield from self._charge_cpu()
        self._check_owner(req["path"])
        entry = self.db.get(_file_key(req["path"]))
        if entry is None:
            raise NamespaceError(f"ENOENT {req['path']}")
        fileid = entry["fileid"]
        lease = self._leases.get(fileid)
        if lease is not None and lease.expires_at > self.sim.now \
                and lease.holder != src:
            return {"status": "held", "holder": lease.holder}, 48
        self._leases[fileid] = _Lease(src, self.sim.now + req.get("duration", 30.0))
        return {"status": "ok"}, 48

    def _h_release_lease(self, req: dict, src: str):
        yield from self._charge_cpu()
        entry = self.db.get(_file_key(req["path"]))
        if entry is not None:
            lease = self._leases.get(entry["fileid"])
            if lease is not None and lease.holder == src:
                del self._leases[entry["fileid"]]
        return True, 32

    # ------------------------------------------------------------ recovery
    def crash(self) -> None:
        """Lose volatile state (grants, leases, staged txns, DB cache)."""
        self.db.crash()
        self._grants.clear()
        self._leases.clear()
        self._staged.clear()

    def recover(self) -> int:
        return self.db.recover()
