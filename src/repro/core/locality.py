"""Locality-driven data placement (Section 3.7.2).

For applications whose processes access disjoint data partitions, Sorrento
co-locates a segment with the node generating most of its traffic: "A
segment will migrate to a remote provider if a significant percentage of
the traffic it receives is from that provider."  The threshold must exceed
50% to avoid instability.  Memory is bounded by keeping "the latest one
thousand accesses for the most recently accessed one thousand segments."
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Optional, Tuple


class AccessHistory:
    """Bounded per-segment access log with LRU eviction across segments."""

    def __init__(self, max_segments: int = 1000, max_accesses: int = 1000):
        self.max_segments = max_segments
        self.max_accesses = max_accesses
        self._hist: "OrderedDict[int, Deque[Tuple[str, int]]]" = OrderedDict()

    def record(self, segid: int, src: str, nbytes: int) -> None:
        dq = self._hist.get(segid)
        if dq is None:
            if len(self._hist) >= self.max_segments:
                self._hist.popitem(last=False)  # evict least recently used
            dq = deque(maxlen=self.max_accesses)
            self._hist[segid] = dq
        else:
            self._hist.move_to_end(segid)
        dq.append((src, nbytes))

    def traffic_by_source(self, segid: int) -> dict:
        dq = self._hist.get(segid)
        if not dq:
            return {}
        out: dict = {}
        for src, nbytes in dq:
            out[src] = out.get(src, 0) + nbytes
        return out

    def samples(self, segid: int) -> int:
        dq = self._hist.get(segid)
        return len(dq) if dq else 0

    def dominant_source(self, segid: int, threshold: float,
                        min_samples: int = 1) -> Optional[str]:
        """The remote host generating > threshold of the traffic, if any."""
        if threshold <= 0.5:
            raise ValueError("locality threshold must be > 0.5 (paper)")
        if self.samples(segid) < min_samples:
            return None
        traffic = self.traffic_by_source(segid)
        total = sum(traffic.values())
        if total <= 0:
            return None
        host, top = max(traffic.items(), key=lambda kv: kv[1])
        if top / total > threshold:
            return host
        return None

    def forget(self, segid: int) -> None:
        self._hist.pop(segid, None)

    def __len__(self) -> int:
        return len(self._hist)
