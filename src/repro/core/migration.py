"""Adaptive data migration (Section 3.7.1).

Every minute each provider asks: am I significantly imbalanced?  The paper
defines *significant imbalance* as being (a) among the highest 10% of all
providers and (b) above the cluster-wide average plus three standard
deviations, for either EWMA I/O-wait load or storage utilization.

A triggered provider migrates **hot** segments (recent last-access time)
when I/O-bound, with α = 0.8 (favor lightly loaded destinations); or
**cold** segments when space-bound, with α = 0.3 (favor empty
destinations).  Only one active migration process per node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.membership import ProviderInfo
from repro.core.params import SorrentoParams
from repro.core.segment import StoredSegment


@dataclass
class MigrationDecision:
    """What one decision round chose to do."""

    reason: str                       # "io" | "space"
    segments: List[StoredSegment]
    alpha: float


def imbalance_trigger(
    self_value: float,
    all_values: Sequence[float],
    top_fraction: float = 0.10,
    sigma_factor: float = 3.0,
) -> bool:
    """The paper's trigger: top-10% AND above mean + 3 sigma.

    The mean/sigma are computed over the *other* providers.  Including
    the candidate's own value makes the test unsatisfiable: a single
    outlier among n peers lands exactly at mean + 3 sigma of the full
    population (never strictly above), so no lone hot node would ever
    migrate.
    """
    n = len(all_values)
    if n < 2:
        return False
    others = list(all_values)
    others.remove(self_value) if self_value in others else None
    if not others:
        return False
    mean = sum(others) / len(others)
    var = sum((v - mean) ** 2 for v in others) / len(others)
    threshold = mean + sigma_factor * math.sqrt(var)
    rank_cutoff = sorted(all_values, reverse=True)[
        max(0, min(n - 1, int(math.ceil(n * top_fraction)) - 1))
    ]
    return self_value >= rank_cutoff and self_value > threshold


def pick_hot_segments(segments: Sequence[StoredSegment], count: int) -> List[StoredSegment]:
    """Most recently accessed first (highest temperature)."""
    return sorted(segments, key=lambda s: -s.last_access)[:count]


def pick_cold_segments(segments: Sequence[StoredSegment], count: int) -> List[StoredSegment]:
    """Least recently accessed first, largest first among ties (free the
    most space per move)."""
    return sorted(segments, key=lambda s: (s.last_access, -s.size))[:count]


def decide_migration(
    hostid: str,
    members: Dict[str, ProviderInfo],
    candidates: Sequence[StoredSegment],
    params: SorrentoParams,
) -> Optional[MigrationDecision]:
    """One decision round for one provider; None = no migration needed."""
    me = members.get(hostid)
    if me is None or len(members) < 2 or not candidates:
        return None
    io_values = [i.io_wait for i in members.values()]
    space_values = [i.utilization for i in members.values()]
    if imbalance_trigger(me.io_wait, io_values,
                         params.migration_top_fraction, params.migration_sigma):
        segs = pick_hot_segments(candidates, params.migrations_per_round)
        return MigrationDecision("io", segs, params.migrate_alpha_io)
    if imbalance_trigger(me.utilization, space_values,
                         params.migration_top_fraction, params.migration_sigma):
        segs = pick_cold_segments(candidates, params.migrations_per_round)
        return MigrationDecision("space", segs, params.migrate_alpha_space)
    return None
