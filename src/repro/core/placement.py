"""Load-aware data placement (Section 3.7.1).

Provider selection is randomized and weight-proportional.  A candidate's
weight combines its *load factor* and *storage factor*:

    f_l = min{10, 1/l - 1}
    f_s = min{10, log2(S / s)}
    w   = f_l^alpha * f_s^(1 - alpha)

with ``l`` the provider's CPU+I/O-wait load, ``S`` its available space,
``s`` the segment size, and ``alpha`` the favoritism knob (0 = all about
space, 1 = all about load).  The home-host optimization multiplies the
home host's weight by 3N for small segments (Section 3.7.2).
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, Optional, Set

from repro.core.membership import ProviderInfo

FACTOR_CAP = 10.0
_MIN_LOAD = 1e-4


def load_factor(load: float) -> float:
    """f_l = min{10, 1/l - 1}, clamped to [0, 10]."""
    load = max(_MIN_LOAD, min(1.0, load))
    return max(0.0, min(FACTOR_CAP, 1.0 / load - 1.0))


def storage_factor(available: int, seg_size: int) -> float:
    """f_s = min{10, log2(S/s)}, 0 when the segment does not fit."""
    if seg_size <= 0:
        raise ValueError("segment size must be positive")
    if available < seg_size:
        return 0.0
    return min(FACTOR_CAP, math.log2(available / seg_size))


def weight(f_l: float, f_s: float, alpha: float) -> float:
    """w = f_l^alpha * f_s^(1-alpha)."""
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    # 0^0 is taken as 1 so alpha=0/1 cleanly ignores the dead factor.
    wl = f_l ** alpha if not (f_l == 0.0 and alpha == 0.0) else 1.0
    ws = f_s ** (1.0 - alpha) if not (f_s == 0.0 and alpha == 1.0) else 1.0
    return wl * ws


def provider_weight(info: ProviderInfo, seg_size: int, alpha: float) -> float:
    return weight(load_factor(info.load), storage_factor(info.available, seg_size),
                  alpha)


def choose_provider(
    rng: random.Random,
    candidates: Dict[str, ProviderInfo],
    seg_size: int,
    alpha: float,
    exclude: Optional[Iterable[str]] = None,
    home_host: Optional[str] = None,
    home_boost: float = 0.0,
    avoid_racks: Optional[Iterable[str]] = None,
) -> Optional[str]:
    """Pick one provider, probability proportional to weight.

    ``exclude`` removes existing replica holders ("to increase data
    survivability ... store replicas of a segment on different
    providers").  ``home_boost`` multiplies the home host's weight
    (use 3N for small segments).  ``avoid_racks`` prefers candidates
    outside the given failure domains (GoogleFS-style rack awareness —
    the extension Section 3.7.2 sketches); it is a preference, not a
    hard constraint: if every fitting candidate shares a rack with an
    existing replica, one of them is still chosen.  Returns None when
    no candidate fits.
    """
    racks: Set[str] = {r for r in (avoid_racks or ()) if r}
    if racks:
        other_rack = {
            h: i for h, i in candidates.items()
            if i.rack not in racks and h not in set(exclude or ())
        }
        pick = choose_provider(rng, other_rack, seg_size, alpha,
                               exclude=exclude, home_host=home_host,
                               home_boost=home_boost)
        if pick is not None:
            return pick
        # Fall through: no off-rack candidate can take it.
    excluded: Set[str] = set(exclude or ())
    hosts, weights = [], []
    for host, info in candidates.items():
        if host in excluded:
            continue
        w = provider_weight(info, seg_size, alpha)
        if host == home_host and home_boost > 0:
            w *= home_boost
        hosts.append(host)
        weights.append(w)
    if not hosts:
        return None
    total = sum(weights)
    if total <= 0.0:
        # Everything overloaded/full by the formula: last resort, uniform
        # among candidates that can physically hold the segment.
        fitting = [h for h in hosts if candidates[h].available >= seg_size]
        return rng.choice(fitting) if fitting else None
    pick = rng.random() * total
    acc = 0.0
    for host, w in zip(hosts, weights):
        acc += w
        if pick <= acc:
            return host
    return hosts[-1]
