"""Provider-side segment storage with versions and copy-on-write.

Implements Section 3.5's mechanics: committed versions are immutable;
a *shadow copy* is a sparse new version whose unwritten regions resolve
to the base version ("or its ancestor versions"); shadows expire unless
committed or renewed; old versions are consolidated so only the last few
survive.

Content model: every write records an extent.  If the writer supplied
actual bytes they are kept (tests verify end-to-end content); otherwise
the extent is *synthetic* — only timing and sizes matter, which is how
the benchmark workloads run without allocating gigabytes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.extent import RangeMap
from repro.storage.filesystem import LocalFS

#: Shadow copies must commit or renew within this window (Section 3.5).
DEFAULT_SHADOW_TTL = 300.0

#: How many committed versions to retain after consolidation ("one or a
#: few latest stable versions"; older ones serve as backups).
KEEP_VERSIONS = 2

#: Marker value for synthetic (size-only) extents.
SYNTHETIC = "<data>"


class SegmentError(Exception):
    """Bad segment operation (missing version, write to committed, ...)."""


@dataclass
class StoredSegment:
    """One version of one segment as held by a provider."""

    segid: int
    version: int
    size: int = 0
    committed: bool = False
    base_version: Optional[int] = None   # COW parent (same store)
    extents: RangeMap = field(default_factory=RangeMap)
    replication_degree: int = 1
    alpha: float = 0.5
    placement: str = "load"              # "load" | "locality" | "random"
    last_access: float = 0.0             # LAT: the temperature measure
    expires_at: Optional[float] = None   # shadows only
    home_hint: str = ""
    meta: Optional[dict] = None          # index segments: layout + attach
    created_by: str = ""                 # client that opened the shadow
    pinned: bool = False                 # milestone: consolidation-exempt

    @property
    def fs_name(self) -> str:
        """The native-FS file name backing this version."""
        return f"{self.segid:032x}.{self.version}"

    def written_bytes(self) -> int:
        """Bytes of extent data recorded in this version alone."""
        return self.extents.covered_bytes()


class SegmentStore:
    """All segment versions on one provider, backed by its local FS.

    ``_segs`` is the source of truth; alongside it the store maintains
    secondary indices so the hot queries — ``versions_of``,
    ``latest_committed``, ``committed_segments``, ``bytes_stored`` —
    never scan every stored version:

    * ``_versions``: segid → sorted version numbers held here.
    * ``_latest``: segid → the newest *committed* version's object.
    * ``_commit_seq``: segid → smallest insertion sequence among its
      committed versions.  ``committed_segments`` orders by this, which
      reproduces the legacy full-scan order (position of the first
      committed version in ``_segs`` insertion order) bit-for-bit — the
      replay goldens depend on that order.
    * ``_bytes``: store-wide extent-byte counter, adjusted by the delta
      of every extent mutation.

    All mutations go through ``_add``/``_remove``/``_note_committed``;
    ``check_index_invariants`` recomputes everything by scan and is
    asserted against the indices in the property tests.
    """

    def __init__(self, sim, fs: LocalFS, shadow_ttl: float = DEFAULT_SHADOW_TTL):
        self.sim = sim
        self.fs = fs
        self.shadow_ttl = shadow_ttl
        self._segs: Dict[Tuple[int, int], StoredSegment] = {}
        self._seq: Dict[Tuple[int, int], int] = {}   # insertion sequence
        self._next_seq = 0
        self._versions: Dict[int, List[int]] = {}
        self._latest: Dict[int, StoredSegment] = {}
        self._commit_seq: Dict[int, int] = {}
        self._bytes = 0

    # -- index maintenance --------------------------------------------
    def _add(self, key: Tuple[int, int], seg: StoredSegment) -> None:
        """Insert a version and index it (the only write path to _segs)."""
        self._segs[key] = seg
        self._seq[key] = self._next_seq
        self._next_seq += 1
        vers = self._versions.setdefault(seg.segid, [])
        i = bisect.bisect_left(vers, seg.version)
        vers.insert(i, seg.version)
        self._bytes += seg.extents.covered_bytes()
        if seg.committed:
            self._note_committed(seg)

    def _note_committed(self, seg: StoredSegment) -> None:
        """Index a committed version (at insert or at commit time)."""
        cur = self._latest.get(seg.segid)
        if cur is None or seg.version > cur.version:
            self._latest[seg.segid] = seg
        sq = self._seq[(seg.segid, seg.version)]
        prev = self._commit_seq.get(seg.segid)
        if prev is None or sq < prev:
            self._commit_seq[seg.segid] = sq

    def _remove(self, key: Tuple[int, int]) -> Optional[StoredSegment]:
        """Drop a version and unindex it (the only removal path)."""
        seg = self._segs.pop(key, None)
        if seg is None:
            return None
        self._seq.pop(key)
        segid, version = key
        vers = self._versions[segid]
        vers.remove(version)
        if not vers:
            del self._versions[segid]
        self._bytes -= seg.extents.covered_bytes()
        if seg.committed:
            # Recompute this segid's committed caches over its own
            # (few) remaining versions.
            best: Optional[StoredSegment] = None
            min_sq: Optional[int] = None
            for v in self._versions.get(segid, ()):
                other = self._segs[(segid, v)]
                if not other.committed:
                    continue
                if best is None or v > best.version:
                    best = other
                osq = self._seq[(segid, v)]
                if min_sq is None or osq < min_sq:
                    min_sq = osq
            if best is None:
                self._latest.pop(segid, None)
                self._commit_seq.pop(segid, None)
            else:
                self._latest[segid] = best
                self._commit_seq[segid] = min_sq
        return seg

    # -- inspection ---------------------------------------------------
    def get(self, segid: int, version: int) -> Optional[StoredSegment]:
        """The stored version, or None."""
        return self._segs.get((segid, version))

    def versions_of(self, segid: int) -> List[int]:
        """All locally held version numbers, ascending."""
        return list(self._versions.get(segid, ()))

    def latest_committed(self, segid: int) -> Optional[StoredSegment]:
        """Newest committed version held here, or None."""
        return self._latest.get(segid)

    def committed_segments(self) -> List[StoredSegment]:
        """Latest committed version of every segment held here."""
        seq = self._commit_seq
        return [self._latest[s] for s in sorted(self._latest,
                                                key=seq.__getitem__)]

    def __len__(self) -> int:
        return len(self._segs)

    def bytes_stored(self) -> int:
        """Total extent bytes across every held version (O(1) counter)."""
        return self._bytes

    def check_index_invariants(self) -> None:
        """Recompute every index by full scan and assert equality.

        Test hook: the equivalence/property tests call this after random
        mutation sequences; production code never does.
        """
        versions: Dict[int, List[int]] = {}
        for (s, v) in self._segs:
            versions.setdefault(s, []).append(v)
        assert self._versions == {s: sorted(vs) for s, vs in versions.items()}
        latest: Dict[int, StoredSegment] = {}
        commit_seq: Dict[int, int] = {}
        for key, seg in self._segs.items():
            s = key[0]
            if not seg.committed:
                continue
            if s not in latest or seg.version > latest[s].version:
                latest[s] = seg
            if s not in commit_seq:  # _segs iterates in insertion order
                commit_seq[s] = self._seq[key]
        assert {s: id(seg) for s, seg in self._latest.items()} \
            == {s: id(seg) for s, seg in latest.items()}
        assert self._commit_seq == commit_seq
        assert self._bytes == sum(seg.extents.covered_bytes()
                                  for seg in self._segs.values())
        assert set(self._seq) == set(self._segs)
        for seg in self._segs.values():
            seg.extents.check_invariants()

    # -- creation ---------------------------------------------------------
    def create(self, segid: int, version: int = 1, *,
               replication_degree: int = 1, alpha: float = 0.5,
               placement: str = "load", committed: bool = False,
               creator: str = ""):
        """Create a brand-new (empty) segment version."""
        key = (segid, version)
        if key in self._segs:
            raise SegmentError(f"segment {segid:#x} v{version} exists")
        seg = StoredSegment(segid=segid, version=version,
                            replication_degree=replication_degree,
                            alpha=alpha, placement=placement,
                            committed=committed, created_by=creator,
                            last_access=self.sim.now)
        if not committed:
            seg.expires_at = self.sim.now + self.shadow_ttl
        # Reserve the key before yielding so concurrent creators see it.
        self._add(key, seg)
        try:
            # Lazy: the inode write is folded into the first data write.
            yield from self.fs.create(seg.fs_name, charge=False)
        except Exception:
            self._remove(key)
            raise
        return seg

    def create_shadow(self, segid: int, base_version: int, creator: str = ""):
        """Shadow-copy the base version: blank segment truncated to its size."""
        base = self._segs.get((segid, base_version))
        if base is None or not base.committed:
            raise SegmentError(
                f"no committed base {segid:#x} v{base_version} to shadow"
            )
        new_version = base_version + 1
        key = (segid, new_version)
        if key in self._segs:
            raise SegmentError(f"shadow {segid:#x} v{new_version} already exists")
        seg = StoredSegment(segid=segid, version=new_version, size=base.size,
                            base_version=base_version,
                            replication_degree=base.replication_degree,
                            alpha=base.alpha, placement=base.placement,
                            last_access=self.sim.now,
                            expires_at=self.sim.now + self.shadow_ttl,
                            home_hint=base.home_hint, created_by=creator,
                            meta=dict(base.meta) if base.meta else None)
        self._add(key, seg)
        try:
            # A shadow is "an index structure kept in memory" until data
            # arrives (Section 3.5): no device I/O at creation.
            yield from self.fs.create(seg.fs_name, charge=False)
            self.fs.set_size(seg.fs_name, base.size)
        except Exception:
            self._remove(key)
            raise
        return seg

    # -- mutation ---------------------------------------------------------
    def write(self, segid: int, version: int, offset: int, length: int,
              data: Optional[bytes] = None, sequential: bool = False):
        """Write a range into an uncommitted shadow (or a brand-new v1)."""
        seg = self._require(segid, version)
        if seg.committed:
            raise SegmentError(
                f"segment {segid:#x} v{version} is committed (immutable)"
            )
        if data is not None and len(data) != length:
            raise SegmentError("data/length mismatch")
        if length > 0:
            self._bytes += seg.extents.set_range(
                offset, offset + length,
                (offset, bytes(data)) if data is not None else SYNTHETIC)
        seg.size = max(seg.size, offset + length)
        seg.last_access = self.sim.now
        yield from self.fs.write(seg.fs_name, offset, length, sequential)
        return seg

    def write_in_place(self, segid: int, version: int, offset: int, length: int,
                       data: Optional[bytes] = None, sequential: bool = False):
        """Versioning-disabled write: mutate a committed segment directly.

        Used when an application opts out of versioning (Section 3.5),
        e.g. for the parallel byte-range sharing primitive; replication
        is the caller's problem (it is disabled in that mode).
        """
        seg = self._require(segid, version)
        if data is not None and len(data) != length:
            raise SegmentError("data/length mismatch")
        if length > 0:
            self._bytes += seg.extents.set_range(
                offset, offset + length,
                (offset, bytes(data)) if data is not None else SYNTHETIC)
        seg.size = max(seg.size, offset + length)
        seg.last_access = self.sim.now
        yield from self.fs.write(seg.fs_name, offset, length, sequential)
        return seg

    def truncate(self, segid: int, version: int, size: int):
        """Resize an uncommitted version (metadata I/O)."""
        seg = self._require(segid, version)
        if seg.committed:
            raise SegmentError("cannot truncate a committed version")
        seg.size = size
        self._bytes -= seg.extents.truncate(size)
        yield from self.fs.truncate(seg.fs_name, size)

    def commit(self, segid: int, version: int):
        """Make a shadow immutable; flushes its in-memory index to disk.

        The flush costs one small I/O only when the shadow carries data
        extents whose COW index must persist; index segments persist
        their metadata through the commit-time meta write instead.
        """
        seg = self._require(segid, version)
        if seg.committed:
            return seg
        seg.committed = True
        seg.expires_at = None
        self._note_committed(seg)
        if len(seg.extents) > 0 and seg.meta is None:
            yield self.fs.meta_io()
        # Commit is the durability edge: write-back data for this version
        # must be on the media before the commit is acknowledged.
        yield from self.fs.sync(seg.fs_name)
        return seg

    def drop(self, segid: int, version: int):
        """Discard a version (aborted shadow, or replaced replica)."""
        seg = self._remove((segid, version))
        if seg is None:
            return
        if self.fs.exists(seg.fs_name):
            yield from self.fs.unlink(seg.fs_name)

    def delete_segment(self, segid: int):
        """Remove every version of a segment.

        All versions live under one directory on the native FS, so the
        family goes in a single positioned metadata I/O.
        """
        any_allocated = False
        for v in self.versions_of(segid):
            seg = self._remove((segid, v))
            f = self.fs.files.pop(seg.fs_name, None)
            if f is not None:
                self.fs.used -= f.allocated
                any_allocated = any_allocated or f.allocated > 0
            self.fs.discard_cache(seg.fs_name)
        if any_allocated:
            yield self.fs.meta_io()

    def discard_lost(self, fs_name: str) -> Optional[Tuple[int, int]]:
        """Drop an *uncommitted* version whose write-back cache pages died
        in a crash (see :meth:`repro.storage.engine.StorageEngine.take_lost`).

        Committed versions are never dropped: every commit/ingest path
        syncs the backing file before acknowledging, so a committed
        version's data was on the media by definition.  Returns the
        ``(segid, version)`` dropped, or ``None``.
        """
        stem, _, ver = fs_name.partition(".")
        try:
            key = (int(stem, 16), int(ver))
        except ValueError:
            return None
        seg = self._segs.get(key)
        if seg is None or seg.committed:
            return None
        self._remove(key)
        f = self.fs.files.pop(fs_name, None)
        if f is not None:
            self.fs.used -= f.allocated
        return key

    def renew_shadow(self, segid: int, version: int) -> None:
        """Reset a shadow's expiration timer (§3.5)."""
        seg = self._require(segid, version)
        if seg.committed:
            raise SegmentError("not a shadow")
        seg.expires_at = self.sim.now + self.shadow_ttl

    def expire_shadows(self) -> List[Tuple[int, int]]:
        """Names of shadows past their TTL (caller drops them)."""
        now = self.sim.now
        return [
            (s, v) for (s, v), seg in self._segs.items()
            if not seg.committed and seg.expires_at is not None
            and seg.expires_at <= now
        ]

    # -- reading ------------------------------------------------------------
    def resolve(self, segid: int, version: int, offset: int,
                length: int) -> List[Tuple[int, int, int]]:
        """Which stored versions serve [offset, offset+length) of ``version``.

        Returns (version, start, end) pieces; unwritten-anywhere regions
        resolve to the oldest version in the chain (holes read as zeros).
        """
        seg = self._require(segid, version)
        if offset + length > seg.size:
            raise SegmentError(
                f"read past end of {segid:#x} v{version} "
                f"({offset}+{length} > {seg.size})"
            )
        pieces: List[Tuple[int, int, int]] = []
        pending = [(offset, offset + length)]
        v: Optional[int] = version
        while pending and v is not None:
            cur = self._segs.get((segid, v))
            if cur is None:
                break
            next_pending: List[Tuple[int, int]] = []
            for lo, hi in pending:
                for s, e, val in cur.extents.slices(lo, hi):
                    if val is None:
                        next_pending.append((s, e))
                    else:
                        pieces.append((v, s, e))
            pending = next_pending
            v = cur.base_version
        for lo, hi in pending:  # true holes: zeros from the oldest version
            pieces.append((version, lo, hi))
        pieces.sort(key=lambda p: p[1])
        return pieces

    def read(self, segid: int, version: int, offset: int, length: int,
             sequential: bool = False):
        """Charge disk time for a read; returns the resolved bytes.

        Returns ``None`` when the whole range is synthetic (size-only
        content) — materializing gigabytes of zeros would defeat the
        point of synthetic extents.  In mixed ranges, synthetic parts
        read back as zero bytes.
        """
        seg = self._require(segid, version)
        pieces = self.resolve(segid, version, offset, length)
        seg.last_access = self.sim.now
        yield from self.fs.read(seg.fs_name, offset, min(length, max(0, seg.size - offset)),
                                sequential)
        has_literal = any(
            isinstance(val, tuple)
            for v, s, e in pieces
            for _cs, _ce, val in self._segs[(segid, v)].extents.slices(s, e)
        )
        if not has_literal:
            return None
        chunks: List[bytes] = []
        for v, s, e in pieces:
            src = self._segs[(segid, v)]
            for cs, ce, val in src.extents.slices(s, e):
                if isinstance(val, tuple):
                    orig_start, payload = val
                    chunks.append(payload[cs - orig_start:ce - orig_start])
                else:
                    chunks.append(b"\x00" * (ce - cs))
        return b"".join(chunks)

    # -- replica ingestion & consolidation -----------------------------
    def ingest(self, segid: int, version: int, size: int, *,
               replication_degree: int = 1, alpha: float = 0.5,
               placement: str = "load", meta: Optional[dict] = None,
               data: Optional[bytes] = None,
               write_bytes: Optional[int] = None):
        """Install a full committed copy (replication / migration arrival)."""
        key = (segid, version)
        if key in self._segs:
            raise SegmentError(f"already hold {segid:#x} v{version}")
        seg = StoredSegment(segid=segid, version=version, size=size,
                            committed=True,
                            replication_degree=replication_degree,
                            alpha=alpha, placement=placement,
                            meta=dict(meta) if meta else None,
                            last_access=self.sim.now)
        if size > 0:
            seg.extents.set_range(0, size,
                                  (0, bytes(data)) if data is not None else SYNTHETIC)
        self._add(key, seg)
        nbytes = size if write_bytes is None else min(write_bytes, size)
        try:
            yield from self.fs.create(seg.fs_name, charge=False)
            if size > 0:
                # Disk charge reflects what crossed the wire (a diff sync
                # rewrites only the changed bytes); space is booked for
                # the whole segment either way.
                if nbytes > 0:
                    yield from self.fs.write(seg.fs_name, 0, nbytes,
                                             sequential=True)
                    # A replica arrives committed — it must survive a
                    # crash, so it cannot linger in the write-back cache.
                    yield from self.fs.sync(seg.fs_name)
                self.fs.set_size(seg.fs_name, size)
                f = self.fs.files[seg.fs_name]
                growth = size - f.allocated
                if growth > 0:
                    f.allocated = size
                    self.fs.used += growth
        except Exception:
            self._remove(key)
            if self.fs.exists(seg.fs_name):
                yield from self.fs.unlink(seg.fs_name)
            raise
        return seg

    def export_diff(self, segid: int, from_version: int, to_version: int):
        """The changed regions of (from, to] with their content.

        Returns a list of ``(start, end, bytes_or_None)`` covering every
        byte that differs between the two versions (None = synthetic), or
        ``None`` when the local chain cannot produce the diff (missing
        intermediate version) and a full transfer is needed.
        """
        changed = RangeMap()
        for v in range(from_version + 1, to_version + 1):
            seg = self._segs.get((segid, v))
            if seg is None:
                return None
            for s, e, _ in seg.extents:
                changed.set_range(s, e, True)
        target = self._segs.get((segid, to_version))
        if target is None:
            return None
        regions: List[Tuple[int, int, Optional[bytes]]] = []
        for s, e, _ in changed:
            s, e = min(s, target.size), min(e, target.size)
            if s >= e:
                continue
            for v2, ps, pe in self.resolve(segid, to_version, s, e - s):
                src = self._segs[(segid, v2)]
                for cs, ce, val in src.extents.slices(ps, pe):
                    if isinstance(val, tuple):
                        orig, payload = val
                        regions.append((cs, ce, payload[cs - orig:ce - orig]))
                    elif val is not None:
                        regions.append((cs, ce, None))
        return regions

    def apply_diff(self, segid: int, new_version: int, size: int,
                   regions, *, replication_degree: int = 1,
                   alpha: float = 0.5, placement: str = "load",
                   meta: Optional[dict] = None):
        """Install a new committed version from a diff against the local
        latest (replica lazy sync, Section 3.6)."""
        key = (segid, new_version)
        if key in self._segs:
            raise SegmentError(f"already hold {segid:#x} v{new_version}")
        old = self.latest_committed(segid)
        seg = StoredSegment(segid=segid, version=new_version, size=size,
                            committed=True,
                            base_version=old.version if old else None,
                            replication_degree=replication_degree,
                            alpha=alpha, placement=placement,
                            meta=dict(meta) if meta else None,
                            last_access=self.sim.now)
        nbytes = 0
        for s, e, data in regions:
            seg.extents.set_range(
                s, e, (s, bytes(data)) if data is not None else SYNTHETIC)
            nbytes += e - s
        self._add(key, seg)
        try:
            yield from self.fs.create(seg.fs_name, charge=False)
            if nbytes > 0:
                yield from self.fs.write(seg.fs_name, 0, nbytes,
                                         sequential=True)
                yield from self.fs.sync(seg.fs_name)  # committed on arrival
            self.fs.set_size(seg.fs_name, size)
        except Exception:
            self._remove(key)
            raise
        return seg

    def diff_bytes(self, segid: int, from_version: int, to_version: int) -> int:
        """Bytes that changed in (from_version, to_version] — the lazy-sync
        transfer size."""
        total = RangeMap()
        for v in range(from_version + 1, to_version + 1):
            seg = self._segs.get((segid, v))
            if seg is None:
                continue
            for s, e, val in seg.extents:
                total.set_range(s, e, True)
        return total.covered_bytes()

    def pin(self, segid: int, version: int) -> None:
        """Mark a committed version as a milestone: consolidation keeps it
        forever ("milestone versions that will never be consolidated")."""
        seg = self._require(segid, version)
        if not seg.committed:
            raise SegmentError("only committed versions can be pinned")
        seg.pinned = True

    def unpin(self, segid: int, version: int) -> None:
        """Remove a milestone pin (no-op if absent)."""
        seg = self._segs.get((segid, version))
        if seg is not None:
            seg.pinned = False

    def consolidate(self, segid: int, keep: int = KEEP_VERSIONS):
        """Merge old committed versions into the newest ``keep`` ones.

        Pinned (milestone) versions are always retained.  Every retained
        version is materialized — its holes filled from the chain below —
        before anything beneath it is dropped, so COW chains never dangle.
        """
        committed = [v for v in self.versions_of(segid)
                     if self._segs[(segid, v)].committed]
        if len(committed) <= keep:
            return
        retained = set(committed[-keep:]) | {
            v for v in committed if self._segs[(segid, v)].pinned
        }
        doomed = [v for v in committed if v not in retained]
        if not doomed:
            return
        for v in sorted(retained):
            yield from self._materialize(segid, v)
        for v in doomed:
            yield from self.drop(segid, v)

    def _materialize(self, segid: int, version: int):
        """Fill a version's holes with content from its ancestors so it
        no longer depends on them."""
        seg = self._segs[(segid, version)]
        if seg.base_version is None:
            return
        for lo, hi in seg.extents.gaps(0, seg.size):
            pieces = self.resolve(segid, version, lo, hi - lo)
            for v, s, e in pieces:
                if v == version:
                    continue  # a true hole: still reads as zeros
                src = self._segs[(segid, v)]
                for cs, ce, val in src.extents.slices(s, e):
                    if isinstance(val, tuple):
                        orig, payload = val
                        self._bytes += seg.extents.set_range(
                            cs, ce, (cs, payload[cs - orig:ce - orig])
                        )
                    elif val is not None:
                        self._bytes += seg.extents.set_range(cs, ce, SYNTHETIC)
            yield from self.fs.write(seg.fs_name, lo, hi - lo)
        seg.base_version = None

    # -- out-of-band state injection (preload & failure harnesses) --------
    def plant(self, seg: StoredSegment) -> StoredSegment:
        """Install a fully-formed version with zero simulated I/O.

        Benchmark preloading and test fixtures only: the caller has
        already built the :class:`StoredSegment` (extents included) and
        does its own FS accounting.  Goes through the indexed insert
        path so every query stays coherent.
        """
        key = (seg.segid, seg.version)
        if key in self._segs:
            raise SegmentError(f"already hold {seg.segid:#x} v{seg.version}")
        self._add(key, seg)
        return seg

    def plant_fresh(self, seg: StoredSegment) -> StoredSegment:
        """:meth:`plant` for a segid this store has never seen.

        Bulk-preload fast path: the version is the first this store
        holds of its segid, so every index update is a straight-line
        insert — no bisect into the version list, no committed-cache
        comparison.  Falls back to :meth:`plant` when the segid turns
        out not to be fresh; the resulting state is identical either
        way (``check_index_invariants`` covers both in the tests).
        """
        segid = seg.segid
        if segid in self._versions:
            return self.plant(seg)
        key = (segid, seg.version)
        self._segs[key] = seg
        sq = self._next_seq
        self._seq[key] = sq
        self._next_seq = sq + 1
        self._versions[segid] = [seg.version]
        self._bytes += seg.extents.covered_bytes()
        if seg.committed:
            self._latest[segid] = seg
            self._commit_seq[segid] = sq
        return seg

    def lose_segment(self, segid: int) -> None:
        """Silently forget every version of one segment (failure
        injection: replica loss behind the system's back, no FS I/O)."""
        for v in self.versions_of(segid):
            self._remove((segid, v))

    def wipe(self) -> None:
        """Forget everything (wiped-disk failure injection).  The caller
        resets the backing FS separately."""
        self._segs.clear()
        self._seq.clear()
        self._versions.clear()
        self._latest.clear()
        self._commit_seq.clear()
        self._bytes = 0

    # -- helpers ----------------------------------------------------------
    def _require(self, segid: int, version: int) -> StoredSegment:
        seg = self._segs.get((segid, version))
        if seg is None:
            raise SegmentError(f"no segment {segid:#x} v{version} here")
        return seg
