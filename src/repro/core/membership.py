"""Membership management and load monitoring (Section 3.3).

All storage providers periodically announce heartbeats on a multicast
channel; every node's membership manager builds the live-provider set as
*soft state* from the same channel.  A provider missing for five
announcement intervals is removed.  Heartbeats piggyback the load and
storage-availability information that the placement policy consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

HEARTBEAT_GROUP = "sorrento-hb"

#: Default announcement interval (seconds).
DEFAULT_INTERVAL = 1.0

#: Missed-interval multiplier before a provider is declared dead.
DEATH_FACTOR = 5

#: Wire size of one heartbeat packet.
HEARTBEAT_BYTES = 96


@dataclass(frozen=True, slots=True)
class ProviderInfo:
    """Soft state about one live storage provider.

    Frozen: the manager replaces whole records on heartbeat instead of
    mutating, which is what lets :meth:`MembershipManager.snapshot` be a
    plain dict copy on the hot placement path."""

    hostid: str
    load: float = 0.0             # combined CPU + I/O-wait load, [0, 1]
    io_wait: float = 0.0          # EWMA I/O wait (migration trigger input)
    available: int = 0            # free bytes
    utilization: float = 0.0      # consumed-space fraction
    rack: str = ""                # failure domain (rack-aware placement)
    last_seen: float = 0.0


class MembershipManager:
    """Runs on every cluster node; providers also announce.

    Scale-mindful internals:

    * Death checks use an *expiry wheel*: hosts are bucketed by the
      heartbeat tick ``int(last_seen / interval)``, and each check pass
      drains only the buckets whose tick can contain an expired host —
      O(expired) per pass instead of scanning every member.
    * ``snapshot()`` and ``live_providers()`` are generation-cached:
      the hot placement path stops copying the full member dict per
      call.  The returned objects are *shared and read-only* (the
      values are frozen dataclasses; callers never mutate the views).
    """

    def __init__(self, node, interval: float = DEFAULT_INTERVAL,
                 announce: bool = False):
        self.node = node
        self.sim = node.sim
        self.interval = interval
        self.members: Dict[str, ProviderInfo] = {}
        self.on_join: List[Callable[[str], None]] = []
        self.on_leave: List[Callable[[str], None]] = []
        self.announce = announce
        # Expiry wheel: tick → set of hosts whose last_seen falls in it.
        self._wheel: Dict[int, set] = {}
        self._tick: Dict[str, int] = {}
        self._min_tick = 0
        # Generation counters: _gen bumps on any member change, _key_gen
        # only when the *set* of hosts changes (join/death).
        self._gen = 0
        self._key_gen = 0
        self._snap: Dict[str, ProviderInfo] = {}
        self._snap_gen = -1
        self._live: List[str] = []
        self._live_gen = -1
        self.rpc = node.runtime
        self.rpc.subscribe(HEARTBEAT_GROUP)
        self.rpc.register("heartbeat", self._on_heartbeat)
        self.start()

    def start(self) -> None:
        """(Re)spawn the manager's loops — also used after a node restart."""
        self.node.spawn(self._check_loop(), name="member-check")
        if self.announce:
            self.node.spawn(self._announce_loop(), name="hb-announce")
            # A provider is immediately a member of its own view.
            self._observe(self._self_info())

    def clear(self) -> None:
        """Forget the whole view (provider restart: the view is soft
        state and rebuilds from heartbeats).  Fires no leave callbacks —
        a restart is not a death verdict on everyone else."""
        self.members.clear()
        self._wheel.clear()
        self._tick.clear()
        self._min_tick = int(self.sim.now / self.interval)
        self._gen += 1
        self._key_gen += 1

    # -- views ------------------------------------------------------------
    def live_providers(self) -> List[str]:
        """Sorted live hostids — cached until the host *set* changes.

        Callers must treat the list as read-only (they do: it feeds ring
        lookups and iteration).  Sharing one object also lets the hash
        ring's identity fast path skip reconciliation entirely."""
        if self._live_gen != self._key_gen:
            self._live = sorted(self.members)
            self._live_gen = self._key_gen
        return self._live

    def info(self, hostid: str) -> Optional[ProviderInfo]:
        return self.members.get(hostid)

    def snapshot(self) -> Dict[str, ProviderInfo]:
        """A stable view of the current membership — cached per
        generation, rebuilt only after a membership mutation.

        The values are immutable (``_observe``/``_on_heartbeat`` always
        install *new* frozen ``ProviderInfo`` objects) and no caller
        mutates the dict, so one shared object serves every placement
        decision between heartbeats."""
        if self._snap_gen != self._gen:
            self._snap = dict(self.members)
            self._snap_gen = self._gen
        return self._snap

    def __contains__(self, hostid: str) -> bool:
        return hostid in self.members

    # -- announcement -------------------------------------------------
    def _self_info(self) -> ProviderInfo:
        return ProviderInfo(
            hostid=self.node.hostid,
            load=self.node.load,
            io_wait=self.node.io_wait,
            available=self.node.storage_available,
            utilization=self.node.storage_utilization,
            rack=getattr(self.node.spec, "rack", ""),
            last_seen=self.sim.now,
        )

    def _announce_loop(self):
        while True:
            info = self._self_info()
            self._observe(info)  # keep self fresh in the local view
            self.rpc.multicast(
                HEARTBEAT_GROUP, "heartbeat", info, size=HEARTBEAT_BYTES
            )
            yield self.sim.timeout(self.interval)

    # -- reception ----------------------------------------------------------
    def _on_heartbeat(self, info: ProviderInfo, src: str) -> None:
        # Build the stamped copy directly: dataclasses.replace() costs a
        # field-introspection round per heartbeat and this path runs
        # providers x interval times per simulated second.
        arrived = ProviderInfo(info.hostid, info.load, info.io_wait,
                               info.available, info.utilization, info.rack,
                               self.sim.now)
        self._observe(arrived)

    def _observe(self, info: ProviderInfo) -> None:
        hostid = info.hostid
        is_new = hostid not in self.members
        self.members[hostid] = info
        self._gen += 1
        # Re-bucket on the expiry wheel.
        tick = int(info.last_seen / self.interval)
        old = self._tick.get(hostid)
        if old != tick:
            if old is not None:
                bucket = self._wheel.get(old)
                if bucket is not None:
                    bucket.discard(hostid)
                    if not bucket:
                        del self._wheel[old]
            self._wheel.setdefault(tick, set()).add(hostid)
            self._tick[hostid] = tick
        if is_new:
            self._key_gen += 1
            for cb in list(self.on_join):
                cb(hostid)

    def _check_loop(self):
        while True:
            yield self.sim.timeout(self.interval)
            deadline = self.sim.now - DEATH_FACTOR * self.interval
            # Only buckets up to the deadline's tick can hold an expired
            # host; the boundary bucket needs the exact float compare
            # (its hosts may sit either side of the deadline).
            limit = int(deadline / self.interval)
            if limit < self._min_tick:
                continue
            dead_set = set()
            for t in range(self._min_tick, limit + 1):
                bucket = self._wheel.get(t)
                if not bucket:
                    self._wheel.pop(t, None)
                    continue
                expired = [h for h in bucket
                           if self.members[h].last_seen < deadline]
                for h in expired:
                    bucket.discard(h)
                    del self._tick[h]
                    dead_set.add(h)
                if not bucket:
                    del self._wheel[t]
            # Advance past fully drained ticks (the boundary bucket may
            # legitimately keep fresh-enough hosts).
            self._min_tick = limit if limit in self._wheel else limit + 1
            if not dead_set:
                continue
            # Deaths fire in member-insertion order — the order the old
            # full scan produced; replay goldens depend on it.
            dead = [h for h in self.members if h in dead_set]
            self._gen += 1
            self._key_gen += 1
            for hostid in dead:
                del self.members[hostid]
                for cb in list(self.on_leave):
                    cb(hostid)
