"""Membership management and load monitoring (Section 3.3).

All storage providers periodically announce heartbeats on a multicast
channel; every node's membership manager builds the live-provider set as
*soft state* from the same channel.  A provider missing for five
announcement intervals is removed.  Heartbeats piggyback the load and
storage-availability information that the placement policy consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

HEARTBEAT_GROUP = "sorrento-hb"

#: Default announcement interval (seconds).
DEFAULT_INTERVAL = 1.0

#: Missed-interval multiplier before a provider is declared dead.
DEATH_FACTOR = 5

#: Wire size of one heartbeat packet.
HEARTBEAT_BYTES = 96


@dataclass(frozen=True, slots=True)
class ProviderInfo:
    """Soft state about one live storage provider.

    Frozen: the manager replaces whole records on heartbeat instead of
    mutating, which is what lets :meth:`MembershipManager.snapshot` be a
    plain dict copy on the hot placement path."""

    hostid: str
    load: float = 0.0             # combined CPU + I/O-wait load, [0, 1]
    io_wait: float = 0.0          # EWMA I/O wait (migration trigger input)
    available: int = 0            # free bytes
    utilization: float = 0.0      # consumed-space fraction
    rack: str = ""                # failure domain (rack-aware placement)
    last_seen: float = 0.0


class MembershipManager:
    """Runs on every cluster node; providers also announce."""

    def __init__(self, node, interval: float = DEFAULT_INTERVAL,
                 announce: bool = False):
        self.node = node
        self.sim = node.sim
        self.interval = interval
        self.members: Dict[str, ProviderInfo] = {}
        self.on_join: List[Callable[[str], None]] = []
        self.on_leave: List[Callable[[str], None]] = []
        self.announce = announce
        self.rpc = node.runtime
        self.rpc.subscribe(HEARTBEAT_GROUP)
        self.rpc.register("heartbeat", self._on_heartbeat)
        self.start()

    def start(self) -> None:
        """(Re)spawn the manager's loops — also used after a node restart."""
        self.node.spawn(self._check_loop(), name="member-check")
        if self.announce:
            self.node.spawn(self._announce_loop(), name="hb-announce")
            # A provider is immediately a member of its own view.
            self._observe(self._self_info())

    # -- views ------------------------------------------------------------
    def live_providers(self) -> List[str]:
        return sorted(self.members)

    def info(self, hostid: str) -> Optional[ProviderInfo]:
        return self.members.get(hostid)

    def snapshot(self) -> Dict[str, ProviderInfo]:
        """A stable copy of the current membership view.

        A shallow dict copy suffices: ``_observe``/``_on_heartbeat``
        always install *new* ``ProviderInfo`` objects, never mutate one
        in place, so the values are immutable from the caller's side.
        This runs on every placement decision — it is hot."""
        return dict(self.members)

    def __contains__(self, hostid: str) -> bool:
        return hostid in self.members

    # -- announcement -------------------------------------------------
    def _self_info(self) -> ProviderInfo:
        return ProviderInfo(
            hostid=self.node.hostid,
            load=self.node.load,
            io_wait=self.node.io_wait,
            available=self.node.storage_available,
            utilization=self.node.storage_utilization,
            rack=getattr(self.node.spec, "rack", ""),
            last_seen=self.sim.now,
        )

    def _announce_loop(self):
        while True:
            info = self._self_info()
            self._observe(info)  # keep self fresh in the local view
            self.rpc.multicast(
                HEARTBEAT_GROUP, "heartbeat", info, size=HEARTBEAT_BYTES
            )
            yield self.sim.timeout(self.interval)

    # -- reception ----------------------------------------------------------
    def _on_heartbeat(self, info: ProviderInfo, src: str) -> None:
        # Build the stamped copy directly: dataclasses.replace() costs a
        # field-introspection round per heartbeat and this path runs
        # providers x interval times per simulated second.
        arrived = ProviderInfo(info.hostid, info.load, info.io_wait,
                               info.available, info.utilization, info.rack,
                               self.sim.now)
        self._observe(arrived)

    def _observe(self, info: ProviderInfo) -> None:
        is_new = info.hostid not in self.members
        self.members[info.hostid] = info
        if is_new:
            for cb in list(self.on_join):
                cb(info.hostid)

    def _check_loop(self):
        while True:
            yield self.sim.timeout(self.interval)
            deadline = self.sim.now - DEATH_FACTOR * self.interval
            dead = [h for h, i in self.members.items() if i.last_seen < deadline]
            for hostid in dead:
                del self.members[hostid]
                for cb in list(self.on_leave):
                    cb(hostid)
