"""Sorrento core: the paper's primary contribution.

Subpackages implement Section 3 of the paper component by component (see
Figure 2 for the dependency graph):

- :mod:`repro.core.ids` — 128-bit location-independent SegIDs/FileIDs
- :mod:`repro.core.extent` — byte-range maps (COW index structures)
- :mod:`repro.core.layout` — Linear / Striped / Hybrid file organization
- :mod:`repro.core.segment` — provider-side segment store with versions
- :mod:`repro.core.membership` — multicast heartbeat membership
- :mod:`repro.core.hashing` — consistent hashing for home hosts
- :mod:`repro.core.location` — soft-state distributed data location
- :mod:`repro.core.twophase` — 2PC for multi-segment commits
- :mod:`repro.core.namespace` — the namespace server
- :mod:`repro.core.placement` — load-aware weighted placement
- :mod:`repro.core.migration` — adaptive data migration
- :mod:`repro.core.locality` — locality-driven placement policy
- :mod:`repro.core.provider` — the storage provider daemon
- :mod:`repro.core.client` — the Sorrento client stub
- :mod:`repro.core.volume` — deployment/bootstrap of a volume
"""

__all__ = [
    "CommitConflict",
    "SorrentoClient",
    "SorrentoConfig",
    "SorrentoDeployment",
]


def __getattr__(name):
    # Lazy exports: keep `import repro.core.layout` cheap while still
    # letting `from repro.core import SorrentoDeployment` work.
    if name in ("SorrentoConfig", "SorrentoDeployment"):
        from repro.core import volume

        return getattr(volume, name)
    if name in ("CommitConflict", "SorrentoClient"):
        from repro.core import client

        return getattr(client, name)
    raise AttributeError(name)
