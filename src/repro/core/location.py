"""Location soft state: the home-host table and the client-side cache.

Section 3.4.1: each provider, as a *home host*, tracks which providers
(*owners*) store each of the segments hashed to it.  Entries are refreshed
periodically (content refreshing), updated eagerly on segment create /
delete / version change, adjusted on membership events, and purged by age
when a ring change moves a SegID's home elsewhere.

Section 3.4's lazy propagation explicitly tolerates stale location
information — versioning catches mismatches — which is what licenses the
client-side :class:`ClientLocationCache`: a TTL'd per-client mirror of
owner/version claims, populated from ``loc_lookup`` responses and the
owner hints piggybacked on data-path replies, and evicted on version
mismatch, RPC timeout, and membership death events.

This module is the pure data structures; the surrounding protocols live
in :mod:`repro.core.provider` and :mod:`repro.core.client`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class OwnerRecord:
    """One owner's claim on a segment."""

    version: int
    degree: int          # desired replication degree for the segment
    size: int
    last_refresh: float


class LocationTable:
    """SegID → {owner → OwnerRecord} with age-based garbage collection.

    Two auxiliary indices keep the table's cluster-event paths
    proportional to the work at hand rather than the table size:

    * ``_by_owner`` (owner → segid set) makes ``drop_owner`` — fired on
      every membership death, on every provider — O(segments that host
      actually owned), not a sweep of every entry homed here.
    * a refresh wheel (records bucketed by ``int(last_refresh /
      _WHEEL_TICK)``) makes ``purge`` O(stale records found), not a
      sweep: refreshed records migrate to young buckets on update, so
      old buckets hold only garbage.
    """

    #: Refresh-wheel bucket width (sim-seconds).  Purge ages are multiples
    #: of the refresh cycle (seconds to minutes), so 1 s buckets keep the
    #: boundary-bucket exact check cheap while bounding bucket counts.
    _WHEEL_TICK = 1.0

    def __init__(self) -> None:
        self._entries: Dict[int, Dict[str, OwnerRecord]] = {}
        self._first_seen: Dict[int, float] = {}
        self._by_owner: Dict[str, set] = {}
        self._ins_seq: Dict[int, int] = {}   # segid → insertion sequence
        self._next_seq = 0
        self._rwheel: Dict[int, set] = {}    # tick → {(segid, owner)}
        self._rtick: Dict[Tuple[int, str], int] = {}
        self._rmin = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, segid: int) -> bool:
        return segid in self._entries

    def segids(self) -> List[int]:
        return list(self._entries)

    # -- index plumbing -----------------------------------------------------
    def _rebucket(self, segid: int, owner: str, when: float) -> None:
        key = (segid, owner)
        tick = int(when / self._WHEEL_TICK)
        old = self._rtick.get(key)
        if old == tick:
            return
        if old is not None:
            bucket = self._rwheel.get(old)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._rwheel[old]
        self._rwheel.setdefault(tick, set()).add(key)
        self._rtick[key] = tick

    def _unindex(self, segid: int, owner: str) -> None:
        segids = self._by_owner.get(owner)
        if segids is not None:
            segids.discard(segid)
            if not segids:
                del self._by_owner[owner]
        key = (segid, owner)
        old = self._rtick.pop(key, None)
        if old is not None:
            bucket = self._rwheel.get(old)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._rwheel[old]

    def _drop_segid(self, segid: int) -> None:
        del self._entries[segid]
        self._first_seen.pop(segid, None)
        self._ins_seq.pop(segid, None)

    # -- updates ------------------------------------------------------------
    def update(self, segid: int, owner: str, version: int, degree: int,
               size: int, now: float) -> None:
        """Insert or refresh one owner's record."""
        owners = self._entries.get(segid)
        if owners is None:
            owners = self._entries[segid] = {}
            self._first_seen[segid] = now
            self._ins_seq[segid] = self._next_seq
            self._next_seq += 1
        rec = owners.get(owner)
        if rec is None:
            self._by_owner.setdefault(owner, set()).add(segid)
        if rec is None or version >= rec.version:
            owners[owner] = OwnerRecord(version, degree, size, now)
        else:
            rec.last_refresh = now  # stale announce still proves liveness
        self._rebucket(segid, owner, now)

    def plant(self, segid: int, owner: str, version: int, degree: int,
              size: int, now: float) -> None:
        """:meth:`update` for a ``(segid, owner)`` pair this map has
        never seen — the bulk-preload fast path.  Skips the staleness
        comparison and the rebucket old-tick probe; the resulting state
        is identical to ``update()`` of a fresh record."""
        owners = self._entries.get(segid)
        if owners is None:
            owners = self._entries[segid] = {}
            self._first_seen[segid] = now
            self._ins_seq[segid] = self._next_seq
            self._next_seq += 1
        owners[owner] = OwnerRecord(version, degree, size, now)
        owned = self._by_owner.get(owner)
        if owned is None:
            owned = self._by_owner[owner] = set()
        owned.add(segid)
        key = (segid, owner)
        tick = int(now / self._WHEEL_TICK)
        bucket = self._rwheel.get(tick)
        if bucket is None:
            bucket = self._rwheel[tick] = set()
        bucket.add(key)
        self._rtick[key] = tick

    def remove(self, segid: int, owner: str) -> None:
        """Drop one owner's record (segment deleted or migrated away)."""
        owners = self._entries.get(segid)
        if owners is None:
            return
        if owners.pop(owner, None) is not None:
            self._unindex(segid, owner)
        if not owners:
            self._drop_segid(segid)

    def drop_owner(self, hostid: str) -> List[int]:
        """Node departure: purge every record owned by ``hostid``.

        Returns the SegIDs affected (the provider re-checks their
        replication degree afterwards), in table-insertion order — the
        order the pre-index full scan produced.
        """
        segids = self._by_owner.pop(hostid, None)
        if not segids:
            return []
        affected = sorted(segids, key=self._ins_seq.__getitem__)
        for segid in affected:
            owners = self._entries[segid]
            del owners[hostid]
            key = (segid, hostid)
            old = self._rtick.pop(key)
            bucket = self._rwheel.get(old)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._rwheel[old]
            if not owners:
                self._drop_segid(segid)
        return affected

    # -- queries ------------------------------------------------------------
    def age(self, segid: int, now: float) -> float:
        """How long this home host has known about the segment.

        Degree repair must wait for the entry to mature: right after a
        home-host reassignment the table sees owners trickle in one
        refresh at a time, and acting on that partial view would spawn
        spurious replicas.
        """
        first = self._first_seen.get(segid)
        return now - first if first is not None else 0.0

    def lookup(self, segid: int) -> List[Tuple[str, int]]:
        """Owners of a segment as (hostid, version), newest first."""
        owners = self._entries.get(segid, {})
        return sorted(
            ((h, rec.version) for h, rec in owners.items()),
            key=lambda p: -p[1],
        )

    def record(self, segid: int, owner: str) -> Optional[OwnerRecord]:
        return self._entries.get(segid, {}).get(owner)

    def latest_version(self, segid: int) -> Optional[int]:
        owners = self._entries.get(segid)
        if not owners:
            return None
        return max(rec.version for rec in owners.values())

    def discrepancies(self, segid: int) -> Tuple[int, List[str], List[str]]:
        """(latest version, up-to-date owners, stale owners) for a segment.

        The home host uses this on every insert/refresh to drive lazy
        update propagation (Section 3.6).
        """
        owners = self._entries.get(segid, {})
        if not owners:
            return 0, [], []
        latest = max(rec.version for rec in owners.values())
        current = [h for h, rec in owners.items() if rec.version == latest]
        stale = [h for h, rec in owners.items() if rec.version < latest]
        return latest, current, stale

    def under_replicated(self, segid: int) -> int:
        """How many replicas short of the desired degree (0 if satisfied)."""
        owners = self._entries.get(segid, {})
        if not owners:
            return 0
        latest, current, _stale = self.discrepancies(segid)
        degree = max(rec.degree for rec in owners.values())
        return max(0, degree - len(owners))

    # -- garbage collection -------------------------------------------------
    def purge(self, now: float, max_age: float) -> int:
        """Remove records not refreshed within ``max_age``; returns count.

        "Since valid entries will be refreshed periodically while garbage
        entries will never be refreshed, the latter can be identified
        based on their ages and eventually be purged."
        """
        cutoff = now - max_age
        limit = int(cutoff / self._WHEEL_TICK)
        if limit < self._rmin:
            return 0
        purged = 0
        for t in range(self._rmin, limit + 1):
            bucket = self._rwheel.get(t)
            if not bucket:
                self._rwheel.pop(t, None)
                continue
            # Only the boundary bucket can mix fresh and stale records;
            # the exact compare keeps float-edge behaviour identical to
            # the old full scan.
            stale = [(s, h) for (s, h) in bucket
                     if self._entries[s][h].last_refresh < cutoff]
            for segid, host in stale:
                owners = self._entries[segid]
                del owners[host]
                self._unindex(segid, host)
                purged += 1
                if not owners:
                    self._drop_segid(segid)
            if not self._rwheel.get(t):
                self._rwheel.pop(t, None)
        self._rmin = limit if limit in self._rwheel else limit + 1
        return purged


class TtlCache:
    """A bounded TTL'd map (insertion-order eviction, deterministic).

    Shared plumbing for the client-side caches: segment locations,
    namespace entries, and index-segment metadata.  Expiry is checked
    lazily on ``get``; capacity overflow drops the oldest insertion.
    """

    __slots__ = ("ttl", "capacity", "_entries")

    def __init__(self, ttl: float, capacity: int) -> None:
        self.ttl = ttl
        self.capacity = capacity
        self._entries: Dict[object, Tuple[float, object]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key, now: float):
        ent = self._entries.get(key)
        if ent is None:
            return None
        if ent[0] <= now:
            del self._entries[key]
            return None
        return ent[1]

    def put(self, key, value, now: float) -> None:
        if self.ttl <= 0 or self.capacity <= 0:
            return
        entries = self._entries
        if key in entries:
            del entries[key]  # re-insertion refreshes eviction order too
        elif len(entries) >= self.capacity:
            del entries[next(iter(entries))]
        entries[key] = (now + self.ttl, value)

    def evict(self, key) -> bool:
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()


class ClientLocationCache:
    """Per-client SegID → [(owner, version)] cache (newest first).

    Learns whole owner lists from ``loc_lookup``/probe responses and
    single (owner, version) claims from the hints piggybacked on
    ``seg_read``/``seg_write``/``seg_commit`` replies.  Staleness is
    harmless by design (versioning catches mismatches); eviction keeps
    the common case fresh.
    """

    __slots__ = ("_cache",)

    def __init__(self, ttl: float, capacity: int) -> None:
        self._cache = TtlCache(ttl, capacity)

    def __len__(self) -> int:
        return len(self._cache)

    def lookup(self, segid: int, now: float) -> Optional[List[Tuple[str, int]]]:
        return self._cache.get(segid, now)

    def store(self, segid: int, owners: List[Tuple[str, int]],
              now: float) -> None:
        if owners:
            self._cache.put(segid, [tuple(o) for o in owners], now)

    def learn(self, segid: int, owner: str, version: int, now: float) -> None:
        """Merge one owner's claim, refreshing the entry's TTL."""
        owners = self._cache.get(segid, now) or []
        merged = [(h, v) for h, v in owners if h != owner]
        old = dict(owners).get(owner)
        merged.append((owner, version if old is None else max(version, old)))
        merged.sort(key=lambda p: (-p[1], p[0]))
        self._cache.put(segid, merged, now)

    def learn_hint(self, segid: int, hint, now: float) -> None:
        """Fold in a piggybacked hint: a list of (owner, version) pairs."""
        for owner, version in hint or ():
            self.learn(segid, owner, version, now)

    def evict(self, segid: int) -> bool:
        return self._cache.evict(segid)

    def evict_owner(self, hostid: str) -> int:
        """Membership death / timeout: drop every claim by ``hostid``."""
        touched = 0
        entries = self._cache._entries
        for segid in list(entries):
            expires, owners = entries[segid]
            if any(h == hostid for h, _v in owners):
                touched += 1
                kept = [(h, v) for h, v in owners if h != hostid]
                if kept:
                    entries[segid] = (expires, kept)
                else:
                    del entries[segid]
        return touched

    def clear(self) -> None:
        self._cache.clear()
