"""128-bit SegID / FileID generation.

The paper (Section 3.2): SegIDs "can be generated locally with little
chance of collision by combining a machine's MAC address, its internal
high-resolution timer, and random seeds."  A file's FileID equals the
SegID of its index segment.
"""

from __future__ import annotations

import hashlib
import random


class IdGenerator:
    """Per-host generator of 128-bit identifiers.

    The layout mirrors the paper's recipe: 48 bits of MAC (derived from
    the host name), 48 bits of timer ticks, 32 bits of random salt.
    """

    def __init__(self, hostid: str, rng: random.Random, clock=None):
        self.hostid = hostid
        self._mac = int.from_bytes(
            hashlib.sha256(hostid.encode()).digest()[:6], "big"
        )
        self._rng = rng
        self._clock = clock or (lambda: 0.0)
        self._last_tick = -1

    def new_id(self) -> int:
        """A fresh 128-bit identifier."""
        tick = int(self._clock() * 1e6) & ((1 << 48) - 1)
        if tick <= self._last_tick:
            tick = (self._last_tick + 1) & ((1 << 48) - 1)
        self._last_tick = tick
        salt = self._rng.getrandbits(32)
        return (self._mac << 80) | (tick << 32) | salt


def fmt_id(ident: int) -> str:
    """Canonical short hex rendering for logs and file names."""
    return f"{ident:032x}"[:16]
