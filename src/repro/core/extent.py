"""Byte-range (extent) maps.

Sorrento's copy-on-write uses "an index structure to maintain the mapping
from region ranges to physical segments where the valid data for the
shadow copy can be located" (Section 3.5).  :class:`RangeMap` is that
structure: a sorted list of disjoint half-open intervals carrying an
arbitrary value (a segment version reference, or literal bytes in
content-verifying tests).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

Span = Tuple[int, int, Any]  # (start, end, value); end exclusive


class RangeMap:
    """Disjoint half-open byte intervals → values.

    ``set_range`` overwrites any overlapped portion of existing intervals;
    adjacent intervals with equal values coalesce.
    """

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._spans: List[Span] = []
        self._covered = 0  # maintained by set_range/clear_range

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    @property
    def end(self) -> int:
        """One past the last mapped byte (0 if empty)."""
        return self._spans[-1][1] if self._spans else 0

    def covered_bytes(self) -> int:
        """Total mapped bytes — O(1), the counter is kept on mutation
        (``SegmentStore.bytes_stored`` sums these per-version counters
        into its own store-wide counter)."""
        return self._covered

    # -- mutation ---------------------------------------------------------
    def set_range(self, start: int, end: int, value: Any) -> int:
        """Map [start, end) to ``value``, splitting/overwriting overlaps.

        Returns the number of *newly covered* bytes (the coverage delta —
        0 when the whole range was already mapped)."""
        if start >= end:
            raise ValueError(f"empty range [{start}, {end})")
        new_spans: List[Span] = []
        overlapped = 0
        for s, e, v in self._spans:
            if e <= start or s >= end:
                new_spans.append((s, e, v))
                continue
            overlapped += min(e, end) - max(s, start)
            if s < start:
                new_spans.append((s, start, v))
            if e > end:
                new_spans.append((end, e, v))
        new_spans.append((start, end, value))
        new_spans.sort(key=lambda sp: sp[0])
        self._spans = _coalesce(new_spans)
        self._starts = [s for s, _, _ in self._spans]
        added = (end - start) - overlapped
        self._covered += added
        return added

    def fill(self, end: int, value: Any) -> int:
        """Map [0, end) to ``value`` in one shot — the bulk-preload fast
        path for a *fresh* map, equivalent to ``set_range(0, end, value)``
        without the rebuild machinery."""
        if end <= 0:
            raise ValueError(f"empty range [0, {end})")
        if self._spans:
            return self.set_range(0, end, value)
        self._starts = [0]
        self._spans = [(0, end, value)]
        self._covered = end
        return end

    def clear_range(self, start: int, end: int) -> int:
        """Unmap [start, end); returns the number of bytes uncovered."""
        if start >= end:
            return 0
        out: List[Span] = []
        removed = 0
        for s, e, v in self._spans:
            if e <= start or s >= end:
                out.append((s, e, v))
                continue
            removed += min(e, end) - max(s, start)
            if s < start:
                out.append((s, start, v))
            if e > end:
                out.append((end, e, v))
        self._spans = out
        self._starts = [s for s, _, _ in self._spans]
        self._covered -= removed
        return removed

    def truncate(self, size: int) -> int:
        """Drop everything at or beyond ``size``; returns bytes uncovered."""
        return self.clear_range(size, max(size, self.end))

    # -- queries ------------------------------------------------------------
    def slices(self, start: int, end: int) -> List[Span]:
        """Cover [start, end) with spans; unmapped gaps have value None."""
        if start >= end:
            return []
        out: List[Span] = []
        pos = start
        i = bisect.bisect_right(self._starts, start) - 1
        if i < 0:
            i = 0
        for s, e, v in self._spans[i:]:
            if e <= pos:
                continue
            if s >= end:
                break
            if s > pos:
                out.append((pos, s, None))
                pos = s
            take_end = min(e, end)
            out.append((pos, take_end, v))
            pos = take_end
            if pos >= end:
                break
        if pos < end:
            out.append((pos, end, None))
        return out

    def value_at(self, offset: int) -> Optional[Any]:
        i = bisect.bisect_right(self._starts, offset) - 1
        if i >= 0:
            s, e, v = self._spans[i]
            if s <= offset < e:
                return v
        return None

    def gaps(self, start: int, end: int) -> List[Tuple[int, int]]:
        """Unmapped sub-ranges of [start, end)."""
        return [(s, e) for s, e, v in self.slices(start, end) if v is None]

    def check_invariants(self) -> None:
        prev_end = None
        prev_val = object()
        for s, e, v in self._spans:
            assert s < e, "empty span"
            if prev_end is not None:
                assert s >= prev_end, "overlapping spans"
                if s == prev_end:
                    assert v != prev_val, "uncoalesced adjacent equal spans"
            prev_end, prev_val = e, v
        assert self._starts == [s for s, _, _ in self._spans]
        assert self._covered == sum(e - s for s, e, _ in self._spans), \
            "covered-bytes counter drifted from the span list"


def _coalesce(spans: List[Span]) -> List[Span]:
    out: List[Span] = []
    for s, e, v in spans:
        if out and out[-1][1] == s and out[-1][2] == v:
            out[-1] = (out[-1][0], e, v)
        else:
            out.append((s, e, v))
    return out
