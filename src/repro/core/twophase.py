"""Two-phase commit (Section 3.5).

"Committing a new version of a file may require the commitment of
multiple segments on distributed providers.  We use the standard
two-phase commitment (2PC) to ensure the atomicity of such an
operation."

The coordinator is the committing client; participants are the storage
providers holding the shadow segments, exposing ``seg_prepare`` /
``seg_commit`` / ``seg_abort`` services.  The coordinator is generic in
its service triple: cross-shard namespace transactions reuse it with
``services=("ns_prepare", "ns_commit", "ns_abort")``.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.network.message import RpcRemoteError, RpcTimeout
from repro.sim import gather


class CommitAborted(Exception):
    """A participant voted no (or died) during phase 1; all were aborted."""


SEG_SERVICES = ("seg_prepare", "seg_commit", "seg_abort")


def two_phase_commit(rpc, participants: List[Tuple[str, Any]],
                     req_size: int = 96, timeout: Optional[float] = None,
                     services: Tuple[str, str, str] = SEG_SERVICES):
    """Generator: run 2PC over ``participants``: (hostid, payload) pairs.

    ``rpc`` is anything with an Endpoint-shaped ``call``/``sim`` — normally
    a :class:`repro.runtime.ServiceRuntime`, whose policy supplies the RPC
    deadline when ``timeout`` is None.  ``services`` names the
    (prepare, commit, abort) triple the participants expose.

    Phase 1 sends the prepare service to every participant in parallel;
    if any vote is negative or unreachable, the abort service goes to
    all and :class:`CommitAborted` is raised.  Phase 2 sends commit.
    """
    sim = rpc.sim
    prepare_svc, commit_svc, abort_svc = services
    kw = {} if timeout is None else {"timeout": timeout}

    def prepare_one(host, payload):
        try:
            vote = yield from rpc.call(host, prepare_svc, payload,
                                       size=req_size, **kw)
            return bool(vote)
        except (RpcTimeout, RpcRemoteError):
            return False

    votes = yield from gather(sim, [
        prepare_one(host, payload) for host, payload in participants
    ])
    if not all(votes):
        yield from _broadcast(rpc, abort_svc, participants, req_size, kw)
        raise CommitAborted(
            f"{votes.count(False)}/{len(votes)} participants refused"
        )
    yield from _broadcast(rpc, commit_svc, participants, req_size, kw)
    return len(participants)


def _broadcast(rpc, service, participants, req_size, kw):
    def send_one(host, payload):
        try:
            yield from rpc.call(host, service, payload, size=req_size, **kw)
        except (RpcTimeout, RpcRemoteError):
            pass  # best effort; shadow TTLs clean up stragglers

    yield from gather(rpc.sim, [
        send_one(host, payload) for host, payload in participants
    ])
