"""The Sorrento client stub (Sections 2.3, 3.5; Figures 4–7).

All methods that touch the network are generators meant to run inside sim
processes (``yield from client.open(...)``).  The stub implements:

* pathname ops against the namespace server;
* the data path: locate segments via home hosts (with the multicast
  backup scheme), read/write segment owners directly;
* version-based consistency: shadow copies on write, two-phase commit
  across shadowed segments, conflict detection at commit;
* attached small files (≤ 60 KB ride inside the index segment);
* the atomic-append recipe of Figure 4;
* a versioning-off mode for applications managing their own consistency.
"""

from __future__ import annotations

import copy
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.hashing import HashRing
from repro.core.ids import IdGenerator
from repro.core.layout import Layout, make_layout
from repro.core.membership import MembershipManager
from repro.core.params import SorrentoParams
from repro.core.placement import choose_provider
from repro.core.provider import LOCATION_GROUP
from repro.core.twophase import CommitAborted, two_phase_commit
from repro.network.message import RpcRemoteError, RpcTimeout
from repro.sim import AnyOf, Event, gather

_nonces = itertools.count(1)


class SorrentoError(Exception):
    """Client-visible failure (no owners, namespace error, ...)."""


class CommitConflict(SorrentoError):
    """Another writer committed first; the shadow copy was dropped."""


def _meta_size(meta: Optional[dict]) -> int:
    if not meta:
        return 64
    layout = meta.get("layout")
    nsegs = len(layout.segments) if layout is not None else 0
    attached = meta.get("attached_len", 0)
    return 64 + 24 * nsegs + attached


@dataclass
class FileHandle:
    """An open file session."""

    path: str
    entry: dict
    mode: str                        # "r" or "w"
    layout: Layout
    attached: Optional[bytes]        # small-file payload (or None)
    attached_len: int = 0
    base_version: int = 0
    index_owner: Optional[str] = None
    shadows: Dict[int, Tuple[str, int]] = field(default_factory=dict)
    #          segid -> (owner host, shadow version)
    new_segments: Dict[int, str] = field(default_factory=dict)
    #          segid -> owner host (created this session, version 1)
    dirty: bool = False
    closed: bool = False
    affinity_owner: Optional[str] = None  # where this file's data grows

    @property
    def fileid(self) -> int:
        """The file's 128-bit FileID (= the index segment's SegID)."""
        return self.entry["fileid"]

    @property
    def size(self) -> int:
        """Current logical file size as this session sees it."""
        if self.layout.segments:
            return self.layout.size
        return self.attached_len

    @property
    def versioning(self) -> bool:
        """False when the app manages its own consistency (§3.5)."""
        return self.entry.get("versioning", True)


class SorrentoClient:
    """Client stub bound to one node and one volume."""

    def __init__(self, node, ns_host, params: Optional[SorrentoParams] = None,
                 rng: Optional[random.Random] = None,
                 membership: Optional[MembershipManager] = None,
                 ns_partitions: Optional[List[str]] = None):
        self.node = node
        self.sim = node.sim
        # ns_host may be a single hostid or a failover list
        # [primary, standby, ...] when namespace replication is on.
        self.ns_hosts: List[str] = ([ns_host] if isinstance(ns_host, str)
                                    else list(ns_host))
        self._ns_active = 0
        # Directory-tree partitioning (the other §3.1 scaling approach):
        # each top-level directory hashes to one namespace server.
        self.ns_partitions = list(ns_partitions) if ns_partitions else None
        self.params = params or SorrentoParams()
        self.rng = rng or random.Random(hash(node.hostid) & 0xFFFFFF)
        self.membership = membership or MembershipManager(
            node, interval=self.params.heartbeat_interval, announce=False
        )
        self.ring = HashRing(self.params.ring_vnodes)
        self.ids = IdGenerator(node.hostid, self.rng, clock=lambda: self.sim.now)
        self._probe_waiters: Dict[int, Event] = {}
        if "loc_probe_hit" not in node.endpoint.handlers:
            node.endpoint.register("loc_probe_hit", self._on_probe_hit)
        self.stats = {"opens": 0, "reads": 0, "writes": 0, "commits": 0,
                      "conflicts": 0, "probe_fallbacks": 0}

    # ------------------------------------------------------------ helpers
    @property
    def ns_host(self) -> str:
        """The namespace server currently targeted (failover-aware)."""
        return self.ns_hosts[self._ns_active]

    def _ns_for(self, payload) -> Optional[str]:
        """Partitioned namespace routing: hash the top-level directory."""
        if self.ns_partitions is None:
            return None
        path = payload if isinstance(payload, str) else payload.get("path", "")
        top = path.split("/", 2)[1] if path.startswith("/") else path
        import hashlib

        idx = int.from_bytes(
            hashlib.sha1(top.encode()).digest()[:4], "big"
        ) % len(self.ns_partitions)
        return self.ns_partitions[idx]

    def _call_ns(self, service: str, payload, size: int = 64, rtts: int = 1):
        partition = self._ns_for(payload)
        if partition is not None:
            try:
                result = yield from self.node.endpoint.call(
                    partition, service, payload, size=size,
                    timeout=self.params.rpc_timeout, rtts=rtts,
                )
                return result
            except RpcRemoteError as exc:
                if "NamespaceError" in exc.error:
                    raise SorrentoError(exc.error) from exc
                raise
        last_exc = None
        for _attempt in range(len(self.ns_hosts)):
            try:
                result = yield from self.node.endpoint.call(
                    self.ns_host, service, payload, size=size,
                    timeout=self.params.rpc_timeout, rtts=rtts,
                )
                return result
            except RpcRemoteError as exc:
                if "NamespaceError" in exc.error:
                    raise SorrentoError(exc.error) from exc
                raise
            except RpcTimeout as exc:
                # Primary unreachable: fail over to the standby replica.
                last_exc = exc
                self._ns_active = (self._ns_active + 1) % len(self.ns_hosts)
        raise SorrentoError(
            f"namespace server unreachable: {last_exc}"
        ) from last_exc

    def _providers(self) -> List[str]:
        return self.membership.live_providers()

    def _home_of(self, segid: int) -> str:
        providers = self._providers()
        if not providers:
            raise SorrentoError("no live storage providers")
        return self.ring.home_host(segid, providers)

    def _on_probe_hit(self, payload: dict, src: str) -> None:
        ev = self._probe_waiters.get(payload["nonce"])
        if ev is not None and not ev.triggered:
            ev.succeed((payload["owner"], payload["version"]))

    def _locate(self, segid: int, read: Optional[dict] = None):
        """Find a segment's owners via its home host (Section 3.4.1);
        fall back to the multicast query (Section 3.4.2) on failure."""
        home = self._home_of(segid)
        try:
            resp = yield from self.node.endpoint.call(
                home, "loc_lookup",
                {"segid": segid, "read": read},
                size=64, timeout=self.params.rpc_timeout,
            )
            if resp["owners"] or resp["inline"]:
                return resp
        except (RpcTimeout, RpcRemoteError):
            pass
        owner = yield from self._probe(segid)
        return {"owners": [owner], "inline": None}

    def _probe(self, segid: int):
        """Backup scheme: ask everybody over multicast."""
        self.stats["probe_fallbacks"] += 1
        nonce = next(_nonces)
        ev = Event(self.sim, name=f"probe:{segid:x}")
        self._probe_waiters[nonce] = ev
        self.node.endpoint.multicast(LOCATION_GROUP, "loc_probe",
                                     {"segid": segid, "nonce": nonce}, size=48)
        deadline = self.sim.timeout(self.params.rpc_timeout)
        yield AnyOf(self.sim, [ev, deadline])
        self._probe_waiters.pop(nonce, None)
        if not ev.triggered or ev._callbacks is not None:
            raise SorrentoError(f"no owner responded for segment {segid:#x}")
        return ev.value

    def _pick_owner(self, owners: List[Tuple[str, int]]) -> Tuple[str, int]:
        """Choose among the newest-version owners at random (load spread)."""
        if not owners:
            raise SorrentoError("segment has no owners")
        newest = owners[0][1]
        best = [o for o in owners if o[1] == newest]
        return self.rng.choice(best)

    def _place_new_segment(self, segid: int, size_hint: int, alpha: float,
                           fh: Optional["FileHandle"] = None,
                           not_on: Optional[set] = None) -> str:
        members = self.membership.snapshot()
        if not_on:
            members = {h: i for h, i in members.items() if h not in not_on}
        if not members:
            raise SorrentoError("no live storage providers")
        size_hint = max(size_hint, 1)
        # Growing *linear* files keep their data together: the next
        # segment goes where the previous one lives (unless it ran out of
        # room); online migration is the corrective force.  Striped and
        # hybrid files spread on purpose — their parallelism comes from
        # distinct owners.
        spreads = fh is not None and fh.entry.get("mode") in ("striped",
                                                              "hybrid")
        if fh is not None and not spreads and fh.affinity_owner is not None \
                and fh.affinity_owner in members:
            prev = members.get(fh.affinity_owner)
            if prev is not None and prev.available >= size_hint \
                    and self.rng.random() < self.params.segment_affinity:
                return fh.affinity_owner
        if fh is not None and fh.entry.get("placement") == "random":
            fitting = [h for h, i in members.items()
                       if i.available >= size_hint]
            if not fitting:
                raise SorrentoError("no provider can hold the segment")
            return self.rng.choice(sorted(fitting))
        home = self._home_of(segid)
        boost = 0.0
        if self.params.home_boost_enabled \
                and size_hint <= self.params.small_segment_bytes:
            boost = 3.0 * len(members)
        exclude = None
        if spreads:
            # Stripe mates on distinct providers, capacity permitting.
            exclude = set(fh.new_segments.values())
            if len(exclude) >= len(members):
                exclude = None
        target = choose_provider(self.rng, members, size_hint, alpha,
                                 exclude=exclude,
                                 home_host=home, home_boost=boost)
        if target is None and exclude:
            target = choose_provider(self.rng, members, size_hint, alpha,
                                     home_host=home, home_boost=boost)
        if target is None:
            raise SorrentoError("no provider can hold the segment")
        return target

    def _create_segment(self, fh: FileHandle, ref, *,
                        committed: bool = False, degree: Optional[int] = None,
                        tries: int = 3) -> str:
        """Create a brand-new segment on a placed provider.

        If the chosen provider is unreachable (it may have died between
        the heartbeat and now), re-place on another node — the client-side
        half of self-organization.
        """
        failed: set = set()
        last: Optional[Exception] = None
        for _ in range(tries):
            owner = self._place_new_segment(ref.segid, ref.max_size or 1,
                                            fh.entry["alpha"], fh=fh,
                                            not_on=failed)
            try:
                yield from self.node.endpoint.call(
                    owner, "seg_create",
                    {"segid": ref.segid, "version": 1,
                     "committed": committed,
                     "degree": (degree if degree is not None
                                else fh.entry["degree"]),
                     "alpha": fh.entry["alpha"],
                     "placement": fh.entry.get("placement", "load")},
                    size=96, timeout=self.params.rpc_timeout,
                )
            except RpcTimeout as exc:
                failed.add(owner)
                last = exc
                continue
            fh.new_segments[ref.segid] = owner
            fh.affinity_owner = owner
            return owner
        raise SorrentoError(
            f"cannot place segment {ref.segid:#x}: {last}"
        ) from last

    # ========================================================== namespace
    def mkdir(self, path: str):
        """Create a directory on the namespace server."""
        result = yield from self._call_ns("ns_mkdir", path)
        return result

    def rmdir(self, path: str):
        """Remove an empty directory."""
        result = yield from self._call_ns("ns_rmdir", path)
        return result

    def listdir(self, path: str):
        if self.ns_partitions is not None and path == "/":
            # The root spans every partition: fan out and merge.
            def list_on(host):
                names = yield from self.node.endpoint.call(
                    host, "ns_list", "/", size=64,
                    timeout=self.params.rpc_timeout)
                return names

            parts = yield from gather(
                self.sim, [list_on(h) for h in self.ns_partitions])
            merged = sorted({name for names in parts for name in names})
            return merged
        result = yield from self._call_ns("ns_list", path)
        return result

    def stat(self, path: str):
        """The file's namespace entry (FileID, version, policy)."""
        result = yield from self._call_ns("ns_lookup", path)
        return result

    def create(self, path: str, *, degree: Optional[int] = None,
               alpha: Optional[float] = None, organization: str = "linear",
               versioning: bool = True, placement: str = "load",
               stripe_count: int = 4, fixed_size: int = 0):
        """Create an empty file entry (no data segments yet).

        ``organization`` is the data layout mode — "linear", "striped",
        or "hybrid" (named so because ``open()``'s own ``mode`` is the
        r/w open mode).
        """
        fileid = self.ids.new_id()
        req = {
            "path": path, "fileid": fileid,
            "degree": degree if degree is not None else self.params.default_degree,
            "alpha": alpha if alpha is not None else self.params.default_alpha,
            "mode": organization, "versioning": versioning,
            "placement": placement,
            "stripe_count": stripe_count, "fixed_size": fixed_size,
        }
        entry = yield from self._call_ns("ns_create", req, size=160)
        return entry

    # ============================================================== open
    def open(self, path: str, mode: str = "r", create: bool = False,
             meta_only: bool = False, version: Optional[int] = None,
             **create_params):
        """Open a file; "w" starts a shadow session on the latest version.

        ``meta_only`` fetches just the layout from the index segment
        (cheaper; used by unlink, which never reads file data).
        ``version`` opens a historical (milestone) version read-only.
        """
        if mode not in ("r", "w"):
            raise ValueError(f"bad mode {mode!r}")
        if version is not None and mode != "r":
            raise SorrentoError("historical versions are read-only")
        self.stats["opens"] += 1
        yield self.node.cpu(self.params.client_op_cpu)
        try:
            entry = yield from self._call_ns(
                "ns_lookup", path, rtts=self.params.open_rtts)
        except SorrentoError:
            if not (create and mode == "w"):
                raise
            try:
                entry = yield from self.create(path, **create_params)
            except SorrentoError as exc:
                if "EEXIST" not in str(exc):
                    raise
                # Lost a create race: the other writer's entry is ours too.
                entry = yield from self._call_ns("ns_lookup", path)
        if version is not None:
            if not 0 < version <= entry["version"]:
                raise SorrentoError(
                    f"{path}: no version {version} (latest is "
                    f"{entry['version']})"
                )
            entry = dict(entry)
            entry["version"] = version
        fh = FileHandle(path=path, entry=entry, mode=mode,
                        layout=make_layout_for(entry),
                        attached=None, base_version=entry["version"])
        if entry["version"] > 0:
            yield from self._load_index(fh, meta_only=meta_only)
        return fh

    def _load_index(self, fh: FileHandle, meta_only: bool = False) -> None:
        """Fetch the index segment (Figure 6 step 2) and decode the layout.

        The namespace's latest version is authoritative; location-table
        announcements are asynchronous, so we insist on reading exactly
        ``entry["version"]`` of the index segment (retrying briefly while
        propagation is in flight) — otherwise a reopen right after a
        commit could resurrect a stale layout and lose that commit.
        """
        want = fh.entry["version"]
        meta = None
        for attempt in range(6):
            resp = yield from self._locate(
                fh.fileid,
                read={"offset": 0, "length": self.params.attach_max + 256,
                      "meta_only": meta_only},
            )
            inline = resp.get("inline")
            if inline is not None and inline["version"] == want:
                meta = inline["meta"]
                fh.index_owner = resp["owners"][0][0] if resp["owners"] else None
                break
            # The table's advertised versions may lag: try every owner for
            # the exact version we need.
            for owner, _v in resp["owners"]:
                try:
                    r = yield from self.node.endpoint.call(
                        owner, "seg_read",
                        {"segid": fh.fileid, "version": want, "offset": 0,
                         "length": 0, "meta_only": meta_only},
                        size=64, timeout=self.params.rpc_timeout,
                    )
                except (RpcTimeout, RpcRemoteError):
                    continue
                meta = r["meta"]
                fh.index_owner = owner
                break
            if meta is not None:
                break
            yield self.sim.timeout(0.02 * (attempt + 1))
        if meta is None:
            raise SorrentoError(
                f"index segment of {fh.path} v{want} unavailable"
            )
        fh.layout = copy.deepcopy(meta["layout"])
        fh.attached_len = meta.get("attached_len", 0)
        fh.attached = meta.get("attached")

    # ============================================================== read
    def read(self, fh: FileHandle, offset: int, length: int,
             sequential: bool = False):
        """Read a byte range; returns bytes, or None for synthetic content."""
        self._check_open(fh)
        self.stats["reads"] += 1
        yield self.node.cpu(self.params.client_op_cpu)
        end = min(offset + length, fh.size)
        if end <= offset:
            return b""
        length = end - offset
        if not fh.layout.segments:  # attached small file
            if fh.attached is None:
                return None
            return fh.attached[offset:offset + length]
        pieces = fh.layout.locate(offset, length)
        reads = [self._read_piece(fh, seg_idx, seg_off, n, sequential)
                 for seg_idx, seg_off, n in pieces]
        chunks = yield from gather(self.sim, reads)
        if any(c is None for c in chunks):
            return None
        return b"".join(chunks)

    def _read_piece(self, fh: FileHandle, seg_idx: int, seg_off: int,
                    length: int, sequential: bool):
        ref = fh.layout.segments[seg_idx]
        shadow = fh.shadows.get(ref.segid)
        if shadow is not None:
            owner, version = shadow
        elif ref.segid in fh.new_segments:
            owner, version = fh.new_segments[ref.segid], 1
        else:
            owner, version = None, ref.version
        if owner is None:
            # Read exactly the version the index names (snapshot isolation);
            # the location table may advertise newer or older replicas.
            resp = yield from self._locate(ref.segid)
            owner, _have = self._pick_owner(resp["owners"])
        try:
            r = yield from self.node.endpoint.call(
                owner, "seg_read",
                {"segid": ref.segid, "version": version, "offset": seg_off,
                 "length": length, "sequential": sequential},
                size=64, timeout=self.params.rpc_timeout,
            )
        except (RpcTimeout, RpcRemoteError):
            # Owner died or lacks the version: fall back to a fresh lookup.
            other = yield from self._probe(ref.segid)
            r = yield from self.node.endpoint.call(
                other[0], "seg_read",
                {"segid": ref.segid, "version": None, "offset": seg_off,
                 "length": length, "sequential": sequential},
                size=64, timeout=self.params.rpc_timeout,
            )
        return r["data"]

    # ============================================================== write
    def write(self, fh: FileHandle, offset: int, length: int,
              data: Optional[bytes] = None, sequential: bool = False):
        """Write a byte range into the session's shadow copies."""
        self._check_open(fh)
        if fh.mode != "w":
            raise SorrentoError("file not open for writing")
        if data is not None and len(data) != length:
            raise SorrentoError("data/length mismatch")
        self.stats["writes"] += 1
        yield self.node.cpu(self.params.client_op_cpu)
        if not fh.versioning:
            yield from self._write_in_place(fh, offset, length, data, sequential)
            return
        fh.dirty = True
        end = offset + length
        # Small files stay attached to the index segment.
        if not fh.layout.segments and end <= self.params.attach_max:
            buf = bytearray(fh.attached if fh.attached is not None
                            else b"\x00" * fh.attached_len)
            if len(buf) < end:
                buf.extend(b"\x00" * (end - len(buf)))
            if data is not None:
                buf[offset:end] = data
            fh.attached = bytes(buf)
            fh.attached_len = len(buf)
            return
        if not fh.layout.segments and fh.attached_len > 0:
            yield from self._spill_attached(fh)
        if end > fh.layout.size:
            created = fh.layout.grow_to(end, self.ids.new_id)
            for ref in created:
                yield from self._create_segment(fh, ref)
        pieces = fh.layout.locate(offset, length)
        # Resolve each distinct segment's writable version first (serially)
        # so the parallel piece writes below never race to create the same
        # shadow or striped segment.
        for seg_idx in dict.fromkeys(p[0] for p in pieces):
            yield from self._writable_version(fh, fh.layout.segments[seg_idx])
        writes, pos = [], 0
        for seg_idx, seg_off, n in pieces:
            chunk = data[pos:pos + n] if data is not None else None
            pos += n
            writes.append(self._write_piece(fh, seg_idx, seg_off, n, chunk,
                                            sequential))
        yield from gather(self.sim, writes)

    def _write_piece(self, fh: FileHandle, seg_idx: int, seg_off: int,
                     length: int, data: Optional[bytes], sequential: bool):
        ref = fh.layout.segments[seg_idx]
        owner, version = yield from self._writable_version(fh, ref)
        try:
            yield from self.node.endpoint.call(
                owner, "seg_write",
                {"segid": ref.segid, "version": version, "offset": seg_off,
                 "length": length, "data": data},
                size=64 + length, timeout=self.params.rpc_timeout,
            )
        except RpcTimeout as exc:
            # The shadow's owner died mid-session: the write (and the
            # whole session) cannot complete; the shadow TTL cleans up.
            fh.shadows.pop(ref.segid, None)
            raise SorrentoError(
                f"owner of segment {ref.segid:#x} died mid-write: {exc}"
            ) from exc

    def _writable_version(self, fh: FileHandle, ref):
        """The (owner, version) this session writes for a data segment,
        creating the shadow copy on first touch (Figure 6 step 4)."""
        if ref.segid in fh.new_segments:
            return fh.new_segments[ref.segid], 1
        shadow = fh.shadows.get(ref.segid)
        if shadow is not None:
            return shadow
        if fh.base_version == 0:
            # The file was never committed, so this segment (pre-allocated
            # in the layout, e.g. striped mode) has no owner yet.
            owner = yield from self._create_segment(fh, ref)
            return owner, 1
        resp = yield from self._locate(ref.segid)
        owners = resp["owners"]
        last_error: Optional[Exception] = None
        saw_race = False
        for owner, _v in owners or []:
            try:
                r = yield from self.node.endpoint.call(
                    owner, "seg_create_shadow",
                    {"segid": ref.segid, "base_version": ref.version},
                    size=64, timeout=self.params.rpc_timeout,
                )
                fh.shadows[ref.segid] = (owner, r["version"])
                fh.affinity_owner = owner
                return owner, r["version"]
            except RpcRemoteError as exc:
                # Another writer already shadows base+1 on this owner: a
                # write-write race surfaced early (it would conflict at
                # commit anyway).
                if "exists" in str(exc).lower():
                    saw_race = True
                last_error = exc
            except RpcTimeout as exc:
                last_error = exc
        if saw_race:
            raise CommitConflict(
                f"segment {ref.segid:#x} already shadowed by another writer"
            )
        raise SorrentoError(
            f"cannot shadow segment {ref.segid:#x}: {last_error}"
        )

    def _spill_attached(self, fh: FileHandle):
        """An attached file outgrew 60 KB: move its bytes into a real
        data segment before continuing."""
        payload, n = fh.attached, fh.attached_len
        fh.attached, fh.attached_len = None, 0
        created = fh.layout.grow_to(n, self.ids.new_id)
        for ref in created:
            yield from self._create_segment(fh, ref)
        for seg_idx, seg_off, ln in fh.layout.locate(0, n):
            ref = fh.layout.segments[seg_idx]
            chunk = payload[seg_off:seg_off + ln] if payload is not None else None
            yield from self._write_piece(fh, seg_idx, seg_off, ln, chunk, True)

    def truncate(self, fh: FileHandle, size: int):
        """Pre-size a versioning-disabled file (grow only).

        Shared-file users size the file up front (as BTIO declares its
        solution size); concurrent *growth* from different clients is
        inherently racy because each client's layout copy would mint
        different segments for the same byte ranges.
        """
        self._check_open(fh)
        if fh.versioning:
            raise SorrentoError(
                "truncate is for versioning-disabled files; versioned "
                "files grow through write+commit")
        if size < fh.layout.size:
            raise SorrentoError("shrinking is not supported")
        lock = self._fh_meta_lock(fh)
        grant = lock.request()
        yield grant
        try:
            yield from self._grow_in_place(fh, size)
        finally:
            lock.release()
        return size

    def _fh_meta_lock(self, fh: FileHandle):
        """Per-handle mutex for layout growth: concurrent writes on one
        handle (list-I/O) must not race to create the same segments."""
        lock = getattr(fh, "_meta_lock", None)
        if lock is None:
            from repro.sim import Resource

            lock = Resource(self.sim, 1)
            fh._meta_lock = lock
        return lock

    def _write_in_place(self, fh: FileHandle, offset: int, length: int,
                        data: Optional[bytes], sequential: bool):
        """Versioning-disabled path: mutate committed segments directly."""
        end = offset + length
        lock = self._fh_meta_lock(fh)
        grant = lock.request()
        yield grant
        try:
            yield from self._grow_in_place(fh, end)
        finally:
            lock.release()
        writes, pos = [], 0
        for seg_idx, seg_off, n in fh.layout.locate(offset, length):
            ref = fh.layout.segments[seg_idx]
            chunk = data[pos:pos + n] if data is not None else None
            pos += n
            writes.append(self._unversioned_piece(fh, ref, seg_off, n, chunk,
                                                  sequential))
        yield from gather(self.sim, writes)

    def _grow_in_place(self, fh: FileHandle, end: int):
        if end > fh.layout.size:
            created = fh.layout.grow_to(end, self.ids.new_id)
            for ref in created:
                yield from self._create_segment(fh, ref, committed=True,
                                                degree=1)
            # Unversioned layout changes publish immediately via the index.
            yield from self._publish_unversioned_index(fh)

    def _unversioned_piece(self, fh: FileHandle, ref, seg_off: int, n: int,
                           data, sequential: bool):
        if ref.segid in fh.new_segments:
            owner = fh.new_segments[ref.segid]
        else:
            resp = yield from self._locate(ref.segid)
            owner, _ = self._pick_owner(resp["owners"])
        yield from self.node.endpoint.call(
            owner, "seg_write",
            {"segid": ref.segid, "version": 1, "offset": seg_off,
             "length": n, "data": data, "in_place": True},
            size=64 + n, timeout=self.params.rpc_timeout,
        )

    def _publish_unversioned_index(self, fh: FileHandle):
        """Keep the unversioned file's index segment current (v1 rewrite)."""
        meta = {"layout": copy.deepcopy(fh.layout),
                "attached": None, "attached_len": 0}
        if fh.index_owner is None:
            owner = self._place_new_segment(fh.fileid, 4096, fh.entry["alpha"])
            yield from self.node.endpoint.call(
                owner, "seg_create",
                {"segid": fh.fileid, "version": 1, "committed": True,
                 "degree": 1, "alpha": fh.entry["alpha"], "meta": meta},
                size=_meta_size(meta), timeout=self.params.rpc_timeout,
            )
            fh.index_owner = owner
            if fh.entry["version"] == 0:
                yield from self._ns_commit_cycle(fh)
        else:
            # Rewrite meta on the existing owner (segment stays v1).
            yield from self.node.endpoint.call(
                fh.index_owner, "seg_write",
                {"segid": fh.fileid, "version": 1, "offset": 0, "length": 0,
                 "in_place": True},
                size=_meta_size(meta), timeout=self.params.rpc_timeout,
            )
            # Owner-side meta update rides on the same call in the real
            # system; emulate by a direct state poke through seg_commit.
            yield from self.node.endpoint.call(
                fh.index_owner, "seg_commit",
                {"segid": fh.fileid, "version": 1, "meta": meta},
                size=_meta_size(meta), timeout=self.params.rpc_timeout,
            )

    def _ns_commit_cycle(self, fh: FileHandle):
        """Advance the namespace version 0 -> 1 for unversioned files."""
        resp = yield from self._call_ns(
            "ns_begin_commit", {"path": fh.path, "base_version": 0}, size=96)
        if resp["status"] != "ok":
            raise CommitConflict(f"{fh.path}: {resp['status']}")
        entry = yield from self._call_ns(
            "ns_complete_commit", {"path": fh.path, "new_version": 1}, size=96)
        fh.entry = entry
        fh.base_version = 1

    # ========================================================= milestones
    def mark_milestone(self, path: str, version: Optional[int] = None):
        """Make a version permanent: it survives consolidation and stays
        readable via ``open(path, version=...)`` forever.

        Records the milestone at the namespace server, then pins the
        index segment and every data-segment version that file version
        references, on every owner.
        """
        entry = yield from self._call_ns(
            "ns_mark_milestone", {"path": path, "version": version},
            size=96)
        want = version or entry["version"]
        fh = yield from self.open(path, "r", meta_only=True, version=want)
        pins = [(fh.fileid, want)] + [
            (ref.segid, ref.version) for ref in fh.layout.segments
        ]

        def pin_everywhere(segid, v):
            try:
                resp = yield from self._locate(segid)
            except SorrentoError:
                return
            for host, _hv in resp["owners"]:
                try:
                    yield from self.node.endpoint.call(
                        host, "seg_pin", {"segid": segid, "version": v},
                        size=48, timeout=self.params.rpc_timeout)
                except (RpcTimeout, RpcRemoteError):
                    continue

        yield from gather(self.sim, [pin_everywhere(s, v) for s, v in pins])
        return entry

    # ============================================================ leases
    def acquire_lease(self, path: str, duration: float = 30.0):
        """Write-lock lease: cooperative writers avoid commit conflicts
        by holding the lease across their session (Section 3.5)."""
        resp = yield from self._call_ns(
            "ns_acquire_lease", {"path": path, "duration": duration},
            size=96)
        return resp["status"] == "ok"

    def release_lease(self, path: str):
        """Release a previously-acquired write-lock lease."""
        result = yield from self._call_ns("ns_release_lease", {"path": path})
        return result

    # ========================================================= commit/close
    def commit(self, fh: FileHandle, close: bool = False,
               synchronous: bool = False):
        """Commit the session's shadow copies as the next file version.

        Figure 6 steps (6)-(9): shadow the index segment, get namespace
        approval, 2PC all shadows, then complete the version commit.
        Raises :class:`CommitConflict` if another writer got there first.
        """
        self._check_open(fh)
        if not fh.versioning:
            return fh.entry["version"]
        if not fh.dirty and fh.base_version > 0:
            return fh.entry["version"]
        self.stats["commits"] += 1
        new_version = fh.base_version + 1
        meta = {"layout": self._committed_layout(fh),
                "attached": fh.attached, "attached_len": fh.attached_len}
        # (6) shadow (or create) the index segment.
        try:
            index_owner, index_version = yield from self._prepare_index(fh)
        except RpcTimeout as exc:
            raise SorrentoError(
                f"{fh.path}: index segment owner unreachable: {exc}"
            ) from exc
        # (7) namespace approval, with bounded retry while "busy".
        for attempt in range(20):
            resp = yield from self._call_ns(
                "ns_begin_commit",
                {"path": fh.path, "base_version": fh.base_version}, size=96)
            status = resp["status"]
            if status == "ok":
                break
            if status in ("conflict", "lease_held"):
                yield from self._abort_shadows(fh, index_owner, index_version)
                self.stats["conflicts"] += 1
                raise CommitConflict(f"{fh.path}: {status}")
            yield self.sim.timeout(0.005 * (attempt + 1))
        else:
            yield from self._abort_shadows(fh, index_owner, index_version)
            raise SorrentoError(f"{fh.path}: commit grant starved")
        # (8) 2PC across every shadowed/new segment + the index shadow.
        participants = [
            (owner, {"segid": segid, "version": version})
            for segid, (owner, version) in fh.shadows.items()
        ] + [
            (owner, {"segid": segid, "version": 1})
            for segid, owner in fh.new_segments.items()
        ] + [
            (index_owner, {"segid": fh.fileid, "version": index_version,
                           "meta": meta}),
        ]
        try:
            yield from two_phase_commit(self.node.endpoint, participants,
                                        timeout=self.params.rpc_timeout)
        except CommitAborted as exc:
            yield from self._call_ns("ns_abort_commit", {"path": fh.path})
            raise SorrentoError(f"{fh.path}: 2PC failed: {exc}") from exc
        # (9) complete the version commit.
        entry = yield from self._call_ns(
            "ns_complete_commit",
            {"path": fh.path, "new_version": new_version}, size=96,
            rtts=self.params.close_rtts if close else 1,
        )
        fh.entry = entry
        fh.base_version = new_version
        fh.index_owner = index_owner
        committed = dict(fh.shadows)
        for segid, (_owner, version) in fh.shadows.items():
            for ref in fh.layout.segments:
                if ref.segid == segid:
                    ref.version = version
        fh.shadows.clear()
        fh.new_segments.clear()
        fh.dirty = False
        if synchronous:
            # Section 3.6's synchronous-commitment option: "detect version
            # discrepancies among [the replicas], and push changes to
            # older replicas before it returns".
            yield from self._sync_replicas(
                list(committed.items()) + [(fh.fileid, (index_owner,
                                                        index_version))])
        return new_version

    def _sync_replicas(self, committed):
        def sync_one(segid, owner, version):
            try:
                resp = yield from self._locate(segid)
            except SorrentoError:
                return
            stale = [h for h, v in resp["owners"]
                     if v < version and h != owner]
            for host in stale:
                try:
                    yield from self.node.endpoint.call(host, "seg_sync", {
                        "segid": segid, "version": version, "from": owner,
                    }, size=48, timeout=self.params.rpc_timeout)
                except (RpcTimeout, RpcRemoteError):
                    continue

        yield from gather(self.sim, [
            sync_one(segid, owner, version)
            for segid, (owner, version) in committed
        ])

    def _committed_layout(self, fh: FileHandle) -> Layout:
        layout = copy.deepcopy(fh.layout)
        for ref in layout.segments:
            shadow = fh.shadows.get(ref.segid)
            if shadow is not None:
                ref.version = shadow[1]
            elif ref.segid in fh.new_segments:
                ref.version = 1
        return layout

    def _prepare_index(self, fh: FileHandle):
        if fh.base_version == 0:
            # First commit: the index segment does not exist yet.
            owner = self._place_new_segment(fh.fileid, 4096, fh.entry["alpha"])
            try:
                yield from self.node.endpoint.call(
                    owner, "seg_create",
                    {"segid": fh.fileid, "version": 1,
                     "degree": fh.entry["degree"], "alpha": fh.entry["alpha"],
                     "placement": fh.entry.get("placement", "load")},
                    size=96, timeout=self.params.rpc_timeout,
                )
            except RpcRemoteError as exc:
                if "exists" in str(exc).lower():
                    raise CommitConflict(
                        f"{fh.path}: concurrent first commit"
                    ) from exc
                raise
            return owner, 1
        owner = fh.index_owner
        if owner is None:
            resp = yield from self._locate(fh.fileid)
            owner, _ = self._pick_owner(resp["owners"])
        try:
            r = yield from self.node.endpoint.call(
                owner, "seg_create_shadow",
                {"segid": fh.fileid, "base_version": fh.base_version},
                size=64, timeout=self.params.rpc_timeout,
            )
        except RpcRemoteError as exc:
            if "exists" in str(exc).lower() or "no committed base" in str(exc):
                # Our base version is stale (someone committed past us) or
                # another writer already shadows it: a commit conflict.
                yield from self._abort_shadows(fh, owner, fh.base_version + 1)
                self.stats["conflicts"] += 1
                raise CommitConflict(f"{fh.path}: index already advanced") from exc
            raise
        return owner, r["version"]

    def _abort_shadows(self, fh: FileHandle, index_owner: str,
                       index_version: int):
        aborts = [
            self.node.endpoint.call(owner, "seg_abort",
                                    {"segid": segid, "version": version},
                                    size=48, timeout=self.params.rpc_timeout)
            for segid, (owner, version) in fh.shadows.items()
        ]
        aborts.append(
            self.node.endpoint.call(index_owner, "seg_abort",
                                    {"segid": fh.fileid,
                                     "version": index_version},
                                    size=48, timeout=self.params.rpc_timeout)
        )

        def safe(gen):
            try:
                yield from gen
            except (RpcTimeout, RpcRemoteError):
                pass

        yield from gather(self.sim, [safe(a) for a in aborts])
        fh.shadows.clear()
        fh.dirty = False

    def close(self, fh: FileHandle, synchronous: bool = False):
        """Close = implicit commit (Section 3.5).

        ``synchronous=True`` selects the paper's synchronous-commitment
        option: replicas are pushed current before close returns.
        """
        if fh.closed:
            return fh.entry["version"]
        try:
            if fh.mode == "w" and fh.versioning \
                    and (fh.dirty or fh.base_version == 0):
                # Closing a brand-new file commits version 1 even when
                # empty: the file must exist durably after create+close.
                version = yield from self.commit(fh, close=True,
                                                 synchronous=synchronous)
            else:
                version = fh.entry["version"]
        finally:
            fh.closed = True
        return version

    def drop(self, fh: FileHandle):
        """Abandon the session's shadow copies without committing."""
        if fh.dirty:
            index_owner = fh.index_owner or self.ns_host
            yield from self._abort_shadows(fh, index_owner, fh.base_version + 1)
        fh.closed = True

    # ============================================================== unlink
    def unlink(self, path: str):
        """Remove a file, eagerly deleting every replica of its segments.

        Replicas of one segment are deleted in turn (this is what makes
        unlink response time grow with the replication degree, Figure 9);
        distinct segments go in parallel.
        """
        yield self.node.cpu(self.params.client_op_cpu)
        fh = yield from self.open(path, "r", meta_only=True)
        entry = yield from self._call_ns("ns_unlink", path)
        segids = [ref.segid for ref in fh.layout.segments] + [entry["fileid"]]
        deletions = [self._delete_everywhere(segid) for segid in segids]
        yield from gather(self.sim, deletions)
        return entry

    def _delete_everywhere(self, segid: int):
        try:
            resp = yield from self._locate(segid)
        except SorrentoError:
            return
        owners = {h for h, _ in resp["owners"]}
        for host in sorted(owners):
            try:
                yield from self.node.endpoint.call(
                    host, "seg_delete", {"segid": segid}, size=48,
                    timeout=self.params.rpc_timeout)
            except (RpcTimeout, RpcRemoteError):
                pass

    # ======================================================= atomic append
    def atomic_append(self, path: str, length: int,
                      data: Optional[bytes] = None, create: bool = True,
                      **create_params):
        """Figure 4: optimistic append, retrying on commit conflicts."""
        while True:
            fh = yield from self.open(path, "w", create=create,
                                      **create_params)
            try:
                yield from self.write(fh, fh.size, length, data=data,
                                      sequential=True)
                version = yield from self.close(fh)
                return version
            except CommitConflict:
                yield from self.drop(fh)
                # Randomized backoff keeps racing appenders from livelock.
                yield self.sim.timeout(self.rng.uniform(0.002, 0.02))
                continue

    # ------------------------------------------------------------- misc
    @staticmethod
    def _check_open(fh: FileHandle) -> None:
        if fh.closed:
            raise SorrentoError(f"{fh.path}: handle is closed")


def make_layout_for(entry: dict) -> Layout:
    """An empty layout matching the entry's declared organization mode."""
    mode = entry.get("mode", "linear")
    if mode == "linear":
        return make_layout("linear", lambda: 0)
    if mode == "striped":
        return make_layout("striped", _EntryIds(entry).new_id,
                           stripe_count=entry.get("stripe_count", 4),
                           fixed_size=entry.get("fixed_size", 0))
    return make_layout("hybrid", lambda: 0,
                       stripe_count=entry.get("stripe_count", 4))


class _EntryIds:
    """Deterministic SegIDs for striped files' up-front segments."""

    def __init__(self, entry: dict):
        self._base = entry["fileid"]
        self._n = 0

    def new_id(self) -> int:
        self._n += 1
        return (self._base + self._n) & ((1 << 128) - 1)
