"""Volume deployment: wire a Sorrento cluster out of a hardware spec.

``SorrentoDeployment`` builds the simulator, fabric, nodes, one namespace
server, one storage provider per exporting node, and client stubs — the
"configured and maintained incrementally" cluster of Section 2.2.  It also
exposes the failure-injection hooks the experiments use (crash a provider,
add a fresh one at runtime).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cluster import ClusterSpec, Node, NodeSpec
from repro.core.client import SorrentoClient
from repro.core.membership import MembershipManager
from repro.core.namespace import NamespaceServer, NamespaceShardMap
from repro.core.params import SorrentoParams
from repro.core.provider import StorageProvider
from repro.network import Fabric
from repro.runtime import MetricsRegistry, Tracer
from repro.sim import RngStreams, Simulator

if TYPE_CHECKING:
    from repro.sim.parallel import PartitionMap


@dataclass
class SorrentoConfig:
    """Top-level deployment configuration."""

    volume: str = "vol0"
    params: SorrentoParams = field(default_factory=SorrentoParams)
    seed: int = 0
    trace: bool = False                 # attach a Tracer to every runtime
    n_providers: Optional[int] = None   # cap exporting nodes used (paper's
    #                                     "each experiment may not use all")
    ns_on: Optional[str] = None         # hostid for the namespace server
    ns_standby_on: Optional[str] = None  # hot-standby namespace replica
    #                                      (the §3.1 availability extension)
    ns_partitions_on: Optional[List[str]] = None  # directory-tree
    #                                      partitioning: one namespace
    #                                      server per listed host, each
    #                                      owning a shard of the top-level
    #                                      directories (§3.1's other
    #                                      scaling approach)
    namespace_shards: int = 1           # >1: shard the namespace over the
    #                                      first N storage hosts (the routed
    #                                      metadata API; default off so the
    #                                      recorded goldens stay identical)
    ns_shards_on: Optional[List[str]] = None  # explicit shard primary hosts
    #                                      (overrides namespace_shards)
    ns_shard_standbys_on: Optional[List[str]] = None  # per-shard standby
    #                                      hosts, parallel to the shard list
    ns_ship_interval: Optional[float] = None  # shard-standby WAL shipping:
    #                                      None = hot (per-mutation),
    #                                      a float = scheduled bulk batches
    partition: Optional["PartitionMap"] = None  # conservative-parallel
    #                                      model cut (repro.sim.parallel):
    #                                      installs the store-and-forward
    #                                      transit on the fabric
    local_partition: Optional[int] = None  # build daemons only for this
    #                                      partition (worker mode); other
    #                                      hosts become dormant shells so
    #                                      construction — and every named
    #                                      RNG stream — stays identical
    #                                      across workers


class SorrentoDeployment:
    """A running Sorrento volume on a simulated cluster."""

    #: :meth:`preload_files` populations at least this large are moved
    #: into the permanent gc generation after the load (they are cluster
    #: state that lives until process exit); smaller loads — unit tests,
    #: fixtures — leave collector state untouched.
    _FREEZE_THRESHOLD = 50_000

    def __init__(self, spec: ClusterSpec, config: Optional[SorrentoConfig] = None):
        self.spec = spec
        self.config = config or SorrentoConfig()
        self.params = self.config.params
        self.sim = Simulator()
        self.rngs = RngStreams(self.config.seed)
        self.fabric = Fabric(self.sim, latency=spec.latency)
        self.nodes: Dict[str, Node] = {}
        self.providers: Dict[str, StorageProvider] = {}
        self.clients: List[SorrentoClient] = []
        # One registry (and optional tracer) for the whole deployment:
        # every node's ServiceRuntime reports into it, so experiments can
        # ask "how many ns_lookup calls did this run make?" in one place.
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.sim) if self.config.trace else None

        pmap = self.config.partition
        local_pid = self.config.local_partition
        self.transit = None
        if pmap is not None:
            from repro.sim.parallel import Transit

            self.transit = Transit(self.sim, self.fabric, pmap,
                                   local_pid=local_pid,
                                   registry=self.metrics)
            self.fabric.transit = self.transit

        def _dormant(name: str) -> bool:
            return (pmap is not None and local_pid is not None
                    and pmap.assignment.get(name, local_pid) != local_pid)

        self.memberships: Dict[str, MembershipManager] = {}
        storage_specs = spec.storage_nodes
        if self.config.n_providers is not None:
            storage_specs = storage_specs[: self.config.n_providers]
        used_storage = {s.name for s in storage_specs}
        for nspec in spec.nodes:
            node = Node(self.sim, self.fabric, nspec,
                        dormant=_dormant(nspec.name))
            node.runtime.configure(registry=self.metrics, tracer=self.tracer)
            self.nodes[nspec.name] = node
            if nspec.name not in used_storage:
                # Non-provider nodes listen to heartbeats so client stubs
                # start with a warm membership view.
                self.memberships[nspec.name] = MembershipManager(
                    node, interval=self.params.heartbeat_interval,
                    announce=False,
                )

        # Sharded namespace: resolve the shard primary list first, since
        # the default ns host becomes the first shard's primary.
        shard_hosts = list(self.config.ns_shards_on or [])
        if not shard_hosts and self.config.namespace_shards > 1:
            shard_hosts = [s.name for s in
                           storage_specs[:self.config.namespace_shards]]

        # Namespace server: by default the first non-exporting node with a
        # disk preference, else the first storage node.
        ns_host = self.config.ns_on
        if ns_host is None:
            ns_host = (shard_hosts[0] if shard_hosts
                       else storage_specs[0].name if storage_specs
                       else spec.nodes[0].name)
        if shard_hosts and ns_host not in shard_hosts:
            raise ValueError(
                "ns_on must name one of the shard hosts when the "
                "namespace is sharded")
        ns_node = self.nodes[ns_host]
        if ns_node.fs is None:
            raise ValueError(
                f"namespace server host {ns_host} needs a local disk"
            )
        self.ns = NamespaceServer(ns_node, self.config.volume, self.params)
        self.ns_host = ns_host
        self.ns_standby: Optional[NamespaceServer] = None
        self.ns_hosts = [ns_host]
        # Directory-tree partitioning: extra namespace servers, each
        # owning the top-level directories that hash to it.
        self.ns_partition_servers: Dict[str, NamespaceServer] = {}
        self.ns_partition_hosts: Optional[List[str]] = None
        if self.config.ns_partitions_on:
            if self.config.ns_standby_on:
                raise ValueError(
                    "namespace partitioning and standby replication are "
                    "separate deployments; pick one"
                )
            self.ns_partition_hosts = list(self.config.ns_partitions_on)
            for host in self.ns_partition_hosts:
                if host == ns_host:
                    self.ns_partition_servers[host] = self.ns
                    continue
                pnode = self.nodes[host]
                if pnode.fs is None:
                    raise ValueError(
                        f"namespace partition host {host} needs a disk")
                self.ns_partition_servers[host] = NamespaceServer(
                    pnode, self.config.volume, self.params)
        if self.config.ns_standby_on is not None:
            standby_node = self.nodes[self.config.ns_standby_on]
            if standby_node.fs is None:
                raise ValueError("namespace standby host needs a local disk")
            self.ns_standby = NamespaceServer(
                standby_node, self.config.volume, self.params)
            self.ns.attach_standby(self.config.ns_standby_on)
            self.ns_hosts.append(self.config.ns_standby_on)

        # Sharded namespace: one server per shard primary (plus optional
        # per-shard standbys), all sharing one authoritative shard map.
        self.ns_shard_map: Optional[NamespaceShardMap] = None
        self.ns_shard_servers: Dict[str, NamespaceServer] = {}
        self.ns_shard_standby_servers: Dict[str, NamespaceServer] = {}
        self.ns_shards: Optional[Dict[str, List[str]]] = None
        self.ns_mirrors: Dict[str, NamespaceServer] = {}
        if shard_hosts:
            if self.ns_partition_hosts or self.ns_standby is not None:
                raise ValueError(
                    "namespace sharding replaces the legacy partitioning/"
                    "standby deployments; pick one"
                )
            self.ns_shard_map = NamespaceShardMap(
                shard_hosts, vnodes=self.params.ns_shard_vnodes)
            standbys = list(self.config.ns_shard_standbys_on or [])
            self.ns_shards = {}
            for i, host in enumerate(shard_hosts):
                if host == ns_host:
                    server = self.ns
                else:
                    snode = self.nodes[host]
                    if snode.fs is None:
                        raise ValueError(
                            f"namespace shard host {host} needs a disk")
                    server = NamespaceServer(
                        snode, self.config.volume, self.params)
                server.configure_shard(self.ns_shard_map, host)
                self.ns_shard_servers[host] = server
                self.ns_shards[host] = [host]
                if i < len(standbys):
                    sb_host = standbys[i]
                    sb_node = self.nodes[sb_host]
                    if sb_node.fs is None:
                        raise ValueError(
                            f"namespace shard standby {sb_host} needs a disk")
                    sb = NamespaceServer(
                        sb_node, self.config.volume, self.params)
                    sb.configure_shard(self.ns_shard_map, host)
                    server.attach_standby(
                        sb_host, interval=self.config.ns_ship_interval)
                    self.ns_shard_standby_servers[host] = sb
                    self.ns_shards[host].append(sb_host)

        # All exporting hosts, dormant or not: segment homes and preload
        # placement are functions of the *full* member list, which must be
        # identical in every partition worker.
        self.provider_names: List[str] = [s.name for s in storage_specs]
        for nspec in storage_specs:
            name = nspec.name
            node = self.nodes[name]
            if node.dormant:
                # Another partition's provider: the shell node is enough
                # (its daemons, store, and location table live — and use
                # memory — only in the worker that owns the partition).
                continue
            self.providers[name] = StorageProvider(
                node, self.config.volume, self.params,
                rng=self.rngs.py(f"provider:{name}"),
            )
            self.memberships[name] = self.providers[name].membership

    # ------------------------------------------------------------ clients
    def client_on(self, hostid: str) -> SorrentoClient:
        """A client stub running on the given node."""
        node = self.nodes[hostid]
        client = SorrentoClient(
            node, self.ns_hosts, self.params,
            rng=self.rngs.py(f"client:{hostid}:{len(self.clients)}"),
            membership=self.memberships.get(hostid),
            ns_partitions=self.ns_partition_hosts,
            ns_shards=self.ns_shards,
            ns_shard_epoch=(self.ns_shard_map.epoch
                            if self.ns_shard_map is not None else 1),
        )
        if hostid in self.ns_mirrors:
            # Geo-aware reads: a client co-located with a namespace
            # mirror (a WAN satellite tier) serves read-only metadata
            # from it instead of crossing the WAN.
            client.router.mirror = hostid
        self.clients.append(client)
        return client

    def clients_on_compute(self, n: int) -> List[SorrentoClient]:
        """``n`` clients spread round-robin over non-exporting nodes."""
        # Classify by the full exporting-host list, not the constructed
        # providers: in a partition worker some providers are dormant
        # shells, but client placement must match the serial build.
        storage = set(self.provider_names)
        compute = [s.name for s in self.spec.nodes
                   if s.name not in storage]
        if not compute:
            compute = list(self.provider_names)
        return [self.client_on(compute[i % len(compute)]) for i in range(n)]

    # ------------------------------------------------------ orchestration
    def warm_up(self, seconds: float = 8.0) -> None:
        """Let heartbeats populate every membership view."""
        self.sim.run(until=self.sim.now + seconds)

    def run(self, gen, until: Optional[float] = None):
        """Drive one client/workload process to completion."""
        return self.sim.run_process(self.sim.process(gen), until=until)

    # ------------------------------------------------ failure injection
    def crash_provider(self, hostid: str, wipe: bool = False) -> None:
        """Fail a provider node (disk contents survive)."""
        self.nodes[hostid].crash(wipe=wipe)

    def restart_provider(self, hostid: str) -> None:
        """Bring a crashed provider back (location table rebuilt)."""
        self.providers[hostid].restart()

    # ------------------------------------------------- namespace resharding
    def add_namespace_shard(self, hostid: str) -> NamespaceServer:
        """Split: add a shard at runtime.  The shard map's epoch
        advances, affected prefixes' entries migrate between shard DBs
        (state surgery, not simulated I/O), and clients with stale
        routes repair themselves through ``EWRONGSHARD`` redirects."""
        if self.ns_shard_map is None:
            raise ValueError("namespace sharding is not enabled")
        server = self.ns_shard_servers.get(hostid)
        if server is None:
            node = self.nodes[hostid]
            if node.fs is None:
                raise ValueError(
                    f"namespace shard host {hostid} needs a disk")
            server = NamespaceServer(node, self.config.volume, self.params)
            server.configure_shard(self.ns_shard_map, hostid)
            self.ns_shard_servers[hostid] = server
            self.ns_shards[hostid] = [hostid]
        self.ns_shard_map.add_shard(hostid)
        self._migrate_shard_entries()
        return server

    def remove_namespace_shard(self, hostid: str) -> None:
        """Merge: drain a shard out of the map.  Its server stays up to
        redirect stragglers; its entries move to their new owners."""
        if self.ns_shard_map is None:
            raise ValueError("namespace sharding is not enabled")
        self.ns_shard_map.remove_shard(hostid)
        self._migrate_shard_entries()

    def _migrate_shard_entries(self) -> None:
        moves = []
        for host, server in self.ns_shard_servers.items():
            for key, value in list(server.db.items()):
                path = key[2:]
                if path == "/":
                    continue  # the root dir lives on every shard
                owner = self.ns_shard_map.owner_of(path)
                if owner != host:
                    moves.append((server, owner, key, value))
        for server, owner, key, value in moves:
            server.db.delete(key)
            self.ns_shard_servers[owner].db.put(key, value)

    def add_namespace_mirror(self, hostid: str,
                             interval: float) -> NamespaceServer:
        """A full-tree namespace mirror fed by scheduled bulk WAL
        batches from every shard (or the single primary) — the
        satellite-tier metadata replica of the tiered topology.  The
        mirror is not a shard: it answers for any path, serving the
        (bounded-staleness) view the last batch shipped."""
        node = self.nodes[hostid]
        if node.fs is None:
            raise ValueError(f"namespace mirror host {hostid} needs a disk")
        mirror = NamespaceServer(node, self.config.volume, self.params)
        sources = (list(self.ns_shard_servers.values())
                   if self.ns_shard_servers else [self.ns])
        for server in sources:
            server.attach_standby(hostid, interval=interval)
        self.ns_mirrors[hostid] = mirror
        return mirror

    def add_provider(self, nspec: NodeSpec) -> StorageProvider:
        """Attach a brand-new storage node at runtime (Section 2.2)."""
        node = Node(self.sim, self.fabric, nspec)
        node.runtime.configure(registry=self.metrics, tracer=self.tracer)
        self.nodes[nspec.name] = node
        provider = StorageProvider(
            node, self.config.volume, self.params,
            rng=self.rngs.py(f"provider:{nspec.name}"),
        )
        self.providers[nspec.name] = provider
        self.provider_names.append(nspec.name)
        return provider

    # ------------------------------------------------------ preloading
    def preload_file(self, path: str, size: int, degree: int = 1,
                     alpha: float = 0.5, placement: str = "load",
                     on: Optional[List[str]] = None) -> dict:
        """Plant a committed file directly into provider state.

        Benchmark setup only: bypasses the network/disk so pre-populating
        an 80 GB dataset (Figure 11) costs no simulated or wall time.
        Segment placement is round-robin over ``on`` (default: all
        providers), replicas on distinct nodes.
        """
        from repro.core.layout import make_layout
        from repro.core.namespace import FileEntry, _file_key
        from repro.core.segment import SYNTHETIC, StoredSegment

        from repro.core.hashing import HashRing
        from repro.storage.filesystem import _File

        rng = self.rngs.py(f"preload:{path}")
        hosts = on or sorted(self.provider_names)
        fileid = self.rngs.py("preload-ids").getrandbits(128)
        layout = make_layout("linear", lambda: rng.getrandbits(128))
        layout.grow_to(size, lambda: rng.getrandbits(128))
        start = rng.randrange(len(hosts))
        # One scratch ring + one member-view object shared across every
        # preload call: the ring is a pure function of (members, vnodes),
        # so this computes the same homes the providers will, without
        # warming a thousand per-provider rings — and passing the *same*
        # list object each time hits the ring's identity fast path.
        members = getattr(self, "_preload_view", None)
        if members is None or len(members) != len(self.provider_names):
            members = self._preload_view = sorted(self.provider_names)
            self._preload_ring = HashRing(self.params.ring_vnodes)
        ring = self._preload_ring

        def plant(segid, seg_size, meta, idx):
            # Placement math (owners, homes) runs over the full host list
            # in every partition worker; actual state is planted only
            # where the provider was built.  Every RNG draw happened
            # before this point, so dormancy never shifts a stream.
            owners = [hosts[(start + idx + r) % len(hosts)]
                      for r in range(min(degree, len(hosts)))]
            for owner in dict.fromkeys(owners):
                provider = self.providers.get(owner)
                if provider is not None:
                    seg = StoredSegment(
                        segid=segid, version=1, size=seg_size,
                        committed=True,
                        replication_degree=degree, alpha=alpha,
                        placement=placement, meta=meta,
                        last_access=self.sim.now,
                    )
                    if seg_size > 0:
                        seg.extents.set_range(0, seg_size, SYNTHETIC)
                    provider.store.plant(seg)
                    # Direct FS accounting (no simulated I/O):
                    fs = provider.node.fs
                    fs.files[seg.fs_name] = _File(size=seg_size,
                                                  allocated=seg_size)
                    fs.used += seg_size
                home = ring.home_host(segid, members)
                home_p = self.providers.get(home)
                if home_p is not None:
                    home_p.loc.update(
                        segid, owner, 1, degree, seg_size, self.sim.now)

        for i, ref in enumerate(layout.segments):
            plant(ref.segid, ref.size, None, i)
        index_meta = {"layout": layout, "attached": None, "attached_len": 0}
        plant(fileid, 4096, index_meta, len(layout.segments))
        entry = FileEntry(path=path, fileid=fileid, version=1,
                          ctime=self.sim.now, mtime=self.sim.now,
                          degree=degree, alpha=alpha,
                          placement=placement).to_dict()
        if self.ns_shard_map is not None:
            owner = self.ns_shard_map.owner_of(path)
            shard = self.ns_shard_servers[owner]
            if not shard.node.dormant:
                shard.db.put(_file_key(path), entry)
        elif not self.ns.node.dormant:
            self.ns.db.put(_file_key(path), entry)
        return entry

    def preload_files(self, files, degree: int = 1, alpha: float = 0.5,
                      placement: str = "load",
                      on: Optional[List[str]] = None) -> int:
        """Plant many committed files directly into provider state.

        The bulk fast path for :meth:`preload_file`: the planted
        structures are identical in shape (segment stores, filesystem
        accounting, location maps, namespace entries), but id/placement
        draws come from one shared ``"preload-bulk"`` stream with a
        fixed draw count per file — so every partition worker replaying
        the same file list stays stream-aligned regardless of which
        nodes are local — and the per-entry WAL byte walk is computed
        once.  ``files`` is an iterable of ``(path, size)``.  Returns
        the number of files planted.

        The cyclic collector is paused for the duration of the load
        (and restored after): the planted population is millions of
        live objects, and letting each generation-0 sweep rescan it
        turns an O(files) load into an O(files²)-flavored one.  Large
        populations (≥ ``_FREEZE_THRESHOLD`` files) are then frozen
        into the permanent generation — they are cluster state that
        lives until process exit, so exempting them keeps later
        collections (during the measured traffic window) from
        rescanning them forever.
        """
        import gc

        from repro.core.layout import make_layout
        from repro.core.namespace import _file_key
        from repro.core.segment import SYNTHETIC, StoredSegment

        from repro.core.hashing import HashRing
        from repro.core.location import OwnerRecord
        from repro.kvstore.wal import _value_bytes
        from repro.storage.filesystem import _File

        from repro.core.extent import RangeMap

        rng = self.rngs.py("preload-bulk")
        rb = rng.getrandbits
        draw_id = lambda: rb(128)   # noqa: E731 - hoisted, built once
        hosts = on or sorted(self.provider_names)
        nhosts = len(hosts)
        members = getattr(self, "_preload_view", None)
        if members is None or len(members) != len(self.provider_names):
            members = self._preload_view = sorted(self.provider_names)
            self._preload_ring = HashRing(self.params.ring_vnodes)
        ring = self._preload_ring
        now = self.sim.now
        get_provider = self.providers.get
        shard_map = self.ns_shard_map
        shard_servers = self.ns_shard_servers
        flat_ns = None if shard_map is not None else self.ns
        nreps = min(degree, nhosts)
        # Segment objects differ only in segid/size/meta/extents; build
        # them from a prototype __dict__ instead of re-running the
        # 15-field dataclass __init__ twice per file.
        proto = dict(StoredSegment(
            segid=0, version=1, committed=True,
            replication_degree=degree, alpha=alpha,
            placement=placement, last_access=now).__dict__)
        del proto["extents"]
        new_seg = StoredSegment.__new__
        new_map = RangeMap.__new__
        locate = None

        # Entries differ only in path and fileid; fileids and timestamps
        # cost a flat 16 bytes in the WAL's accounting, so the recursive
        # byte walk runs once and per-file footprints are patched by
        # path length.
        entry_template: Optional[dict] = None
        val_base = key_base = 0

        # Per-provider bound state, resolved once per host: the two
        # per-segment plants (segment store + home location table) are
        # the loop's hottest calls, so the store's fresh-insert fast
        # path (:meth:`SegmentStore.plant_fresh`) is cached as a bound
        # method and the body of :meth:`LocationTable.plant` is inlined
        # against cached dict references (state-identical; a non-fresh
        # segid falls back to the real method).  The refresh-wheel
        # bucket is also constant for the whole batch (one ``now``),
        # so each table's bucket is resolved once instead of per
        # record.
        store_ctx: dict = {}
        loc_ctx: dict = {}

        count = 0
        gc_was = gc.isenabled()
        if gc_was:
            gc.disable()
        try:
            for path, size in files:
                fileid = rb(128)
                layout = make_layout("linear", draw_id)
                layout.grow_to(size, draw_id)
                start = rng.randrange(nhosts)
                segrefs = layout.segments
                nsegs = len(segrefs)
                if locate is None:
                    # One reconcile+flush warms the scratch ring; after
                    # it the member view is identity-stable, so the raw
                    # lookup is safe for the rest of the batch.
                    ring.home_host(fileid, members)
                    locate = ring._locate
                for idx in range(nsegs + 1):
                    if idx < nsegs:
                        ref = segrefs[idx]
                        segid = ref.segid
                        seg_size = ref.size
                        meta = None
                    else:   # the per-file index segment
                        segid = fileid
                        seg_size = 4096
                        meta = {"layout": layout, "attached": None,
                                "attached_len": 0}
                    if nreps == 1:
                        owners = (hosts[(start + idx) % nhosts],)
                    else:
                        owners = dict.fromkeys(
                            hosts[(start + idx + r) % nhosts]
                            for r in range(nreps))
                    for owner in owners:
                        ctx = store_ctx.get(owner)
                        if ctx is None:
                            provider = get_provider(owner)
                            if provider is None:
                                ctx = store_ctx[owner] = False
                            else:
                                pfs = provider.node.fs
                                ctx = store_ctx[owner] = (
                                    provider.store.plant_fresh,
                                    pfs, pfs.files)
                        if ctx:
                            seg = new_seg(StoredSegment)
                            sd = seg.__dict__
                            sd.update(proto)
                            sd["segid"] = segid
                            sd["size"] = seg_size
                            sd["meta"] = meta
                            em = new_map(RangeMap)
                            if seg_size > 0:
                                em._starts = [0]
                                em._spans = [(0, seg_size, SYNTHETIC)]
                                em._covered = seg_size
                            else:
                                em._starts = []
                                em._spans = []
                                em._covered = 0
                            sd["extents"] = em
                            ctx[0](seg)
                            # == seg.fs_name (version is always 1 here);
                            # bytes.hex() beats the f-string %032x format
                            # by a few µs/call, which matters ×2 segs ×
                            # 200k files.
                            ctx[2][
                                segid.to_bytes(16, "big").hex() + ".1"
                            ] = _File(size=seg_size, allocated=seg_size)
                            ctx[1].used += seg_size
                        home = locate(segid)
                        lctx = loc_ctx.get(home)
                        if lctx is None:
                            home_p = get_provider(home)
                            if home_p is None:
                                lctx = loc_ctx[home] = False
                            else:
                                loc = home_p.loc
                                tick = int(now / loc._WHEEL_TICK)
                                bucket = loc._rwheel.get(tick)
                                if bucket is None:
                                    bucket = loc._rwheel[tick] = set()
                                lctx = loc_ctx[home] = (
                                    loc, loc._entries, loc._first_seen,
                                    loc._ins_seq, loc._by_owner,
                                    bucket, loc._rtick, tick)
                        if lctx:
                            # LocationTable.plant, inlined.
                            loc = lctx[0]
                            seg_owners = lctx[1].get(segid)
                            if seg_owners is None:
                                seg_owners = lctx[1][segid] = {}
                                lctx[2][segid] = now
                                lctx[3][segid] = loc._next_seq
                                loc._next_seq += 1
                            seg_owners[owner] = OwnerRecord(
                                1, degree, seg_size, now)
                            owned = lctx[4].get(owner)
                            if owned is None:
                                owned = lctx[4][owner] = set()
                            owned.add(segid)
                            okey = (segid, owner)
                            lctx[5].add(okey)
                            lctx[6][okey] = lctx[7]
                if entry_template is None:
                    from repro.core.namespace import FileEntry
                    entry_template = FileEntry(
                        path=path, fileid=fileid, version=1,
                        ctime=now, mtime=now, degree=degree, alpha=alpha,
                        placement=placement).to_dict()
                    entry = entry_template
                    val_base = _value_bytes(entry) - len(path)
                    key_base = 24 + len(_file_key(path)) - len(path)
                else:
                    entry = entry_template.copy()
                    entry["path"] = path
                    entry["fileid"] = fileid
                wal_bytes = key_base + val_base + 2 * len(path)
                if shard_map is not None:
                    shard = shard_servers[shard_map.owner_of(path)]
                    if not shard.node.dormant:
                        shard.db.put(_file_key(path), entry,
                                     nbytes=wal_bytes)
                elif not flat_ns.node.dormant:
                    flat_ns.db.put(_file_key(path), entry,
                                   nbytes=wal_bytes)
                count += 1
        finally:
            if gc_was:
                if count >= self._FREEZE_THRESHOLD:
                    # The population is permanent cluster state; move it
                    # (and everything else currently alive) into the
                    # permanent generation so the traffic window's
                    # collections never rescan it.
                    gc.freeze()
                gc.enable()
        return count

    # ------------------------------------------------------------- metrics
    def storage_utilizations(self) -> Dict[str, float]:
        """Live providers' consumed-space fractions."""
        return {
            h: p.node.storage_utilization
            for h, p in self.providers.items()
            if p.node.alive
        }

    def total_bytes_stored(self) -> int:
        """Sum of extent bytes across all providers."""
        return sum(p.store.bytes_stored() for p in self.providers.values())

    def rpc_report(self, scope: Optional[str] = None) -> str:
        """Per-service RPC counters from the deployment-wide registry."""
        return self.metrics.report(scope)
