"""Pathname operations against the namespace server(s) (Section 3.1).

Includes primary/standby failover and the directory-tree partitioning
variant where each top-level directory hashes to one namespace server.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.core.client.handle import (
    ConflictError,
    NotFoundError,
    SorrentoError,
    TimeoutError,
)
from repro.network.message import RpcRemoteError, RpcTimeout
from repro.sim import gather


def _namespace_error(error: str) -> SorrentoError:
    """Map a remote ``NamespaceError`` string onto the typed hierarchy."""
    if "ENOENT" in error:
        return NotFoundError(error)
    if "EEXIST" in error or "ENOTEMPTY" in error:
        return ConflictError(error)
    return SorrentoError(error)


class NamespaceOpsMixin:
    """Namespace RPCs: lookup, create, directories, leases, milestones."""

    # ------------------------------------------------------------ routing
    @property
    def ns_host(self) -> str:
        """The namespace server currently targeted (failover-aware)."""
        return self.ns_hosts[self._ns_active]

    def _ns_for(self, payload) -> Optional[str]:
        """Partitioned namespace routing: hash the top-level directory."""
        if self.ns_partitions is None:
            return None
        path = payload if isinstance(payload, str) else payload.get("path", "")
        top = path.split("/", 2)[1] if path.startswith("/") else path
        idx = int.from_bytes(
            hashlib.sha1(top.encode()).digest()[:4], "big"
        ) % len(self.ns_partitions)
        return self.ns_partitions[idx]

    def _call_ns(self, service: str, payload, size: int = 64, rtts: int = 1):
        partition = self._ns_for(payload)
        if partition is not None:
            try:
                result = yield from self.rpc.call(
                    partition, service, payload, size=size, rtts=rtts,
                )
                return result
            except RpcRemoteError as exc:
                if "NamespaceError" in exc.error:
                    raise _namespace_error(exc.error) from exc
                raise
        last_exc = None
        for _attempt in range(len(self.ns_hosts)):
            try:
                result = yield from self.rpc.call(
                    self.ns_host, service, payload, size=size, rtts=rtts,
                )
                return result
            except RpcRemoteError as exc:
                if "NamespaceError" in exc.error:
                    raise _namespace_error(exc.error) from exc
                raise
            except RpcTimeout as exc:
                # Primary unreachable: fail over to the standby replica.
                last_exc = exc
                self._ns_active = (self._ns_active + 1) % len(self.ns_hosts)
        raise TimeoutError(
            f"namespace server unreachable: {last_exc}"
        ) from last_exc

    # ------------------------------------------------------------ dir ops
    def mkdir(self, path: str):
        """Create a directory on the namespace server."""
        result = yield from self._call_ns("ns_mkdir", path)
        return result

    def rmdir(self, path: str):
        """Remove an empty directory."""
        result = yield from self._call_ns("ns_rmdir", path)
        return result

    def listdir(self, path: str):
        if self.ns_partitions is not None and path == "/":
            # The root spans every partition: fan out and merge.
            def list_on(host):
                names = yield from self.rpc.call(host, "ns_list", "/", size=64)
                return names

            parts = yield from gather(
                self.sim, [list_on(h) for h in self.ns_partitions])
            merged = sorted({name for names in parts for name in names})
            return merged
        result = yield from self._call_ns("ns_list", path)
        return result

    def stat(self, path: str):
        """The file's namespace entry (FileID, version, policy)."""
        result = yield from self._call_ns("ns_lookup", path)
        return result

    def create(self, path: str, *, degree: Optional[int] = None,
               alpha: Optional[float] = None, organization: str = "linear",
               versioning: bool = True, placement: str = "load",
               stripe_count: int = 4, fixed_size: int = 0):
        """Create an empty file entry (no data segments yet).

        ``organization`` is the data layout mode — "linear", "striped",
        or "hybrid" (named so because ``open()``'s own ``mode`` is the
        r/w open mode).
        """
        fileid = self.ids.new_id()
        req = {
            "path": path, "fileid": fileid,
            "degree": degree if degree is not None else self.params.default_degree,
            "alpha": alpha if alpha is not None else self.params.default_alpha,
            "mode": organization, "versioning": versioning,
            "placement": placement,
            "stripe_count": stripe_count, "fixed_size": fixed_size,
        }
        entry = yield from self._call_ns("ns_create", req, size=160)
        return entry

    # ------------------------------------------------------------ leases
    def acquire_lease(self, path: str, duration: float = 30.0):
        """Write-lock lease: cooperative writers avoid commit conflicts
        by holding the lease across their session (Section 3.5)."""
        resp = yield from self._call_ns(
            "ns_acquire_lease", {"path": path, "duration": duration},
            size=96)
        return resp["status"] == "ok"

    def release_lease(self, path: str):
        """Release a previously-acquired write-lock lease."""
        result = yield from self._call_ns("ns_release_lease", {"path": path})
        return result
