"""Pathname operations against the namespace server(s) (Section 3.1).

All routing — primary/standby failover, the legacy directory-tree
partitioning variant, and the sharded namespace with redirect chasing —
lives in :class:`repro.core.client.router.NamespaceRouter`; this mixin
is the operation vocabulary on top of it.  Cross-shard rename/link run
a two-phase commit over the owning shards' staged-mutation handlers.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.client.handle import ConflictError
from repro.core.client.router import _namespace_error  # noqa: F401  (compat)
from repro.core.twophase import CommitAborted, two_phase_commit
from repro.sim import gather

NS_2PC_SERVICES = ("ns_prepare", "ns_commit", "ns_abort")


def _parent_dir(path: str) -> str:
    head = path.rpartition("/")[0]
    return head or "/"


class NamespaceOpsMixin:
    """Namespace RPCs: lookup, create, directories, leases, milestones."""

    # ------------------------------------------------------------ routing
    # Routing state lives on self.router; these properties keep the
    # client's historical surface (tests and tools poke at them).
    @property
    def ns_host(self) -> str:
        """The namespace server currently targeted (failover-aware)."""
        return self.router.ns_hosts[self.router._active]

    @property
    def ns_hosts(self) -> List[str]:
        return self.router.ns_hosts

    @property
    def _ns_active(self) -> int:
        return self.router._active

    @property
    def ns_partitions(self) -> Optional[List[str]]:
        return self.router.partitions

    def _ns_for(self, payload) -> Optional[str]:
        """Partitioned namespace routing: hash the top-level directory."""
        return self.router.partition_for(payload)

    def _entry_key(self, path: str):
        """Entry-cache key: (shard-epoch, path), so a ring change
        strands every entry cached under the old routing at once."""
        return (self.router.epoch, path)

    def _call_ns(self, service: str, payload, size: int = 64, rtts: int = 1):
        result = yield from self.router.call(service, payload,
                                             size=size, rtts=rtts)
        return result

    # ------------------------------------------------------------ dir ops
    def mkdir(self, path: str):
        """Create a directory on the namespace server."""
        result = yield from self._call_ns("ns_mkdir", path)
        return result

    def rmdir(self, path: str):
        """Remove an empty directory."""
        result = yield from self._call_ns("ns_rmdir", path)
        return result

    def listdir(self, path: str):
        fanout = None
        if path == "/":
            if self.router.sharded:
                # The root spans every shard: ask each primary.
                fanout = [hosts[0] for hosts in self.router.shards.values()]
            elif self.ns_partitions is not None:
                fanout = self.ns_partitions
        if fanout is not None:
            # The root spans every partition: fan out and merge.
            def list_on(host):
                names = yield from self.rpc.call(host, "ns_list", "/", size=64)
                return names

            parts = yield from gather(
                self.sim, [list_on(h) for h in fanout])
            merged = set()
            best_epoch, best_shards = -1, None
            for part in parts:
                if isinstance(part, dict):
                    # Sharded servers piggyback their shard-map snapshot
                    # on root listings (the one namespace op that cannot
                    # redirect) so a stale client discovers shards it
                    # has never been bounced to.
                    merged.update(part["names"])
                    if part["epoch"] > best_epoch:
                        best_epoch = part["epoch"]
                        best_shards = part["shards"]
                else:
                    merged.update(part)
            if best_shards is not None:
                new = self.router.learn_shards(best_epoch, best_shards)
                extra = [s for s in new if s not in fanout]
                if extra:
                    parts = yield from gather(
                        self.sim, [list_on(h) for h in extra])
                    for part in parts:
                        merged.update(part["names"]
                                      if isinstance(part, dict) else part)
            return sorted(merged)
        result = yield from self._call_ns("ns_list", path)
        return result

    def stat(self, path: str):
        """The file's namespace entry (FileID, version, policy)."""
        result = yield from self._call_ns("ns_lookup", path)
        return result

    def create(self, path: str, *, degree: Optional[int] = None,
               alpha: Optional[float] = None, organization: str = "linear",
               versioning: bool = True, placement: str = "load",
               stripe_count: int = 4, fixed_size: int = 0):
        """Create an empty file entry (no data segments yet).

        ``organization`` is the data layout mode — "linear", "striped",
        or "hybrid" (named so because ``open()``'s own ``mode`` is the
        r/w open mode).
        """
        fileid = self.ids.new_id()
        req = {
            "path": path, "fileid": fileid,
            "degree": degree if degree is not None else self.params.default_degree,
            "alpha": alpha if alpha is not None else self.params.default_alpha,
            "mode": organization, "versioning": versioning,
            "placement": placement,
            "stripe_count": stripe_count, "fixed_size": fixed_size,
        }
        entry = yield from self._call_ns("ns_create", req, size=160)
        return entry

    # ----------------------------------------------------- rename / link
    def rename(self, src_path: str, dst_path: str):
        """Atomically move a file entry to a new path.

        Same-shard (and unsharded/partitioned-same-server) renames are
        one ``ns_rename`` RPC; when the two paths hash to different
        namespace servers the move runs as a two-phase commit over both
        shards' staged-mutation handlers, so either both the delete of
        the old name and the insert of the new one land, or neither.
        """
        src_target = self.router.route_host(src_path)
        dst_target = self.router.route_host(dst_path)
        if src_target == dst_target:
            moved = yield from self._call_ns(
                "ns_rename", {"path": src_path, "dst": dst_path}, size=96)
        else:
            moved = yield from self._cross_shard_move(
                src_path, dst_path, keep_source=False)
        self.entry_cache.evict(self._entry_key(src_path))
        self.entry_cache.evict(self._entry_key(dst_path))
        return moved

    def link(self, src_path: str, dst_path: str):
        """Alias a file under a second path (both resolve to the same
        FileID).  Cross-shard links use the same 2PC as rename."""
        src_target = self.router.route_host(src_path)
        dst_target = self.router.route_host(dst_path)
        if src_target == dst_target:
            alias = yield from self._call_ns(
                "ns_link", {"path": src_path, "dst": dst_path}, size=96)
        else:
            alias = yield from self._cross_shard_move(
                src_path, dst_path, keep_source=True)
        self.entry_cache.evict(self._entry_key(dst_path))
        return alias

    def _cross_shard_move(self, src_path: str, dst_path: str, *,
                          keep_source: bool):
        entry = yield from self._call_ns("ns_lookup", src_path)
        moved = dict(entry, path=dst_path)
        txid = self.ids.new_id()
        src_ops = [] if keep_source else [{"op": "del", "key": "f:" + src_path}]
        participants = [
            (self.router.route_host(src_path), {
                "txid": txid,
                "checks": [{"key": "f:" + src_path, "must": "present"}],
                "ops": src_ops,
            }),
            (self.router.route_host(dst_path), {
                "txid": txid,
                "checks": [
                    {"key": "f:" + dst_path, "must": "absent"},
                    {"key": "d:" + _parent_dir(dst_path), "must": "present"},
                ],
                "ops": [{"op": "put", "key": "f:" + dst_path, "value": moved}],
            }),
        ]
        try:
            yield from two_phase_commit(self.rpc, participants, req_size=192,
                                        services=NS_2PC_SERVICES)
        except CommitAborted as exc:
            raise ConflictError(
                f"rename {src_path} -> {dst_path} aborted: {exc}") from exc
        return moved

    # ------------------------------------------------------------ leases
    def acquire_lease(self, path: str, duration: float = 30.0):
        """Write-lock lease: cooperative writers avoid commit conflicts
        by holding the lease across their session (Section 3.5)."""
        resp = yield from self._call_ns(
            "ns_acquire_lease", {"path": path, "duration": duration},
            size=96)
        return resp["status"] == "ok"

    def release_lease(self, path: str):
        """Release a previously-acquired write-lock lease."""
        result = yield from self._call_ns("ns_release_lease", {"path": path})
        return result
