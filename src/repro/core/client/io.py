"""The data path: open, read, write, truncate, unlink, atomic append.

Covers Figure 6's read path, the attached small-file fast path
(Section 3.2), the versioning-off in-place path (Section 3.5), and the
Figure 4 atomic-append recipe.
"""

from __future__ import annotations

import copy
from typing import Optional

from repro.core.client.handle import (
    CommitConflict,
    ConflictError,
    FileHandle,
    NotFoundError,
    SorrentoError,
    TimeoutError,
    _meta_size,
    make_layout_for,
)
from repro.network.message import RpcRemoteError, RpcTimeout
from repro.sim import gather


class DataPathMixin:
    """Byte-range I/O against segment owners."""

    # ============================================================== open
    def open(self, path: str, mode: str = "r", create: bool = False,
             meta_only: bool = False, version: Optional[int] = None,
             **create_params):
        """Open a file; "w" starts a shadow session on the latest version.

        ``meta_only`` fetches just the layout from the index segment
        (cheaper; used by unlink, which never reads file data).
        ``version`` opens a historical (milestone) version read-only.
        """
        if mode not in ("r", "w"):
            raise ValueError(f"bad mode {mode!r}")
        if version is not None and mode != "r":
            raise SorrentoError("historical versions are read-only")
        self.stats["opens"] += 1
        yield self.node.cpu(self.params.client_op_cpu)
        try:
            entry = yield from self._call_ns(
                "ns_lookup", path, rtts=self.params.open_rtts)
        except NotFoundError:
            if not (create and mode == "w"):
                raise
            try:
                entry = yield from self.create(path, **create_params)
            except ConflictError:
                # Lost a create race: the other writer's entry is ours too.
                entry = yield from self._call_ns("ns_lookup", path)
        if version is not None:
            if not 0 < version <= entry["version"]:
                raise NotFoundError(
                    f"{path}: no version {version} (latest is "
                    f"{entry['version']})"
                )
            entry = dict(entry)
            entry["version"] = version
        fh = FileHandle(path=path, entry=entry, mode=mode,
                        layout=make_layout_for(entry),
                        attached=None, base_version=entry["version"])
        if entry["version"] > 0:
            yield from self._load_index(fh, meta_only=meta_only)
        return fh

    def _load_index(self, fh: FileHandle, meta_only: bool = False) -> None:
        """Fetch the index segment (Figure 6 step 2) and decode the layout.

        The namespace's latest version is authoritative; location-table
        announcements are asynchronous, so we insist on reading exactly
        ``entry["version"]`` of the index segment (retrying briefly while
        propagation is in flight) — otherwise a reopen right after a
        commit could resurrect a stale layout and lose that commit.
        """
        want = fh.entry["version"]
        meta = None
        for attempt in range(6):
            resp = yield from self._locate(
                fh.fileid,
                read={"offset": 0, "length": self.params.attach_max + 256,
                      "meta_only": meta_only},
            )
            inline = resp.get("inline")
            if inline is not None and inline["version"] == want:
                meta = inline["meta"]
                fh.index_owner = resp["owners"][0][0] if resp["owners"] else None
                break
            # The table's advertised versions may lag: try every owner for
            # the exact version we need.
            for owner, _v in resp["owners"]:
                try:
                    r = yield from self.rpc.call(
                        owner, "seg_read",
                        {"segid": fh.fileid, "version": want, "offset": 0,
                         "length": 0, "meta_only": meta_only},
                        size=64,
                    )
                except (RpcTimeout, RpcRemoteError):
                    continue
                meta = r["meta"]
                fh.index_owner = owner
                break
            if meta is not None:
                break
            yield self.sim.timeout(0.02 * (attempt + 1))
        if meta is None:
            raise TimeoutError(
                f"index segment of {fh.path} v{want} unavailable"
            )
        fh.layout = copy.deepcopy(meta["layout"])
        fh.attached_len = meta.get("attached_len", 0)
        fh.attached = meta.get("attached")

    # ============================================================== read
    def read(self, fh: FileHandle, offset: int, length: int,
             sequential: bool = False):
        """Read a byte range; returns bytes, or None for synthetic content."""
        self._check_open(fh)
        self.stats["reads"] += 1
        yield self.node.cpu(self.params.client_op_cpu)
        end = min(offset + length, fh.size)
        if end <= offset:
            return b""
        length = end - offset
        if not fh.layout.segments:  # attached small file
            if fh.attached is None:
                return None
            return fh.attached[offset:offset + length]
        pieces = fh.layout.locate(offset, length)
        reads = [self._read_piece(fh, seg_idx, seg_off, n, sequential)
                 for seg_idx, seg_off, n in pieces]
        chunks = yield from gather(self.sim, reads)
        if any(c is None for c in chunks):
            return None
        return b"".join(chunks)

    def _read_piece(self, fh: FileHandle, seg_idx: int, seg_off: int,
                    length: int, sequential: bool):
        ref = fh.layout.segments[seg_idx]
        shadow = fh.shadows.get(ref.segid)
        if shadow is not None:
            owner, version = shadow
        elif ref.segid in fh.new_segments:
            owner, version = fh.new_segments[ref.segid], 1
        else:
            owner, version = None, ref.version
        if owner is None:
            # Read exactly the version the index names (snapshot isolation);
            # the location table may advertise newer or older replicas.
            resp = yield from self._locate(ref.segid)
            owner, _have = self._pick_owner(resp["owners"])
        try:
            r = yield from self.rpc.call(
                owner, "seg_read",
                {"segid": ref.segid, "version": version, "offset": seg_off,
                 "length": length, "sequential": sequential},
                size=64,
            )
        except (RpcTimeout, RpcRemoteError):
            # Owner died or lacks the version: fall back to a fresh lookup.
            other = yield from self._probe(ref.segid)
            r = yield from self.rpc.call(
                other[0], "seg_read",
                {"segid": ref.segid, "version": None, "offset": seg_off,
                 "length": length, "sequential": sequential},
                size=64,
            )
        return r["data"]

    # ============================================================== write
    def write(self, fh: FileHandle, offset: int, length: int,
              data: Optional[bytes] = None, sequential: bool = False):
        """Write a byte range into the session's shadow copies."""
        self._check_open(fh)
        if fh.mode != "w":
            raise SorrentoError("file not open for writing")
        if data is not None and len(data) != length:
            raise SorrentoError("data/length mismatch")
        self.stats["writes"] += 1
        yield self.node.cpu(self.params.client_op_cpu)
        if not fh.versioning:
            yield from self._write_in_place(fh, offset, length, data, sequential)
            return
        fh.dirty = True
        end = offset + length
        # Small files stay attached to the index segment.
        if not fh.layout.segments and end <= self.params.attach_max:
            buf = bytearray(fh.attached if fh.attached is not None
                            else b"\x00" * fh.attached_len)
            if len(buf) < end:
                buf.extend(b"\x00" * (end - len(buf)))
            if data is not None:
                buf[offset:end] = data
            fh.attached = bytes(buf)
            fh.attached_len = len(buf)
            return
        if not fh.layout.segments and fh.attached_len > 0:
            yield from self._spill_attached(fh)
        if end > fh.layout.size:
            created = fh.layout.grow_to(end, self.ids.new_id)
            for ref in created:
                yield from self._create_segment(fh, ref)
        pieces = fh.layout.locate(offset, length)
        # Resolve each distinct segment's writable version first (serially)
        # so the parallel piece writes below never race to create the same
        # shadow or striped segment.
        for seg_idx in dict.fromkeys(p[0] for p in pieces):
            yield from self._writable_version(fh, fh.layout.segments[seg_idx])
        writes, pos = [], 0
        for seg_idx, seg_off, n in pieces:
            chunk = data[pos:pos + n] if data is not None else None
            pos += n
            writes.append(self._write_piece(fh, seg_idx, seg_off, n, chunk,
                                            sequential))
        yield from gather(self.sim, writes)

    def _write_piece(self, fh: FileHandle, seg_idx: int, seg_off: int,
                     length: int, data: Optional[bytes], sequential: bool):
        ref = fh.layout.segments[seg_idx]
        owner, version = yield from self._writable_version(fh, ref)
        try:
            yield from self.rpc.call(
                owner, "seg_write",
                {"segid": ref.segid, "version": version, "offset": seg_off,
                 "length": length, "data": data},
                size=64 + length,
            )
        except RpcTimeout as exc:
            # The shadow's owner died mid-session: the write (and the
            # whole session) cannot complete; the shadow TTL cleans up.
            fh.shadows.pop(ref.segid, None)
            raise TimeoutError(
                f"owner of segment {ref.segid:#x} died mid-write: {exc}"
            ) from exc

    def _spill_attached(self, fh: FileHandle):
        """An attached file outgrew 60 KB: move its bytes into a real
        data segment before continuing."""
        payload, n = fh.attached, fh.attached_len
        fh.attached, fh.attached_len = None, 0
        created = fh.layout.grow_to(n, self.ids.new_id)
        for ref in created:
            yield from self._create_segment(fh, ref)
        for seg_idx, seg_off, ln in fh.layout.locate(0, n):
            ref = fh.layout.segments[seg_idx]
            chunk = payload[seg_off:seg_off + ln] if payload is not None else None
            yield from self._write_piece(fh, seg_idx, seg_off, ln, chunk, True)

    # ================================================ versioning-off path
    def truncate(self, fh: FileHandle, size: int):
        """Pre-size a versioning-disabled file (grow only).

        Shared-file users size the file up front (as BTIO declares its
        solution size); concurrent *growth* from different clients is
        inherently racy because each client's layout copy would mint
        different segments for the same byte ranges.
        """
        self._check_open(fh)
        if fh.versioning:
            raise SorrentoError(
                "truncate is for versioning-disabled files; versioned "
                "files grow through write+commit")
        if size < fh.layout.size:
            raise SorrentoError("shrinking is not supported")
        lock = self._fh_meta_lock(fh)
        grant = lock.request()
        yield grant
        try:
            yield from self._grow_in_place(fh, size)
        finally:
            lock.release()
        return size

    def _fh_meta_lock(self, fh: FileHandle):
        """Per-handle mutex for layout growth: concurrent writes on one
        handle (list-I/O) must not race to create the same segments."""
        lock = getattr(fh, "_meta_lock", None)
        if lock is None:
            from repro.sim import Resource

            lock = Resource(self.sim, 1)
            fh._meta_lock = lock
        return lock

    def _write_in_place(self, fh: FileHandle, offset: int, length: int,
                        data: Optional[bytes], sequential: bool):
        """Versioning-disabled path: mutate committed segments directly."""
        end = offset + length
        lock = self._fh_meta_lock(fh)
        grant = lock.request()
        yield grant
        try:
            yield from self._grow_in_place(fh, end)
        finally:
            lock.release()
        writes, pos = [], 0
        for seg_idx, seg_off, n in fh.layout.locate(offset, length):
            ref = fh.layout.segments[seg_idx]
            chunk = data[pos:pos + n] if data is not None else None
            pos += n
            writes.append(self._unversioned_piece(fh, ref, seg_off, n, chunk,
                                                  sequential))
        yield from gather(self.sim, writes)

    def _grow_in_place(self, fh: FileHandle, end: int):
        if end > fh.layout.size:
            created = fh.layout.grow_to(end, self.ids.new_id)
            for ref in created:
                yield from self._create_segment(fh, ref, committed=True,
                                                degree=1)
            # Unversioned layout changes publish immediately via the index.
            yield from self._publish_unversioned_index(fh)

    def _unversioned_piece(self, fh: FileHandle, ref, seg_off: int, n: int,
                           data, sequential: bool):
        if ref.segid in fh.new_segments:
            owner = fh.new_segments[ref.segid]
        else:
            resp = yield from self._locate(ref.segid)
            owner, _ = self._pick_owner(resp["owners"])
        yield from self.rpc.call(
            owner, "seg_write",
            {"segid": ref.segid, "version": 1, "offset": seg_off,
             "length": n, "data": data, "in_place": True},
            size=64 + n,
        )

    def _publish_unversioned_index(self, fh: FileHandle):
        """Keep the unversioned file's index segment current (v1 rewrite)."""
        meta = {"layout": copy.deepcopy(fh.layout),
                "attached": None, "attached_len": 0}
        if fh.index_owner is None:
            owner = self._place_new_segment(fh.fileid, 4096, fh.entry["alpha"])
            yield from self.rpc.call(
                owner, "seg_create",
                {"segid": fh.fileid, "version": 1, "committed": True,
                 "degree": 1, "alpha": fh.entry["alpha"], "meta": meta},
                size=_meta_size(meta),
            )
            fh.index_owner = owner
            if fh.entry["version"] == 0:
                yield from self._ns_commit_cycle(fh)
        else:
            # Rewrite meta on the existing owner (segment stays v1).
            yield from self.rpc.call(
                fh.index_owner, "seg_write",
                {"segid": fh.fileid, "version": 1, "offset": 0, "length": 0,
                 "in_place": True},
                size=_meta_size(meta),
            )
            # Owner-side meta update rides on the same call in the real
            # system; emulate by a direct state poke through seg_commit.
            yield from self.rpc.call(
                fh.index_owner, "seg_commit",
                {"segid": fh.fileid, "version": 1, "meta": meta},
                size=_meta_size(meta),
            )

    def _ns_commit_cycle(self, fh: FileHandle):
        """Advance the namespace version 0 -> 1 for unversioned files."""
        resp = yield from self._call_ns(
            "ns_begin_commit", {"path": fh.path, "base_version": 0}, size=96)
        if resp["status"] != "ok":
            raise CommitConflict(f"{fh.path}: {resp['status']}")
        entry = yield from self._call_ns(
            "ns_complete_commit", {"path": fh.path, "new_version": 1}, size=96)
        fh.entry = entry
        fh.base_version = 1

    # ============================================================== unlink
    def unlink(self, path: str):
        """Remove a file, eagerly deleting every replica of its segments.

        Replicas of one segment are deleted in turn (this is what makes
        unlink response time grow with the replication degree, Figure 9);
        distinct segments go in parallel.
        """
        yield self.node.cpu(self.params.client_op_cpu)
        fh = yield from self.open(path, "r", meta_only=True)
        entry = yield from self._call_ns("ns_unlink", path)
        segids = [ref.segid for ref in fh.layout.segments] + [entry["fileid"]]
        deletions = [self._delete_everywhere(segid) for segid in segids]
        yield from gather(self.sim, deletions)
        return entry

    def _delete_everywhere(self, segid: int):
        try:
            resp = yield from self._locate(segid)
        except SorrentoError:
            return
        owners = {h for h, _ in resp["owners"]}
        for host in sorted(owners):
            try:
                yield from self.rpc.call(host, "seg_delete",
                                         {"segid": segid}, size=48)
            except (RpcTimeout, RpcRemoteError):
                pass

    # ======================================================= atomic append
    def atomic_append(self, path: str, length: int,
                      data: Optional[bytes] = None, create: bool = True,
                      **create_params):
        """Figure 4: optimistic append, retrying on commit conflicts."""
        while True:
            fh = yield from self.open(path, "w", create=create,
                                      **create_params)
            try:
                yield from self.write(fh, fh.size, length, data=data,
                                      sequential=True)
                version = yield from self.close(fh)
                return version
            except CommitConflict:
                yield from self.drop(fh)
                # Randomized backoff keeps racing appenders from livelock.
                yield self.sim.timeout(self.rng.uniform(0.002, 0.02))
                continue
