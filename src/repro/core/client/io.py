"""The data path: open, read, write, truncate, unlink, atomic append.

Covers Figure 6's read path, the attached small-file fast path
(Section 3.2), the versioning-off in-place path (Section 3.5), and the
Figure 4 atomic-append recipe.

Reads and writes are *vectored*: the layout's pieces are grouped by
resolved owner and each group travels as one ``seg_read_vec`` /
``seg_write_vec`` RPC.  Per-piece status in the reply lets a partial
failure degrade to the single-piece retry path (``_read_piece_single``,
``_write_piece_single``) — the only places, besides the exact-version
scan in ``_load_index``, that still issue scalar ``seg_read``/``seg_write``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.client.handle import (
    CommitConflict,
    ConflictError,
    FileHandle,
    NotFoundError,
    SorrentoError,
    TimeoutError,
    _meta_size,
    make_layout_for,
)
from repro.network.message import RpcRemoteError, RpcTimeout
from repro.sim import gather

#: seg_idx -> (owner, version) resolution for a batch of layout pieces.
OwnerMap = Dict[int, Tuple[str, int]]


class DataPathMixin:
    """Byte-range I/O against segment owners."""

    # ============================================================== open
    def open(self, path: str, mode: str = "r", create: bool = False,
             meta_only: bool = False, version: Optional[int] = None,
             **create_params):
        """Open a file; "w" starts a shadow session on the latest version.

        ``meta_only`` fetches just the layout from the index segment
        (cheaper; used by unlink, which never reads file data).
        ``version`` opens a historical (milestone) version read-only.
        """
        if mode not in ("r", "w"):
            raise ValueError(f"bad mode {mode!r}")
        if version is not None and mode != "r":
            raise SorrentoError("historical versions are read-only")
        self.stats["opens"] += 1
        yield self.node.cpu(self.params.client_op_cpu)
        # Plain read opens may reuse a recently-seen namespace entry; any
        # write-mode, historical, or unlink-bound open always asks the
        # namespace server (a stale base version would surface as spurious
        # commit conflicts, not just a stale snapshot).
        entry = None
        cacheable = (mode == "r" and version is None and not meta_only
                     and self.params.entry_cache_enabled)
        if cacheable:
            entry = self.entry_cache.get(self._entry_key(path), self.sim.now)
            self._cache_note("entry_hits" if entry is not None
                             else "entry_misses")
        if entry is None:
            try:
                entry = yield from self._call_ns(
                    "ns_lookup", path, rtts=self.params.open_rtts)
            except NotFoundError:
                if not (create and mode == "w"):
                    raise
                try:
                    entry = yield from self.create(path, **create_params)
                except ConflictError:
                    # Lost a create race: the other writer's entry is ours too.
                    entry = yield from self._call_ns("ns_lookup", path)
            if self.params.entry_cache_enabled:
                self.entry_cache.put(self._entry_key(path), entry, self.sim.now)
        if version is not None:
            if not 0 < version <= entry["version"]:
                raise NotFoundError(
                    f"{path}: no version {version} (latest is "
                    f"{entry['version']})"
                )
            entry = dict(entry)
            entry["version"] = version
        fh = FileHandle(path=path, entry=entry, mode=mode,
                        layout=make_layout_for(entry),
                        attached=None, base_version=entry["version"])
        if entry["version"] > 0:
            yield from self._load_index(fh, meta_only=meta_only)
        return fh

    def _load_index(self, fh: FileHandle, meta_only: bool = False) -> None:
        """Fetch the index segment (Figure 6 step 2) and decode the layout.

        The namespace's latest version is authoritative; location-table
        announcements are asynchronous, so we insist on reading exactly
        ``entry["version"]`` of the index segment (retrying briefly while
        propagation is in flight) — otherwise a reopen right after a
        commit could resurrect a stale layout and lose that commit.

        The version gate is also what makes the index-meta cache safe: a
        cached meta is only used when it matches the entry version
        exactly, so staleness shows up as a miss, never as wrong data.
        (Versioning-off files rewrite their index at version 1 forever,
        which defeats the gate — they always fetch fresh.)
        """
        want = fh.entry["version"]
        meta = None
        use_meta_cache = self.params.meta_cache_enabled and fh.versioning
        if use_meta_cache:
            cached = self.meta_cache.get(fh.fileid, self.sim.now)
            if cached is not None and cached[0] == want:
                self._cache_note("meta_hits")
                meta, fh.index_owner = cached[1], cached[2]
            else:
                self._cache_note("meta_misses")
        for attempt in range(6):
            if meta is not None:
                break
            resp = yield from self._locate(
                fh.fileid,
                read={"offset": 0, "length": self.params.attach_max + 256,
                      "meta_only": meta_only},
            )
            inline = resp.get("inline")
            if inline is not None and inline["version"] == want:
                meta = inline["meta"]
                fh.index_owner = resp["owners"][0][0] if resp["owners"] else None
                break
            # The table's advertised versions may lag: try every owner for
            # the exact version we need.
            for owner, _v in resp["owners"]:
                try:
                    r = yield from self.rpc.call(
                        owner, "seg_read",
                        {"segid": fh.fileid, "version": want, "offset": 0,
                         "length": 0, "meta_only": meta_only},
                        size=64,
                    )
                except (RpcTimeout, RpcRemoteError):
                    continue
                self._learn_hint(fh.fileid, r)
                meta = r["meta"]
                fh.index_owner = owner
                break
            if meta is not None:
                break
            yield self.sim.timeout(0.02 * (attempt + 1))
        if meta is None:
            raise TimeoutError(
                f"index segment of {fh.path} v{want} unavailable"
            )
        if use_meta_cache:
            self.meta_cache.put(fh.fileid, (want, meta, fh.index_owner),
                                self.sim.now)
        fh.layout = meta["layout"].clone()
        fh.attached_len = meta.get("attached_len", 0)
        fh.attached = meta.get("attached")

    # ============================================================== read
    def read(self, fh: FileHandle, offset: int, length: int,
             sequential: bool = False):
        """Read a byte range; returns bytes, or None for synthetic content."""
        self._check_open(fh)
        self.stats["reads"] += 1
        yield self.node.cpu(self.params.client_op_cpu)
        end = min(offset + length, fh.size)
        if end <= offset:
            return b""
        length = end - offset
        if not fh.layout.segments:  # attached small file
            if fh.attached is None:
                return None
            return fh.attached[offset:offset + length]
        pieces = fh.layout.locate(offset, length)
        chunks = yield from self._read_pieces(fh, pieces, sequential)
        if any(c is None for c in chunks):
            return None
        return b"".join(chunks)

    def _resolve_read_owners(self, fh: FileHandle, pieces) -> OwnerMap:
        """(owner, version) per segment index: session state first (shadow
        copies, segments created this session), then the location cache /
        home host — parallel lookups for the distinct unresolved SegIDs."""
        owners: OwnerMap = {}
        unresolved: List[int] = []
        for seg_idx in dict.fromkeys(p[0] for p in pieces):
            ref = fh.layout.segments[seg_idx]
            shadow = fh.shadows.get(ref.segid)
            if shadow is not None:
                owners[seg_idx] = shadow
            elif ref.segid in fh.new_segments:
                owners[seg_idx] = (fh.new_segments[ref.segid], 1)
            else:
                unresolved.append(seg_idx)
        if unresolved:
            resps = yield from gather(self.sim, [
                self._locate(fh.layout.segments[s].segid)
                for s in unresolved
            ])
            for seg_idx, resp in zip(unresolved, resps):
                ref = fh.layout.segments[seg_idx]
                owner, _have = self._pick_owner(resp["owners"])
                # Read exactly the version the index names (snapshot
                # isolation); the table may advertise newer or older.
                owners[seg_idx] = (owner, ref.version)
        return owners

    def _read_pieces(self, fh: FileHandle, pieces, sequential: bool):
        """Fetch pieces grouped by owner; returns chunks in piece order."""
        owners = yield from self._resolve_read_owners(fh, pieces)
        chunks: List[Optional[bytes]] = [None] * len(pieces)
        if not self.params.vectored_io:
            def scalar(i):
                chunks[i] = yield from self._read_piece_single(
                    fh, pieces[i], owners[pieces[i][0]], sequential)

            yield from gather(self.sim,
                              [scalar(i) for i in range(len(pieces))])
            return chunks
        groups: Dict[str, List[int]] = {}
        for i, piece in enumerate(pieces):
            groups.setdefault(owners[piece[0]][0], []).append(i)

        def fetch_group(owner: str, idxs: List[int]):
            if len(idxs) == 1:
                i = idxs[0]
                chunks[i] = yield from self._read_piece_single(
                    fh, pieces[i], owners[pieces[i][0]], sequential)
                return
            reqs = []
            for i in idxs:
                seg_idx, seg_off, n = pieces[i]
                ref = fh.layout.segments[seg_idx]
                reqs.append({"segid": ref.segid,
                             "version": owners[seg_idx][1],
                             "offset": seg_off, "length": n})
            try:
                r = yield from self.rpc.call(
                    owner, "seg_read_vec",
                    {"pieces": reqs, "sequential": sequential},
                    size=64 + 16 * len(reqs),
                )
            except (RpcTimeout, RpcRemoteError):
                # The whole group failed (owner dead/unreachable): drop
                # its cached claims and recover piece by piece.
                self.loc_cache.evict_owner(owner)
                for i in idxs:
                    chunks[i] = yield from self._read_piece_fallback(
                        fh, pieces[i], sequential)
                return
            self._cache_note("vec_rpcs")
            self._cache_note("vec_pieces", len(idxs))
            for i, pr in zip(idxs, r["pieces"]):
                segid = fh.layout.segments[pieces[i][0]].segid
                if pr.get("ok"):
                    self._learn_hint(segid, pr)
                    chunks[i] = pr["data"]
                else:
                    # Partial failure (version gone, disk error): the
                    # single-piece retry path takes over for this piece.
                    self._evict_location(segid)
                    chunks[i] = yield from self._read_piece_fallback(
                        fh, pieces[i], sequential)

        yield from gather(self.sim, [
            fetch_group(owner, idxs) for owner, idxs in groups.items()
        ])
        return chunks

    def _read_piece_single(self, fh: FileHandle, piece,
                           ov: Tuple[str, int], sequential: bool):
        """Scalar read of one piece (single-owner groups + cache-off mode)."""
        seg_idx, seg_off, n = piece
        ref = fh.layout.segments[seg_idx]
        owner, version = ov
        try:
            r = yield from self.rpc.call(
                owner, "seg_read",
                {"segid": ref.segid, "version": version, "offset": seg_off,
                 "length": n, "sequential": sequential},
                size=64,
            )
        except (RpcTimeout, RpcRemoteError):
            chunk = yield from self._read_piece_fallback(fh, piece, sequential)
            return chunk
        self._learn_hint(ref.segid, r)
        return r["data"]

    def _read_piece_fallback(self, fh: FileHandle, piece, sequential: bool):
        """Owner died or lacks the version: evict the cached claim, probe
        over multicast (Section 3.4.2), and read whatever version the
        responding owner holds."""
        seg_idx, seg_off, n = piece
        ref = fh.layout.segments[seg_idx]
        self._evict_location(ref.segid)
        other = yield from self._probe(ref.segid)
        r = yield from self.rpc.call(
            other[0], "seg_read",
            {"segid": ref.segid, "version": None, "offset": seg_off,
             "length": n, "sequential": sequential},
            size=64,
        )
        self._learn_hint(ref.segid, r)
        return r["data"]

    # ============================================================== write
    def write(self, fh: FileHandle, offset: int, length: int,
              data: Optional[bytes] = None, sequential: bool = False):
        """Write a byte range into the session's shadow copies."""
        self._check_open(fh)
        if fh.mode != "w":
            raise SorrentoError("file not open for writing")
        if data is not None and len(data) != length:
            raise SorrentoError("data/length mismatch")
        self.stats["writes"] += 1
        yield self.node.cpu(self.params.client_op_cpu)
        if not fh.versioning:
            yield from self._write_in_place(fh, offset, length, data, sequential)
            return
        fh.dirty = True
        end = offset + length
        # Small files stay attached to the index segment.
        if not fh.layout.segments and end <= self.params.attach_max:
            buf = bytearray(fh.attached if fh.attached is not None
                            else b"\x00" * fh.attached_len)
            if len(buf) < end:
                buf.extend(b"\x00" * (end - len(buf)))
            if data is not None:
                buf[offset:end] = data
            fh.attached = bytes(buf)
            fh.attached_len = len(buf)
            return
        if not fh.layout.segments and fh.attached_len > 0:
            yield from self._spill_attached(fh)
        if end > fh.layout.size:
            created = fh.layout.grow_to(end, self.ids.new_id)
            for ref in created:
                yield from self._create_segment(fh, ref)
        pieces = fh.layout.locate(offset, length)
        # Resolve each distinct segment's writable version first (serially)
        # so the parallel piece writes below never race to create the same
        # shadow or striped segment.
        owners: OwnerMap = {}
        for seg_idx in dict.fromkeys(p[0] for p in pieces):
            owners[seg_idx] = yield from self._writable_version(
                fh, fh.layout.segments[seg_idx])
        yield from self._write_pieces(fh, pieces, data, owners, sequential)

    def _write_pieces(self, fh: FileHandle, pieces, data: Optional[bytes],
                      owners: OwnerMap, sequential: bool,
                      in_place: bool = False):
        """Push pieces grouped by owner, one seg_write_vec per group."""
        spans, pos = [], 0
        for seg_idx, seg_off, n in pieces:
            chunk = data[pos:pos + n] if data is not None else None
            pos += n
            spans.append((seg_idx, seg_off, n, chunk))
        if not self.params.vectored_io:
            yield from gather(self.sim, [
                self._write_piece_single(fh, span, owners[span[0]],
                                         sequential, in_place)
                for span in spans
            ])
            return
        groups: Dict[str, List[int]] = {}
        for i, span in enumerate(spans):
            groups.setdefault(owners[span[0]][0], []).append(i)

        def push_group(owner: str, idxs: List[int]):
            if len(idxs) == 1:
                span = spans[idxs[0]]
                yield from self._write_piece_single(
                    fh, span, owners[span[0]], sequential, in_place)
                return
            reqs, nbytes = [], 0
            for i in idxs:
                seg_idx, seg_off, n, chunk = spans[i]
                req = {"segid": fh.layout.segments[seg_idx].segid,
                       "version": owners[seg_idx][1],
                       "offset": seg_off, "length": n, "data": chunk}
                if in_place:
                    req["in_place"] = True
                reqs.append(req)
                nbytes += n
            try:
                r = yield from self.rpc.call(
                    owner, "seg_write_vec", {"pieces": reqs},
                    size=64 + nbytes + 16 * len(reqs),
                )
            except RpcTimeout as exc:
                self.loc_cache.evict_owner(owner)
                if in_place:
                    raise
                # The shadows' owner died mid-session: the write (and the
                # whole session) cannot complete; the shadow TTL cleans up.
                for i in idxs:
                    fh.shadows.pop(fh.layout.segments[spans[i][0]].segid,
                                   None)
                first = fh.layout.segments[spans[idxs[0]][0]].segid
                raise TimeoutError(
                    f"owner of segment {first:#x} died mid-write: {exc}"
                ) from exc
            self._cache_note("vec_rpcs")
            self._cache_note("vec_pieces", len(idxs))
            for i, pr in zip(idxs, r["pieces"]):
                segid = fh.layout.segments[spans[i][0]].segid
                if pr.get("ok"):
                    self._learn_hint(segid, pr)
                else:
                    # Per-piece failure degrades to the scalar path, which
                    # raises exactly what a scalar write would have.
                    self._evict_location(segid)
                    span = spans[i]
                    yield from self._write_piece_single(
                        fh, span, owners[span[0]], sequential, in_place)

        yield from gather(self.sim, [
            push_group(owner, idxs) for owner, idxs in groups.items()
        ])

    def _write_piece_single(self, fh: FileHandle, span,
                            ov: Tuple[str, int], sequential: bool,
                            in_place: bool = False):
        """Scalar write of one piece (single-owner groups + retry path)."""
        seg_idx, seg_off, n, chunk = span
        ref = fh.layout.segments[seg_idx]
        owner, version = ov
        req = {"segid": ref.segid, "version": version, "offset": seg_off,
               "length": n, "data": chunk}
        if in_place:
            req["in_place"] = True
        try:
            r = yield from self.rpc.call(owner, "seg_write", req,
                                         size=64 + n)
        except RpcTimeout as exc:
            self.loc_cache.evict_owner(owner)
            if in_place:
                raise
            # The shadow's owner died mid-session: the write (and the
            # whole session) cannot complete; the shadow TTL cleans up.
            fh.shadows.pop(ref.segid, None)
            raise TimeoutError(
                f"owner of segment {ref.segid:#x} died mid-write: {exc}"
            ) from exc
        self._learn_hint(ref.segid, r)

    def _spill_attached(self, fh: FileHandle):
        """An attached file outgrew 60 KB: move its bytes into a real
        data segment before continuing."""
        payload, n = fh.attached, fh.attached_len
        fh.attached, fh.attached_len = None, 0
        created = fh.layout.grow_to(n, self.ids.new_id)
        for ref in created:
            yield from self._create_segment(fh, ref)
        pieces = fh.layout.locate(0, n)
        owners: OwnerMap = {}
        for seg_idx in dict.fromkeys(p[0] for p in pieces):
            owners[seg_idx] = yield from self._writable_version(
                fh, fh.layout.segments[seg_idx])
        yield from self._write_pieces(fh, pieces, payload, owners, True)

    # ================================================ versioning-off path
    def truncate(self, fh: FileHandle, size: int):
        """Pre-size a versioning-disabled file (grow only).

        Shared-file users size the file up front (as BTIO declares its
        solution size); concurrent *growth* from different clients is
        inherently racy because each client's layout copy would mint
        different segments for the same byte ranges.
        """
        self._check_open(fh)
        if fh.versioning:
            raise SorrentoError(
                "truncate is for versioning-disabled files; versioned "
                "files grow through write+commit")
        if size < fh.layout.size:
            raise SorrentoError("shrinking is not supported")
        lock = self._fh_meta_lock(fh)
        grant = lock.request()
        yield grant
        try:
            yield from self._grow_in_place(fh, size)
        finally:
            lock.release()
        return size

    def _fh_meta_lock(self, fh: FileHandle):
        """Per-handle mutex for layout growth: concurrent writes on one
        handle (list-I/O) must not race to create the same segments."""
        lock = getattr(fh, "_meta_lock", None)
        if lock is None:
            from repro.sim import Resource

            lock = Resource(self.sim, 1)
            fh._meta_lock = lock
        return lock

    def _write_in_place(self, fh: FileHandle, offset: int, length: int,
                        data: Optional[bytes], sequential: bool):
        """Versioning-disabled path: mutate committed segments directly."""
        end = offset + length
        lock = self._fh_meta_lock(fh)
        grant = lock.request()
        yield grant
        try:
            yield from self._grow_in_place(fh, end)
        finally:
            lock.release()
        pieces = fh.layout.locate(offset, length)
        owners: OwnerMap = {}
        unresolved: List[int] = []
        for seg_idx in dict.fromkeys(p[0] for p in pieces):
            ref = fh.layout.segments[seg_idx]
            if ref.segid in fh.new_segments:
                owners[seg_idx] = (fh.new_segments[ref.segid], 1)
            else:
                unresolved.append(seg_idx)
        if unresolved:
            resps = yield from gather(self.sim, [
                self._locate(fh.layout.segments[s].segid)
                for s in unresolved
            ])
            for seg_idx, resp in zip(unresolved, resps):
                owner, _v = self._pick_owner(resp["owners"])
                owners[seg_idx] = (owner, 1)
        yield from self._write_pieces(fh, pieces, data, owners, sequential,
                                      in_place=True)

    def _grow_in_place(self, fh: FileHandle, end: int):
        if end > fh.layout.size:
            created = fh.layout.grow_to(end, self.ids.new_id)
            for ref in created:
                yield from self._create_segment(fh, ref, committed=True,
                                                degree=1)
            # Unversioned layout changes publish immediately via the index.
            yield from self._publish_unversioned_index(fh)

    def _publish_unversioned_index(self, fh: FileHandle):
        """Keep the unversioned file's index segment current (v1 rewrite)."""
        meta = {"layout": fh.layout.clone(),
                "attached": None, "attached_len": 0}
        if fh.index_owner is None:
            owner = self._place_new_segment(fh.fileid, 4096, fh.entry["alpha"])
            yield from self.rpc.call(
                owner, "seg_create",
                {"segid": fh.fileid, "version": 1, "committed": True,
                 "degree": 1, "alpha": fh.entry["alpha"], "meta": meta},
                size=_meta_size(meta),
            )
            fh.index_owner = owner
            self.loc_cache.learn(fh.fileid, owner, 1, self.sim.now)
            if fh.entry["version"] == 0:
                yield from self._ns_commit_cycle(fh)
        else:
            # Rewrite meta on the existing owner (segment stays v1).
            yield from self.rpc.call(
                fh.index_owner, "seg_write",
                {"segid": fh.fileid, "version": 1, "offset": 0, "length": 0,
                 "in_place": True},
                size=_meta_size(meta),
            )
            # Owner-side meta update rides on the same call in the real
            # system; emulate by a direct state poke through seg_commit.
            yield from self.rpc.call(
                fh.index_owner, "seg_commit",
                {"segid": fh.fileid, "version": 1, "meta": meta},
                size=_meta_size(meta),
            )

    def _ns_commit_cycle(self, fh: FileHandle):
        """Advance the namespace version 0 -> 1 for unversioned files."""
        resp = yield from self._call_ns(
            "ns_begin_commit", {"path": fh.path, "base_version": 0}, size=96)
        if resp["status"] != "ok":
            raise CommitConflict(f"{fh.path}: {resp['status']}")
        entry = yield from self._call_ns(
            "ns_complete_commit", {"path": fh.path, "new_version": 1}, size=96)
        fh.entry = entry
        fh.base_version = 1
        if self.params.entry_cache_enabled:
            self.entry_cache.put(self._entry_key(fh.path), entry, self.sim.now)

    # ============================================================== unlink
    def unlink(self, path: str):
        """Remove a file, eagerly deleting every replica of its segments.

        Replicas of one segment are deleted in turn (this is what makes
        unlink response time grow with the replication degree, Figure 9);
        distinct segments go in parallel.
        """
        yield self.node.cpu(self.params.client_op_cpu)
        fh = yield from self.open(path, "r", meta_only=True)
        entry = yield from self._call_ns("ns_unlink", path)
        segids = [ref.segid for ref in fh.layout.segments] + [entry["fileid"]]
        # The file is gone: drop every cached trace of it (organic
        # invalidation, not staleness — no counter).
        self.entry_cache.evict(self._entry_key(path))
        self.meta_cache.evict(entry["fileid"])
        for segid in segids:
            self.loc_cache.evict(segid)
        deletions = [self._delete_everywhere(segid) for segid in segids]
        yield from gather(self.sim, deletions)
        return entry

    def _delete_everywhere(self, segid: int):
        try:
            # Deletion must see the full owner list, not a cached subset.
            resp = yield from self._locate(segid, refresh=True)
        except SorrentoError:
            return
        owners = {h for h, _ in resp["owners"]}
        for host in sorted(owners):
            try:
                yield from self.rpc.call(host, "seg_delete",
                                         {"segid": segid}, size=48)
            except (RpcTimeout, RpcRemoteError):
                pass

    # ======================================================= atomic append
    def atomic_append(self, path: str, length: int,
                      data: Optional[bytes] = None, create: bool = True,
                      **create_params):
        """Figure 4: optimistic append, retrying on commit conflicts."""
        while True:
            fh = yield from self.open(path, "w", create=create,
                                      **create_params)
            try:
                yield from self.write(fh, fh.size, length, data=data,
                                      sequential=True)
                version = yield from self.close(fh)
                return version
            except CommitConflict:
                yield from self.drop(fh)
                # Randomized backoff keeps racing appenders from livelock.
                yield self.sim.timeout(self.rng.uniform(0.002, 0.02))
                continue
