"""The client stub proper: one object per (node, volume) binding."""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional

from repro.core.client.handle import FileHandle, SorrentoError
from repro.core.client.io import DataPathMixin
from repro.core.client.namespace_ops import NamespaceOpsMixin
from repro.core.client.placement import PlacementMixin
from repro.core.client.router import NamespaceRouter
from repro.core.client.versioning import VersioningMixin
from repro.core.hashing import HashRing
from repro.core.ids import IdGenerator
from repro.core.location import ClientLocationCache, TtlCache
from repro.core.membership import MembershipManager
from repro.core.params import SorrentoParams
from repro.runtime import CACHE
from repro.sim import Event


class SorrentoClient(NamespaceOpsMixin, PlacementMixin, DataPathMixin,
                     VersioningMixin):
    """Client stub bound to one node and one volume.

    All methods that touch the network are generators meant to run
    inside sim processes (``yield from client.open(...)``).
    """

    def __init__(self, node, ns_host, params: Optional[SorrentoParams] = None,
                 rng: Optional[random.Random] = None,
                 membership: Optional[MembershipManager] = None,
                 ns_partitions: Optional[List[str]] = None,
                 ns_shards: Optional[Dict[str, List[str]]] = None,
                 ns_shard_epoch: int = 1):
        self.node = node
        self.sim = node.sim
        self.params = params or SorrentoParams()
        # crc32, not hash(): the builtin string hash is randomized per
        # interpreter launch, breaking cross-process replay.
        self.rng = rng or random.Random(zlib.crc32(node.hostid.encode()) & 0xFFFFFF)
        self.rpc = node.runtime
        self.rpc.configure(policy=self.params.rpc_policy())
        # All namespace routing — failover, legacy partitioning, and the
        # sharded ring with redirect chasing — lives in the router.
        # ns_host may be a single hostid or a failover list
        # [primary, standby, ...] when namespace replication is on.
        self.router = NamespaceRouter(
            self.rpc, self.sim, self.params, ns_host,
            partitions=ns_partitions, shards=ns_shards,
            epoch=ns_shard_epoch, note=self._cache_note,
        )
        self.membership = membership or MembershipManager(
            node, interval=self.params.heartbeat_interval, announce=False
        )
        self.ring = HashRing(self.params.ring_vnodes)
        # Membership events splice the consistent-hash ring incrementally
        # (the ring also reconciles lazily against any explicit view).
        self.membership.on_join.append(self.ring.add_host)
        self.membership.on_leave.append(self.ring.remove_host)
        self.ids = IdGenerator(node.hostid, self.rng, clock=lambda: self.sim.now)
        self._probe_waiters: Dict[int, Event] = {}
        if "loc_probe_hit" not in self.rpc.handlers:
            self.rpc.register("loc_probe_hit", self._on_probe_hit)
        self.stats = {"opens": 0, "reads": 0, "writes": 0, "commits": 0,
                      "conflicts": 0, "probe_fallbacks": 0,
                      "loc_hits": 0, "loc_misses": 0, "loc_stale": 0,
                      "entry_hits": 0, "entry_misses": 0,
                      "meta_hits": 0, "meta_misses": 0,
                      "vec_rpcs": 0, "vec_pieces": 0,
                      "route_hits": 0, "route_misses": 0, "ns_redirects": 0,
                      "mirror_hits": 0, "mirror_fallbacks": 0}
        # Read-placement preference: when True, reads served by a replica
        # set that includes this very node short-circuit to the local copy
        # instead of spreading load at random.  Off by default (the random
        # spread is the paper's behaviour); compute workers switch it on so
        # a pre-staged input is actually read locally.
        self.prefer_local = False
        # The caching-and-batching plane: location/entry/meta caches plus
        # the membership hook that evicts a dead owner's claims.
        self.loc_cache = ClientLocationCache(self.params.loc_cache_ttl,
                                             self.params.loc_cache_capacity)
        self.entry_cache = TtlCache(self.params.entry_cache_ttl,
                                    self.params.entry_cache_capacity)
        self.meta_cache = TtlCache(self.params.meta_cache_ttl,
                                   self.params.meta_cache_capacity)
        self.membership.on_leave.append(self._on_member_death)

    # -------------------------------------------------------- cache plane
    def _cache_note(self, counter: str, n: int = 1) -> None:
        """Count a cache event both locally and in the deployment registry
        (scope "cache"), where it lands in metrics_rows next to the RPCs
        it saved."""
        self.stats[counter] += n
        registry = self.rpc.registry
        if registry is not None:
            cell = registry.stats(CACHE, counter)
            for _ in range(n):
                cell.observe_oneway()

    def _on_member_death(self, hostid: str) -> None:
        """Membership death event: drop every cached claim by the node."""
        evicted = self.loc_cache.evict_owner(hostid)
        if evicted:
            self._cache_note("loc_stale", evicted)

    # ------------------------------------------------------------- misc
    @staticmethod
    def _check_open(fh: FileHandle) -> None:
        if fh.closed:
            raise SorrentoError(f"{fh.path}: handle is closed")
