"""Client-side namespace routing: the metadata front door's core.

Every namespace RPC a :class:`SorrentoClient` issues goes through one
:class:`NamespaceRouter`, which supports three deployments:

- **sharded** — the directory tree is partitioned across N shard
  servers by top-level prefix on a consistent-hash ring.  The router
  keeps its own ring snapshot plus a TTL'd route cache keyed by
  *(shard-epoch, prefix)*; when a ring change makes a cached route
  stale, the server's ``EWRONGSHARD`` redirect carries the owner and
  the new epoch, the router learns both, and the epoch in the cache key
  strands every stale entry at once (no redirect loops).
- **partitioned** (legacy) — stateless hash of the top-level directory
  over a fixed host list.
- **single / failover** — one primary plus optional hot standbys,
  rotating to the next host on RPC timeout.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional

from repro.core.client.handle import (
    ConflictError,
    NotFoundError,
    SorrentoError,
    TimeoutError,
    WrongShardError,
)
from repro.core.hashing import HashRing
from repro.core.location import TtlCache
from repro.core.namespace import _prefix_point, shard_prefix
from repro.network.message import RpcRemoteError, RpcTimeout

#: Metadata ops a read-only namespace mirror can answer (bounded-stale
#: snapshots are the mirror contract; anything mutating must go to the
#: authoritative shard).
READ_ONLY = frozenset({"ns_lookup", "ns_list"})


def _namespace_error(error: str) -> SorrentoError:
    """Map a remote ``NamespaceError`` string onto the typed hierarchy."""
    if "EWRONGSHARD" in error:
        owner: Optional[str] = None
        epoch = 0
        for tok in error.split():
            if tok.startswith("owner="):
                owner = tok[len("owner="):]
            elif tok.startswith("epoch="):
                try:
                    epoch = int(tok[len("epoch="):])
                except ValueError:
                    pass
        return WrongShardError(error, owner=owner, epoch=epoch)
    if "ENOENT" in error:
        return NotFoundError(error)
    if "EEXIST" in error or "ENOTEMPTY" in error:
        return ConflictError(error)
    return SorrentoError(error)


class NamespaceRouter:
    """Resolves the namespace server that owns a path and calls it.

    ``shards`` maps shard name (the primary's hostid) to the failover
    host list ``[primary, standby, ...]`` for that shard.  ``note`` is
    the client's cache-stats hook (``route_hits`` / ``route_misses`` /
    ``ns_redirects``).
    """

    def __init__(self, rpc, sim, params, ns_hosts,
                 partitions: Optional[List[str]] = None,
                 shards: Optional[Dict[str, List[str]]] = None,
                 epoch: int = 1,
                 note: Optional[Callable[..., None]] = None):
        self.rpc = rpc
        self.sim = sim
        self.params = params
        self.ns_hosts: List[str] = ([ns_hosts] if isinstance(ns_hosts, str)
                                    else list(ns_hosts))
        self._active = 0
        self.partitions = list(partitions) if partitions else None
        self.shards: Dict[str, List[str]] = {
            name: list(hosts) for name, hosts in (shards or {}).items()
        }
        self.sharded = bool(self.shards)
        # Epoch 0 = unsharded (a constant, so epoch-composed cache keys
        # degenerate to plain path keys); sharded routers start at the
        # deployment's epoch and advance as redirects teach them.
        self.epoch = epoch if self.sharded else 0
        self._ring = HashRing(params.ns_shard_vnodes)
        self._route_cache = TtlCache(params.ns_route_cache_ttl,
                                     params.ns_route_cache_capacity)
        self._shard_active: Dict[str, int] = {}
        self._note = note or (lambda counter, n=1: None)
        # Geo-aware reads: a full-tree namespace mirror (usually on this
        # client's own tier) preferred for read-only metadata ops, so a
        # WAN satellite resolves lookups without a central roundtrip.
        self.mirror: Optional[str] = None

    # ------------------------------------------------------------ resolve
    def partition_for(self, payload) -> Optional[str]:
        """Legacy partitioned routing: hash the top-level directory."""
        if self.partitions is None:
            return None
        path = payload if isinstance(payload, str) else payload.get("path", "")
        top = path.split("/", 2)[1] if path.startswith("/") else path
        idx = int.from_bytes(
            hashlib.sha1(top.encode()).digest()[:4], "big"
        ) % len(self.partitions)
        return self.partitions[idx]

    def owner_shard(self, path: str) -> Optional[str]:
        """Best-known owning shard, bypassing the route cache (used for
        same-shard vs cross-shard decisions); None when not sharded."""
        if not self.sharded:
            return None
        return self._ring.home_host(_prefix_point(shard_prefix(path)),
                                    sorted(self.shards))

    def shard_for(self, path: str) -> str:
        """Owning shard for ``path``, through the (epoch, prefix) cache."""
        prefix = shard_prefix(path)
        now = self.sim.now
        cached = self._route_cache.get((self.epoch, prefix), now)
        if cached is not None:
            self._note("route_hits")
            return cached
        self._note("route_misses")
        shard = self._ring.home_host(_prefix_point(prefix),
                                     sorted(self.shards))
        self._route_cache.put((self.epoch, prefix), shard, now)
        return shard

    def route_host(self, path: str) -> str:
        """The single host a path-addressed RPC would go to right now."""
        if self.sharded:
            shard = self.owner_shard(path)
            hosts = self.shards.get(shard) or [shard]
            return hosts[self._shard_active.get(shard, 0) % len(hosts)]
        partition = self.partition_for(path)
        if partition is not None:
            return partition
        return self.ns_hosts[self._active]

    def learn(self, path: str, owner: Optional[str], epoch: int) -> None:
        """Absorb an ``EWRONGSHARD`` redirect: adopt the newer epoch
        (stranding every route cached under the old one) and pin the
        prefix to the named owner."""
        if epoch > self.epoch:
            self.epoch = epoch
        if owner is None:
            return
        if owner not in self.shards:
            self.shards[owner] = [owner]
        self._route_cache.put((self.epoch, shard_prefix(path)), owner,
                              self.sim.now)

    def learn_shards(self, epoch: int, shards: List[str]) -> List[str]:
        """Absorb a shard-map snapshot (piggybacked on a root-listing
        reply).  On a newer epoch the known shard set is replaced with
        the authoritative one (keeping any standby lists already
        learned); on the same epoch it is unioned.  Returns the shard
        names that are new to this router."""
        if epoch < self.epoch:
            return []
        new = [s for s in shards if s not in self.shards]
        if epoch > self.epoch:
            self.epoch = epoch
            self.shards = {s: self.shards.get(s, [s]) for s in shards}
        else:
            for s in new:
                self.shards[s] = [s]
        return new

    # --------------------------------------------------------------- call
    def call(self, service: str, payload, size: int = 64, rtts: int = 1):
        """Issue one namespace RPC, routing/failing over/redirecting as
        the deployment requires.  Raises the typed client errors."""
        if self.mirror is not None and service in READ_ONLY:
            try:
                result = yield from self.rpc.call(
                    self.mirror, service, payload, size=size, rtts=rtts,
                )
            except RpcRemoteError as exc:
                if "NamespaceError" not in exc.error:
                    raise
                err = _namespace_error(exc.error)
                if not isinstance(err, NotFoundError):
                    raise err from exc
                # Not in the mirror (yet): bounded staleness means the
                # entry may exist centrally — fall through and ask the
                # authoritative server over the WAN.
                self._note("mirror_fallbacks")
            except RpcTimeout:
                self._note("mirror_fallbacks")
            else:
                self._note("mirror_hits")
                return result
        if self.sharded:
            result = yield from self._call_sharded(service, payload,
                                                   size, rtts)
            return result
        partition = self.partition_for(payload)
        if partition is not None:
            try:
                result = yield from self.rpc.call(
                    partition, service, payload, size=size, rtts=rtts,
                )
                return result
            except RpcRemoteError as exc:
                if "NamespaceError" in exc.error:
                    raise _namespace_error(exc.error) from exc
                raise
        last_exc = None
        for _attempt in range(len(self.ns_hosts)):
            try:
                result = yield from self.rpc.call(
                    self.ns_hosts[self._active], service, payload,
                    size=size, rtts=rtts,
                )
                return result
            except RpcRemoteError as exc:
                if "NamespaceError" in exc.error:
                    raise _namespace_error(exc.error) from exc
                raise
            except RpcTimeout as exc:
                # Primary unreachable: fail over to the standby replica.
                last_exc = exc
                self._active = (self._active + 1) % len(self.ns_hosts)
        raise TimeoutError(
            f"namespace server unreachable: {last_exc}"
        ) from last_exc

    def _call_sharded(self, service: str, payload, size: int, rtts: int):
        path = payload if isinstance(payload, str) else payload.get("path", "")
        redirects = 0
        while True:
            shard = self.shard_for(path)
            hosts = self.shards.get(shard) or [shard]
            last_exc = None
            for _attempt in range(len(hosts)):
                active = self._shard_active.get(shard, 0) % len(hosts)
                try:
                    result = yield from self.rpc.call(
                        hosts[active], service, payload,
                        size=size, rtts=rtts,
                    )
                    return result
                except RpcRemoteError as exc:
                    if "NamespaceError" not in exc.error:
                        raise
                    err = _namespace_error(exc.error)
                    if isinstance(err, WrongShardError):
                        redirects += 1
                        self._note("ns_redirects")
                        self.learn(path, err.owner, err.epoch)
                        if redirects > self.params.ns_redirect_limit:
                            raise err from exc
                        break  # re-resolve against the repaired route
                    raise err from exc
                except RpcTimeout as exc:
                    # Shard primary unreachable: rotate to its standby.
                    last_exc = exc
                    self._shard_active[shard] = (active + 1) % len(hosts)
            else:
                raise TimeoutError(
                    f"namespace shard {shard} unreachable: {last_exc}"
                ) from last_exc
