"""Client-side session state: errors, file handles, layout bootstrap."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.layout import Layout, make_layout


class SorrentoError(Exception):
    """Base of every client-visible failure.

    Catch this to handle anything the volume can throw; catch the
    subclasses below to react to the three conditions applications
    actually branch on (missing, contended, unreachable)."""


class NotFoundError(SorrentoError):
    """The path, version, or segment does not exist (ENOENT-like)."""


class ConflictError(SorrentoError):
    """Another actor got there first: a commit conflict, an existing
    path on create (EEXIST), or a non-empty directory (ENOTEMPTY)."""


#: Historical name for :class:`ConflictError`; kept as an exact alias so
#: ``except CommitConflict`` keeps catching what it always caught.
CommitConflict = ConflictError


class TimeoutError(SorrentoError):  # noqa: A001 - deliberate shadow
    """A server needed for the operation did not answer in time."""


class WrongShardError(SorrentoError):
    """A namespace shard redirected the request: the path hashed to a
    different shard under the current ring epoch.  The router consumes
    these internally (learning the owner and retrying); applications
    only see one if redirects exceed ``ns_redirect_limit``, which means
    the shard map is churning faster than the client can chase it.

    ``owner`` is the redirecting server's view of the owning shard and
    ``epoch`` its shard-map epoch (0 when the reply did not carry one).
    """

    def __init__(self, message: str, owner: Optional[str] = None,
                 epoch: int = 0):
        super().__init__(message)
        self.owner = owner
        self.epoch = epoch


def _meta_size(meta: Optional[dict]) -> int:
    if not meta:
        return 64
    layout = meta.get("layout")
    nsegs = len(layout.segments) if layout is not None else 0
    attached = meta.get("attached_len", 0)
    return 64 + 24 * nsegs + attached


@dataclass
class FileHandle:
    """An open file session."""

    path: str
    entry: dict
    mode: str                        # "r" or "w"
    layout: Layout
    attached: Optional[bytes]        # small-file payload (or None)
    attached_len: int = 0
    base_version: int = 0
    index_owner: Optional[str] = None
    shadows: Dict[int, Tuple[str, int]] = field(default_factory=dict)
    #          segid -> (owner host, shadow version)
    new_segments: Dict[int, str] = field(default_factory=dict)
    #          segid -> owner host (created this session, version 1)
    dirty: bool = False
    closed: bool = False
    affinity_owner: Optional[str] = None  # where this file's data grows

    @property
    def fileid(self) -> int:
        """The file's 128-bit FileID (= the index segment's SegID)."""
        return self.entry["fileid"]

    @property
    def size(self) -> int:
        """Current logical file size as this session sees it."""
        if self.layout.segments:
            return self.layout.size
        return self.attached_len

    @property
    def versioning(self) -> bool:
        """False when the app manages its own consistency (§3.5)."""
        return self.entry.get("versioning", True)


def make_layout_for(entry: dict) -> Layout:
    """An empty layout matching the entry's declared organization mode."""
    mode = entry.get("mode", "linear")
    if mode == "linear":
        return make_layout("linear", lambda: 0)
    if mode == "striped":
        return make_layout("striped", _EntryIds(entry).new_id,
                           stripe_count=entry.get("stripe_count", 4),
                           fixed_size=entry.get("fixed_size", 0))
    return make_layout("hybrid", lambda: 0,
                       stripe_count=entry.get("stripe_count", 4))


class _EntryIds:
    """Deterministic SegIDs for striped files' up-front segments."""

    def __init__(self, entry: dict):
        self._base = entry["fileid"]
        self._n = 0

    def new_id(self) -> int:
        self._n += 1
        return (self._base + self._n) & ((1 << 128) - 1)
