"""Version-based consistency (Section 3.5; Figure 6 steps 6–9).

Shadow creation, two-phase commit across shadowed segments, conflict
detection, milestones, and the synchronous-commitment option of §3.6.
"""

from __future__ import annotations

from typing import Optional

from repro.core.client.handle import (
    CommitConflict,
    FileHandle,
    SorrentoError,
    TimeoutError,
)
from repro.core.layout import Layout
from repro.core.twophase import CommitAborted, two_phase_commit
from repro.network.message import RpcRemoteError, RpcTimeout
from repro.sim import gather


class VersioningMixin:
    """Shadow/commit/close lifecycle of a write session."""

    def _writable_version(self, fh: FileHandle, ref):
        """The (owner, version) this session writes for a data segment,
        creating the shadow copy on first touch (Figure 6 step 4)."""
        if ref.segid in fh.new_segments:
            return fh.new_segments[ref.segid], 1
        shadow = fh.shadows.get(ref.segid)
        if shadow is not None:
            return shadow
        if fh.base_version == 0:
            # The file was never committed, so this segment (pre-allocated
            # in the layout, e.g. striped mode) has no owner yet.
            owner = yield from self._create_segment(fh, ref)
            return owner, 1
        resp = yield from self._locate(ref.segid)
        last_error: Optional[Exception] = None
        for round_ in range(2):
            saw_race = False
            for owner, _v in resp["owners"] or []:
                try:
                    r = yield from self.rpc.call(
                        owner, "seg_create_shadow",
                        {"segid": ref.segid, "base_version": ref.version},
                        size=64,
                    )
                    fh.shadows[ref.segid] = (owner, r["version"])
                    fh.affinity_owner = owner
                    return owner, r["version"]
                except RpcRemoteError as exc:
                    # Another writer already shadows base+1 on this owner: a
                    # write-write race surfaced early (it would conflict at
                    # commit anyway).
                    if "exists" in str(exc).lower():
                        saw_race = True
                    last_error = exc
                except RpcTimeout as exc:
                    last_error = exc
            if saw_race:
                raise CommitConflict(
                    f"segment {ref.segid:#x} already shadowed by another "
                    f"writer"
                )
            if round_ == 0 and resp.get("cached"):
                # Every cached owner refused or vanished: the claims were
                # stale.  Drop them and retry once against the real table.
                self._evict_location(ref.segid)
                resp = yield from self._locate(ref.segid, refresh=True)
                continue
            break
        raise SorrentoError(
            f"cannot shadow segment {ref.segid:#x}: {last_error}"
        )

    # ========================================================= commit/close
    def commit(self, fh: FileHandle, close: bool = False,
               synchronous: bool = False):
        """Commit the session's shadow copies as the next file version.

        Figure 6 steps (6)-(9): shadow the index segment, get namespace
        approval, 2PC all shadows, then complete the version commit.
        Raises :class:`CommitConflict` if another writer got there first.
        """
        self._check_open(fh)
        if not fh.versioning:
            return fh.entry["version"]
        if not fh.dirty and fh.base_version > 0:
            return fh.entry["version"]
        self.stats["commits"] += 1
        new_version = fh.base_version + 1
        meta = {"layout": self._committed_layout(fh),
                "attached": fh.attached, "attached_len": fh.attached_len}
        # (6) shadow (or create) the index segment.
        try:
            index_owner, index_version = yield from self._prepare_index(fh)
        except RpcTimeout as exc:
            raise TimeoutError(
                f"{fh.path}: index segment owner unreachable: {exc}"
            ) from exc
        # (7) namespace approval, with bounded retry while "busy".
        for attempt in range(20):
            resp = yield from self._call_ns(
                "ns_begin_commit",
                {"path": fh.path, "base_version": fh.base_version}, size=96)
            status = resp["status"]
            if status == "ok":
                break
            if status in ("conflict", "lease_held"):
                yield from self._abort_shadows(fh, index_owner, index_version)
                self.stats["conflicts"] += 1
                raise CommitConflict(f"{fh.path}: {status}")
            yield self.sim.timeout(0.005 * (attempt + 1))
        else:
            yield from self._abort_shadows(fh, index_owner, index_version)
            raise TimeoutError(f"{fh.path}: commit grant starved")
        # (8) 2PC across every shadowed/new segment + the index shadow.
        participants = [
            (owner, {"segid": segid, "version": version})
            for segid, (owner, version) in fh.shadows.items()
        ] + [
            (owner, {"segid": segid, "version": 1})
            for segid, owner in fh.new_segments.items()
        ] + [
            (index_owner, {"segid": fh.fileid, "version": index_version,
                           "meta": meta}),
        ]
        try:
            yield from two_phase_commit(self.rpc, participants)
        except CommitAborted as exc:
            yield from self._call_ns("ns_abort_commit", {"path": fh.path})
            raise SorrentoError(f"{fh.path}: 2PC failed: {exc}") from exc
        # (9) complete the version commit.
        entry = yield from self._call_ns(
            "ns_complete_commit",
            {"path": fh.path, "new_version": new_version}, size=96,
            rtts=self.params.close_rtts if close else 1,
        )
        fh.entry = entry
        fh.base_version = new_version
        fh.index_owner = index_owner
        committed = dict(fh.shadows)
        for segid, (_owner, version) in fh.shadows.items():
            for ref in fh.layout.segments:
                if ref.segid == segid:
                    ref.version = version
        # The just-committed versions are the freshest location knowledge
        # anywhere: seed the caches so the next session (ours or a reopen)
        # skips the lookup roundtrips entirely.
        if self.params.loc_cache_enabled:
            now = self.sim.now
            for segid, (owner, version) in fh.shadows.items():
                self.loc_cache.learn(segid, owner, version, now)
            for segid, owner in fh.new_segments.items():
                self.loc_cache.learn(segid, owner, 1, now)
            self.loc_cache.learn(fh.fileid, index_owner, index_version, now)
        if self.params.entry_cache_enabled:
            self.entry_cache.put(self._entry_key(fh.path), entry, self.sim.now)
        if self.params.meta_cache_enabled and fh.versioning:
            self.meta_cache.put(fh.fileid, (new_version, meta, index_owner),
                                self.sim.now)
        fh.shadows.clear()
        fh.new_segments.clear()
        fh.dirty = False
        if synchronous:
            # Section 3.6's synchronous-commitment option: "detect version
            # discrepancies among [the replicas], and push changes to
            # older replicas before it returns".
            yield from self._sync_replicas(
                list(committed.items()) + [(fh.fileid, (index_owner,
                                                        index_version))])
        return new_version

    def _sync_replicas(self, committed):
        def sync_one(segid, owner, version):
            try:
                # Syncing must see the full replica list, not a cached one.
                resp = yield from self._locate(segid, refresh=True)
            except SorrentoError:
                return
            stale = [h for h, v in resp["owners"]
                     if v < version and h != owner]
            for host in stale:
                try:
                    yield from self.rpc.call(host, "seg_sync", {
                        "segid": segid, "version": version, "from": owner,
                    }, size=48)
                except (RpcTimeout, RpcRemoteError):
                    continue

        yield from gather(self.sim, [
            sync_one(segid, owner, version)
            for segid, (owner, version) in committed
        ])

    def _committed_layout(self, fh: FileHandle) -> Layout:
        layout = fh.layout.clone()
        for ref in layout.segments:
            shadow = fh.shadows.get(ref.segid)
            if shadow is not None:
                ref.version = shadow[1]
            elif ref.segid in fh.new_segments:
                ref.version = 1
        return layout

    def _prepare_index(self, fh: FileHandle):
        if fh.base_version == 0:
            # First commit: the index segment does not exist yet.
            owner = self._place_new_segment(fh.fileid, 4096, fh.entry["alpha"])
            try:
                yield from self.rpc.call(
                    owner, "seg_create",
                    {"segid": fh.fileid, "version": 1,
                     "degree": fh.entry["degree"], "alpha": fh.entry["alpha"],
                     "placement": fh.entry.get("placement", "load")},
                    size=96,
                )
            except RpcRemoteError as exc:
                if "exists" in str(exc).lower():
                    raise CommitConflict(
                        f"{fh.path}: concurrent first commit"
                    ) from exc
                raise
            return owner, 1
        owner = fh.index_owner
        if owner is None:
            # A stale cached index owner would surface here as a spurious
            # "index already advanced" conflict — always ask the table.
            resp = yield from self._locate(fh.fileid, refresh=True)
            owner, _ = self._pick_owner(resp["owners"])
        for round_ in range(2):
            try:
                r = yield from self.rpc.call(
                    owner, "seg_create_shadow",
                    {"segid": fh.fileid, "base_version": fh.base_version},
                    size=64,
                )
            except RpcRemoteError as exc:
                if "exists" in str(exc).lower():
                    # Another writer already shadows base+1: a real race.
                    yield from self._abort_shadows(fh, owner,
                                                   fh.base_version + 1)
                    self.stats["conflicts"] += 1
                    raise CommitConflict(
                        f"{fh.path}: index already advanced") from exc
                if "no committed base" in str(exc):
                    if round_ == 0:
                        # The remembered owner may simply be stale (the
                        # index segment migrated away): drop every cached
                        # claim and retry once against the live table.
                        self.meta_cache.evict(fh.fileid)
                        self._evict_location(fh.fileid)
                        resp = yield from self._locate(fh.fileid,
                                                       refresh=True)
                        owner, _ = self._pick_owner(resp["owners"])
                        continue
                    # A fresh owner also lacks our base version: someone
                    # committed past us.
                    yield from self._abort_shadows(fh, owner,
                                                   fh.base_version + 1)
                    self.stats["conflicts"] += 1
                    raise CommitConflict(
                        f"{fh.path}: index already advanced") from exc
                raise
            return owner, r["version"]

    def _abort_shadows(self, fh: FileHandle, index_owner: str,
                       index_version: int):
        aborts = [
            self.rpc.call(owner, "seg_abort",
                          {"segid": segid, "version": version}, size=48)
            for segid, (owner, version) in fh.shadows.items()
        ]
        aborts.append(
            self.rpc.call(index_owner, "seg_abort",
                          {"segid": fh.fileid, "version": index_version},
                          size=48)
        )

        def safe(gen):
            try:
                yield from gen
            except (RpcTimeout, RpcRemoteError):
                pass

        yield from gather(self.sim, [safe(a) for a in aborts])
        fh.shadows.clear()
        fh.dirty = False

    def close(self, fh: FileHandle, synchronous: bool = False):
        """Close = implicit commit (Section 3.5).

        ``synchronous=True`` selects the paper's synchronous-commitment
        option: replicas are pushed current before close returns.
        """
        if fh.closed:
            return fh.entry["version"]
        try:
            if fh.mode == "w" and fh.versioning \
                    and (fh.dirty or fh.base_version == 0):
                # Closing a brand-new file commits version 1 even when
                # empty: the file must exist durably after create+close.
                version = yield from self.commit(fh, close=True,
                                                 synchronous=synchronous)
            else:
                version = fh.entry["version"]
        finally:
            fh.closed = True
        return version

    def drop(self, fh: FileHandle):
        """Abandon the session's shadow copies without committing."""
        if fh.dirty:
            index_owner = fh.index_owner or self.ns_host
            yield from self._abort_shadows(fh, index_owner, fh.base_version + 1)
        fh.closed = True

    # ========================================================= milestones
    def mark_milestone(self, path: str, version: Optional[int] = None):
        """Make a version permanent: it survives consolidation and stays
        readable via ``open(path, version=...)`` forever.

        Records the milestone at the namespace server, then pins the
        index segment and every data-segment version that file version
        references, on every owner.
        """
        entry = yield from self._call_ns(
            "ns_mark_milestone", {"path": path, "version": version},
            size=96)
        want = version or entry["version"]
        fh = yield from self.open(path, "r", meta_only=True, version=want)
        pins = [(fh.fileid, want)] + [
            (ref.segid, ref.version) for ref in fh.layout.segments
        ]

        def pin_everywhere(segid, v):
            try:
                # Pinning must reach every owner: bypass the cache.
                resp = yield from self._locate(segid, refresh=True)
            except SorrentoError:
                return
            for host, _hv in resp["owners"]:
                try:
                    yield from self.rpc.call(
                        host, "seg_pin", {"segid": segid, "version": v},
                        size=48)
                except (RpcTimeout, RpcRemoteError):
                    continue

        yield from gather(self.sim, [pin_everywhere(s, v) for s, v in pins])
        return entry
