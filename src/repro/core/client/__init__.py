"""The Sorrento client stub (Sections 2.3, 3.5; Figures 4–7).

All methods that touch the network are generators meant to run inside sim
processes (``yield from client.open(...)``).  The stub implements:

* pathname ops against the namespace server;
* the data path: locate segments via home hosts (with the multicast
  backup scheme), read/write segment owners directly;
* version-based consistency: shadow copies on write, two-phase commit
  across shadowed segments, conflict detection at commit;
* attached small files (≤ 60 KB ride inside the index segment);
* the atomic-append recipe of Figure 4;
* a versioning-off mode for applications managing their own consistency.

The implementation is split into cohesive modules — ``handle`` (session
state), ``router`` (shard/partition/failover routing),
``namespace_ops`` (pathname RPCs), ``placement`` (locate/place),
``io`` (the data path), ``versioning`` (shadow/commit/close) — combined
by ``stub.SorrentoClient``.  This package re-exports the public names so
``from repro.core.client import SorrentoClient`` keeps working.
"""

from repro.core.client.handle import (
    CommitConflict,
    ConflictError,
    FileHandle,
    NotFoundError,
    SorrentoError,
    TimeoutError,
    WrongShardError,
    make_layout_for,
)
from repro.core.client.router import NamespaceRouter
from repro.core.client.stub import SorrentoClient

__all__ = [
    "CommitConflict",
    "ConflictError",
    "FileHandle",
    "NamespaceRouter",
    "NotFoundError",
    "SorrentoClient",
    "SorrentoError",
    "TimeoutError",
    "WrongShardError",
    "make_layout_for",
]
