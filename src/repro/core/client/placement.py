"""Segment location and placement (Sections 3.4, 3.7).

Locating goes through the segment's home host (the consistent-hashing
location table), with the multicast probe as the backup scheme; placing
new segments weighs load, space, and the home-host boost.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from repro.core.client.handle import (
    FileHandle,
    NotFoundError,
    SorrentoError,
    TimeoutError,
)
from repro.core.placement import choose_provider
from repro.core.provider import LOCATION_GROUP
from repro.network.message import RpcRemoteError, RpcTimeout

_nonces = itertools.count(1)


class PlacementMixin:
    """Locate existing segments; place and create new ones."""

    def _providers(self) -> List[str]:
        return self.membership.live_providers()

    def _home_of(self, segid: int) -> str:
        providers = self._providers()
        if not providers:
            raise SorrentoError("no live storage providers")
        return self.ring.home_host(segid, providers)

    def _on_probe_hit(self, payload: dict, src: str) -> None:
        ev = self._probe_waiters.get(payload["nonce"])
        if ev is not None and not ev.triggered:
            ev.succeed((payload["owner"], payload["version"]))

    def _locate(self, segid: int, read: Optional[dict] = None,
                refresh: bool = False):
        """Find a segment's owners: the per-client cache first, then the
        home host (Section 3.4.1), then the multicast query (Section
        3.4.2) as the backup scheme.

        ``read`` requests inline service and always goes to the home host
        (the cache cannot serve data).  ``refresh`` bypasses the cache for
        flows that need the full owner list (unlink, sync, pin) or that
        just proved a cached entry wrong.
        """
        if read is None and not refresh and self.params.loc_cache_enabled:
            owners = self.loc_cache.lookup(segid, self.sim.now)
            if owners:
                self._cache_note("loc_hits")
                return {"owners": owners, "inline": None, "cached": True}
            self._cache_note("loc_misses")
        home = self._home_of(segid)
        try:
            resp = yield from self.rpc.call(
                home, "loc_lookup", {"segid": segid, "read": read}, size=64,
            )
            if resp["owners"] or resp["inline"]:
                self.loc_cache.store(segid, resp["owners"], self.sim.now)
                return resp
        except (RpcTimeout, RpcRemoteError):
            pass
        owner = yield from self._probe(segid)
        self.loc_cache.store(segid, [owner], self.sim.now)
        return {"owners": [owner], "inline": None}

    def _evict_location(self, segid: int, stale: bool = True) -> None:
        """A cached claim was proven wrong (version mismatch / dead owner):
        drop it so the next lookup goes back to the home host."""
        if self.loc_cache.evict(segid) and stale:
            self._cache_note("loc_stale")

    def _learn_hint(self, segid: int, resp: Optional[dict]) -> None:
        """Fold a reply's piggybacked owner hint into the location cache."""
        if not self.params.loc_cache_enabled or not resp:
            return
        hint = resp.get("hint")
        if hint:
            self.loc_cache.learn_hint(segid, hint, self.sim.now)

    def _probe(self, segid: int):
        """Backup scheme: ask everybody over multicast."""
        self.stats["probe_fallbacks"] += 1
        nonce = next(_nonces)
        ev = self.sim.event()
        self._probe_waiters[nonce] = ev
        self.rpc.multicast(LOCATION_GROUP, "loc_probe",
                           {"segid": segid, "nonce": nonce}, size=48)
        won = yield self.sim.wait_any(ev, self.params.rpc_timeout)
        self._probe_waiters.pop(nonce, None)
        if not won:
            raise TimeoutError(f"no owner responded for segment {segid:#x}")
        return ev.value

    def _pick_owner(self, owners: List[Tuple[str, int]]) -> Tuple[str, int]:
        """Choose among the newest-version owners at random (load spread).

        The newest version is computed explicitly: home-host lookups sort
        newest-first, but probe results and cache merges need not.
        """
        if not owners:
            raise NotFoundError("segment has no owners")
        newest = max(o[1] for o in owners)
        best = [o for o in owners if o[1] == newest]
        if self.prefer_local:
            for o in best:
                if o[0] == self.node.hostid:
                    return o
        return self.rng.choice(best)

    def _place_new_segment(self, segid: int, size_hint: int, alpha: float,
                           fh: Optional[FileHandle] = None,
                           not_on: Optional[set] = None) -> str:
        members = self.membership.snapshot()
        if not_on:
            members = {h: i for h, i in members.items() if h not in not_on}
        if not members:
            raise SorrentoError("no live storage providers")
        size_hint = max(size_hint, 1)
        # Growing *linear* files keep their data together: the next
        # segment goes where the previous one lives (unless it ran out of
        # room); online migration is the corrective force.  Striped and
        # hybrid files spread on purpose — their parallelism comes from
        # distinct owners.
        spreads = fh is not None and fh.entry.get("mode") in ("striped",
                                                              "hybrid")
        if fh is not None and not spreads and fh.affinity_owner is not None \
                and fh.affinity_owner in members:
            prev = members.get(fh.affinity_owner)
            if prev is not None and prev.available >= size_hint \
                    and self.rng.random() < self.params.segment_affinity:
                return fh.affinity_owner
        if fh is not None and fh.entry.get("placement") == "random":
            fitting = [h for h, i in members.items()
                       if i.available >= size_hint]
            if not fitting:
                raise SorrentoError("no provider can hold the segment")
            return self.rng.choice(sorted(fitting))
        home = self._home_of(segid)
        boost = 0.0
        if self.params.home_boost_enabled \
                and size_hint <= self.params.small_segment_bytes:
            boost = 3.0 * len(members)
        exclude = None
        if spreads:
            # Stripe mates on distinct providers, capacity permitting.
            exclude = set(fh.new_segments.values())
            if len(exclude) >= len(members):
                exclude = None
        target = choose_provider(self.rng, members, size_hint, alpha,
                                 exclude=exclude,
                                 home_host=home, home_boost=boost)
        if target is None and exclude:
            target = choose_provider(self.rng, members, size_hint, alpha,
                                     home_host=home, home_boost=boost)
        if target is None:
            raise SorrentoError("no provider can hold the segment")
        return target

    def _create_segment(self, fh: FileHandle, ref, *,
                        committed: bool = False, degree: Optional[int] = None,
                        tries: int = 3) -> str:
        """Create a brand-new segment on a placed provider.

        If the chosen provider is unreachable (it may have died between
        the heartbeat and now), re-place on another node — the client-side
        half of self-organization.
        """
        failed: set = set()
        last: Optional[Exception] = None
        for _ in range(tries):
            owner = self._place_new_segment(ref.segid, ref.max_size or 1,
                                            fh.entry["alpha"], fh=fh,
                                            not_on=failed)
            try:
                yield from self.rpc.call(
                    owner, "seg_create",
                    {"segid": ref.segid, "version": 1,
                     "committed": committed,
                     "degree": (degree if degree is not None
                                else fh.entry["degree"]),
                     "alpha": fh.entry["alpha"],
                     "placement": fh.entry.get("placement", "load")},
                    size=96,
                )
            except RpcTimeout as exc:
                failed.add(owner)
                last = exc
                continue
            fh.new_segments[ref.segid] = owner
            fh.affinity_owner = owner
            if committed:
                self.loc_cache.learn(ref.segid, owner, 1, self.sim.now)
            return owner
        raise TimeoutError(
            f"cannot place segment {ref.segid:#x}: {last}"
        ) from last
