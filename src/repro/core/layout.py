"""File data organization: Linear, Striped, and Hybrid modes (Section 3.2).

A logical file is a linear byte array split into variable-length data
segments; an *index segment* records how the data segments compose the
array (Figure 3).  Segment sizes for Linear/Hybrid follow the paper's
formula: the i-th segment's maximum size in MB is ``min(512, 8**(i // 8))``
— small segments for small files, 512 MB segments for large ones.

Small files (≤ 60 KB) are *attached*: their data rides inside the index
segment so one network transfer serves the whole file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

MB = 1 << 20

#: Largest data segment (512 MB).
MAX_SEGMENT = 512 * MB

#: Files up to this size live inside the index segment ("to fit in a UDP
#: packet", Section 3.2).
ATTACH_MAX = 60 * 1024

#: Stripe unit for Striped/Hybrid modes.
DEFAULT_STRIPE_UNIT = 64 * 1024

LINEAR = "linear"
STRIPED = "striped"
HYBRID = "hybrid"


def linear_segment_max(i: int) -> int:
    """Max size in bytes of the i-th Linear-mode segment: min{512, 8^⌊i/8⌋} MB."""
    if i < 0:
        raise ValueError("segment index must be >= 0")
    return min(MAX_SEGMENT, (8 ** (i // 8)) * MB)


def hybrid_segment_max(group: int, group_size: int) -> int:
    """Max size of each segment in the i-th Hybrid group: min{512, 8^⌊i·j/8⌋} MB."""
    if group < 0 or group_size < 1:
        raise ValueError("bad hybrid parameters")
    return min(MAX_SEGMENT, (8 ** ((group * group_size) // 8)) * MB)


@dataclass
class SegmentRef:
    """A data segment as recorded in an index segment."""

    segid: int
    version: int = 1
    size: int = 0       # current (actual) size
    max_size: int = 0   # sizing-formula cap


Piece = Tuple[int, int, int]  # (segment index, offset within segment, nbytes)


@dataclass
class Layout:
    """The index segment's view of a file's data organization."""

    mode: str = LINEAR
    segments: List[SegmentRef] = field(default_factory=list)
    size: int = 0
    stripe_unit: int = DEFAULT_STRIPE_UNIT
    stripe_count: int = 0   # Striped: total; Hybrid: per group
    fixed_size: int = 0     # Striped: declared (max) file size

    # -- mapping ---------------------------------------------------------
    def locate(self, offset: int, length: int) -> List[Piece]:
        """Map a byte range of the file onto (segment, offset, len) pieces."""
        if offset < 0 or length < 0:
            raise ValueError("negative offset/length")
        if length == 0:
            return []
        if offset + length > self.size:
            raise ValueError(
                f"range [{offset}, {offset + length}) beyond file size {self.size}"
            )
        if self.mode == LINEAR:
            return self._locate_linear(offset, length)
        if self.mode == STRIPED:
            return self._locate_striped(offset, length, 0, len(self.segments))
        return self._locate_hybrid(offset, length)

    def _locate_linear(self, offset: int, length: int) -> List[Piece]:
        pieces: List[Piece] = []
        pos = 0
        for i, ref in enumerate(self.segments):
            seg_end = pos + ref.size
            if offset < seg_end and offset + length > pos:
                lo = max(offset, pos)
                hi = min(offset + length, seg_end)
                pieces.append((i, lo - pos, hi - lo))
            pos = seg_end
            if pos >= offset + length:
                break
        return pieces

    def _locate_striped(self, offset: int, length: int,
                        seg_base: int, nsegs: int,
                        stripe_base_offset: int = 0) -> List[Piece]:
        """Map within one stripe group of ``nsegs`` segments."""
        unit = self.stripe_unit
        pieces: List[Piece] = []
        pos = offset
        end = offset + length
        while pos < end:
            block = pos // unit
            within = pos % unit
            take = min(unit - within, end - pos)
            seg_idx = seg_base + (block % nsegs)
            seg_off = stripe_base_offset + (block // nsegs) * unit + within
            pieces.append((seg_idx, seg_off, take))
            pos += take
        return _merge_pieces(pieces)

    def _locate_hybrid(self, offset: int, length: int) -> List[Piece]:
        j = self.stripe_count
        pieces: List[Piece] = []
        group_start = 0
        g = 0
        end = offset + length
        while group_start < end and g * j < len(self.segments):
            cap = hybrid_segment_max(g, j) * j
            group_segs = self.segments[g * j:(g + 1) * j]
            group_len = sum(r.size for r in group_segs)
            group_end = group_start + group_len
            if offset < group_end and end > group_start:
                lo = max(offset, group_start) - group_start
                hi = min(end, group_end) - group_start
                pieces.extend(
                    self._locate_striped(lo, hi - lo, g * j, j)
                )
            group_start += min(group_len, cap) if group_len else cap
            if group_len < cap:
                break  # last (partial) group
            g += 1
        return pieces

    # -- copying --------------------------------------------------------
    def clone(self) -> "Layout":
        """A deep-enough copy: fresh SegmentRefs, shared nothing mutable.

        Layouts hold only flat refs, so an explicit rebuild replaces the
        generic ``copy.deepcopy`` on the open/commit hot path.
        """
        return Layout(
            mode=self.mode,
            segments=[SegmentRef(r.segid, r.version, r.size, r.max_size)
                      for r in self.segments],
            size=self.size, stripe_unit=self.stripe_unit,
            stripe_count=self.stripe_count, fixed_size=self.fixed_size,
        )

    # -- growth ---------------------------------------------------------
    def grow_to(self, new_size: int, new_segid: Callable[[], int]) -> List[SegmentRef]:
        """Extend the file to ``new_size``; returns any newly created refs.

        Linear/Hybrid expand the last segment (group) before adding more
        ("Sorrento does not pre-allocate space for a whole segment").
        Striped files cannot grow beyond their declared size.
        """
        if new_size < self.size:
            raise ValueError("grow_to cannot shrink")
        if new_size == self.size:
            return []
        if self.mode == STRIPED:
            if new_size > self.fixed_size:
                raise ValueError(
                    f"striped file fixed at {self.fixed_size} bytes"
                )
            sizes = _striped_sizes(new_size, len(self.segments), self.stripe_unit)
            for ref, sz in zip(self.segments, sizes):
                ref.size = sz
            self.size = new_size
            return []
        created: List[SegmentRef] = []
        if self.mode == LINEAR:
            self.size = new_size
            remaining = new_size
            i = 0
            while remaining > 0:
                cap = linear_segment_max(i)
                if i >= len(self.segments):
                    ref = SegmentRef(segid=new_segid(), max_size=cap)
                    self.segments.append(ref)
                    created.append(ref)
                ref = self.segments[i]
                ref.size = min(cap, remaining)
                remaining -= ref.size
                i += 1
            return created
        # Hybrid: whole groups of stripe_count segments.
        j = self.stripe_count
        self.size = new_size
        remaining = new_size
        g = 0
        while remaining > 0:
            seg_cap = hybrid_segment_max(g, j)
            group_cap = seg_cap * j
            if g * j >= len(self.segments):
                for _ in range(j):
                    ref = SegmentRef(segid=new_segid(), max_size=seg_cap)
                    self.segments.append(ref)
                    created.append(ref)
            take = min(group_cap, remaining)
            sizes = _striped_sizes(take, j, self.stripe_unit)
            for ref, sz in zip(self.segments[g * j:(g + 1) * j], sizes):
                ref.size = sz
            remaining -= take
            g += 1
        return created


def make_layout(mode: str, new_segid: Callable[[], int],
                stripe_count: int = 4,
                stripe_unit: int = DEFAULT_STRIPE_UNIT,
                fixed_size: int = 0) -> Layout:
    """Create an empty layout.

    Striped mode requires the file's (max) size and segment count up
    front (Section 3.2) and allocates all segments immediately.
    """
    if mode == LINEAR:
        return Layout(mode=LINEAR)
    if mode == STRIPED:
        if fixed_size <= 0 or stripe_count <= 0:
            raise ValueError("striped mode needs fixed_size and stripe_count")
        per_seg = -(-fixed_size // stripe_count)
        segs = [
            SegmentRef(segid=new_segid(), max_size=per_seg)
            for _ in range(stripe_count)
        ]
        return Layout(mode=STRIPED, segments=segs, stripe_unit=stripe_unit,
                      stripe_count=stripe_count, fixed_size=fixed_size)
    if mode == HYBRID:
        if stripe_count <= 0:
            raise ValueError("hybrid mode needs stripe_count")
        return Layout(mode=HYBRID, stripe_unit=stripe_unit,
                      stripe_count=stripe_count)
    raise ValueError(f"unknown mode {mode!r}")


def _striped_sizes(size: int, nsegs: int, unit: int) -> List[int]:
    """Exact per-segment byte counts when ``size`` bytes stripe over
    ``nsegs`` segments in ``unit``-byte blocks (block k → segment k % n)."""
    full_blocks, rem = divmod(size, unit)
    base, extra = divmod(full_blocks, nsegs)
    sizes = [base * unit + (unit if k < extra else 0) for k in range(nsegs)]
    if rem:
        sizes[extra] += rem
    return sizes


def _merge_pieces(pieces: List[Piece]) -> List[Piece]:
    """Merge contiguous pieces on the same segment (adjacent stripe rows)."""
    out: List[Piece] = []
    for seg, off, ln in pieces:
        if out and out[-1][0] == seg and out[-1][1] + out[-1][2] == off:
            out[-1] = (seg, out[-1][1], out[-1][2] + ln)
        else:
            out.append((seg, off, ln))
    return out
