"""Consistent hashing for SegID → home-host mapping (Section 3.4.1).

Unlike Chord's log-N hop lookup, every Sorrento client holds the complete
provider view (from membership) and computes the home host directly.  We
use the classic ring-with-virtual-nodes construction [Karger et al. 27].

The ring is maintained *incrementally and lazily*: membership events
(``add_host``/``remove_host``) only record the intended host set; the
next lookup flushes the difference into the sorted point array.  A small
difference — the steady-state churn case — is spliced host by host with
one linear merge (add) or filter (remove) pass; a mass change (initial
build, a restarted node re-learning the cluster) falls back to one bulk
sort, which beats per-host passes when most of the ring is changing
anyway.  Either way the arrays end up identical to a from-scratch
``sorted((point, host) for ...)`` construction, so lookups are
bit-compatible with the original per-view rebuild.  Vnode hash points
are computed once per host ever seen and cached, so churn (a host
leaving and rejoining) re-hashes nothing.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence

DEFAULT_VNODES = 64


def _point(data: str) -> int:
    return int.from_bytes(hashlib.sha1(data.encode()).digest()[:8], "big")


class HashRing:
    """Maps 128-bit SegIDs to a home host among the live providers.

    One ring, maintained by splicing.  ``stats`` records the maintenance
    work actually done — the churn regression test pins ``bulk_builds``
    to the single initial build and bounds ``point_hashes`` by
    hosts-ever-seen × vnodes.
    """

    def __init__(self, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[int] = []     # sorted vnode points
        self._hosts: List[str] = []      # parallel owner array
        self._current: set = set()       # intended membership
        self._built: set = set()         # hosts physically in the arrays
        self._dirty = False
        self._vnode_points: Dict[str, List[int]] = {}  # per-host, sorted
        self._last_members: object = None  # identity fast path (see below)
        self.stats = {"splices": 0, "point_hashes": 0, "reconciles": 0,
                      "bulk_builds": 0}

    # ------------------------------------------------------- maintenance
    def _host_points(self, host: str) -> List[int]:
        pts = self._vnode_points.get(host)
        if pts is None:
            pts = sorted(_point(f"{host}#{i}") for i in range(self.vnodes))
            self._vnode_points[host] = pts
            self.stats["point_hashes"] += self.vnodes
        return pts

    def add_host(self, host: str) -> None:
        """Mark a host as present (idempotent); spliced at next lookup."""
        if host in self._current:
            return
        self._current.add(host)
        self._dirty = True
        self._last_members = None

    def remove_host(self, host: str) -> None:
        """Mark a host as gone (idempotent); spliced at next lookup."""
        if host not in self._current:
            return
        self._current.discard(host)
        self._dirty = True
        self._last_members = None

    def _splice_in(self, host: str) -> None:
        """One linear merge of the host's sorted vnode points into the
        arrays, tie-breaking equal points by host so the result matches
        a full (point, host) tuple sort."""
        points, hosts = self._points, self._hosts
        out_p: List[int] = []
        out_h: List[str] = []
        i, n = 0, len(points)
        for p in self._host_points(host):
            while i < n and (points[i] < p
                             or (points[i] == p and hosts[i] < host)):
                out_p.append(points[i])
                out_h.append(hosts[i])
                i += 1
            out_p.append(p)
            out_h.append(host)
        out_p.extend(points[i:])
        out_h.extend(hosts[i:])
        self._points, self._hosts = out_p, out_h

    def _splice_out(self, host: str) -> None:
        """One linear filter pass dropping the host's vnode points."""
        keep = [(p, h) for p, h in zip(self._points, self._hosts)
                if h != host]
        self._points = [p for p, _ in keep]
        self._hosts = [h for _, h in keep]

    def _flush(self) -> None:
        """Apply pending membership changes to the point arrays."""
        if not self._dirty:
            return
        to_add = self._current - self._built
        to_remove = self._built - self._current
        churn = (len(to_add) + len(to_remove)) * self.vnodes
        if churn >= max(len(self._points), 1):
            # Most of the ring is changing (initial build, mass
            # reconcile): one sort beats per-host passes.
            pairs = sorted(
                (p, h) for h in self._current for p in self._host_points(h))
            self._points = [p for p, _ in pairs]
            self._hosts = [h for _, h in pairs]
            self.stats["bulk_builds"] += 1
        else:
            for host in sorted(to_remove):
                self._splice_out(host)
            for host in sorted(to_add):
                self._splice_in(host)
        self.stats["splices"] += len(to_add) + len(to_remove)
        self._built = set(self._current)
        self._dirty = False

    def _reconcile(self, members: Sequence[str]) -> None:
        """Diff an explicit member view against the ring and mark the
        difference pending.  When the same (unmutated) view object is
        passed repeatedly — the batch refresh path, preloading — the
        identity check skips even the set compare."""
        if members is self._last_members:
            return
        want = members if isinstance(members, (set, frozenset)) \
            else set(members)
        if want != self._current:
            self.stats["reconciles"] += 1
            for host in self._current - want:
                self.remove_host(host)
            for host in want - self._current:
                self.add_host(host)
        self._last_members = members

    # ------------------------------------------------------------ lookup
    def _locate(self, segid: int) -> str:
        key = int.from_bytes(
            hashlib.sha1(segid.to_bytes(16, "big")).digest()[:8], "big"
        )
        points = self._points
        i = bisect.bisect_right(points, key)
        if i == len(points):
            i = 0
        return self._hosts[i]

    def home_host(self, segid: int, members: Sequence[str]) -> str:
        """The provider responsible for tracking ``segid``'s owners."""
        self._reconcile(members)
        if not self._current:
            raise ValueError("no live providers")
        self._flush()
        return self._locate(segid)

    def hosts_for(self, segids: Iterable[int],
                  members: Sequence[str]) -> Dict[int, str]:
        """Batch mapping (used by the periodic refresh cycle).

        The member view is reconciled once for the whole batch and each
        segid is hashed exactly once.
        """
        self._reconcile(members)
        if not self._current:
            raise ValueError("no live providers")
        self._flush()
        locate = self._locate
        return {s: locate(s) for s in segids}
