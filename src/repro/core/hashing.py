"""Consistent hashing for SegID → home-host mapping (Section 3.4.1).

Unlike Chord's log-N hop lookup, every Sorrento client holds the complete
provider view (from membership) and computes the home host directly.  We
use the classic ring-with-virtual-nodes construction [Karger et al. 27].
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, FrozenSet, List, Sequence, Tuple

DEFAULT_VNODES = 64


def _point(data: str) -> int:
    return int.from_bytes(hashlib.sha1(data.encode()).digest()[:8], "big")


class HashRing:
    """Maps 128-bit SegIDs to a home host among the live providers.

    Rings are cached per membership set, so the common case (stable
    membership) costs one dict hit + one bisect.
    """

    def __init__(self, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._cache: Dict[FrozenSet[str], Tuple[List[int], List[str]]] = {}

    def _ring_for(self, members: FrozenSet[str]) -> Tuple[List[int], List[str]]:
        ring = self._cache.get(members)
        if ring is None:
            points: List[Tuple[int, str]] = []
            for host in members:
                for i in range(self.vnodes):
                    points.append((_point(f"{host}#{i}"), host))
            points.sort()
            ring = ([p for p, _ in points], [h for _, h in points])
            if len(self._cache) > 256:
                self._cache.clear()
            self._cache[members] = ring
        return ring

    def home_host(self, segid: int, members: Sequence[str]) -> str:
        """The provider responsible for tracking ``segid``'s owners."""
        memberset = frozenset(members)
        if not memberset:
            raise ValueError("no live providers")
        points, hosts = self._ring_for(memberset)
        key = int.from_bytes(
            hashlib.sha1(segid.to_bytes(16, "big")).digest()[:8], "big"
        )
        i = bisect.bisect_right(points, key)
        if i == len(points):
            i = 0
        return hosts[i]

    def hosts_for(self, segids, members: Sequence[str]) -> Dict[int, str]:
        """Batch mapping (used by the periodic refresh cycle)."""
        return {s: self.home_host(s, members) for s in segids}
