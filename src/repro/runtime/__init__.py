"""The instrumented service-runtime layer.

Sits between the network transport and the protocol daemons: every
component issues RPCs and registers handlers through a per-node
:class:`ServiceRuntime` instead of the raw endpoint, gaining a uniform
timeout/retry policy (:class:`CallPolicy`, carrying the paper's
Figure-13 5 s deadline), per-service metrics (:class:`MetricsRegistry`),
and trace spans over virtual time (:class:`Tracer`).

See ``docs/runtime.md`` for the architecture walkthrough.
"""

from repro.runtime.metrics import CACHE, CLIENT, SERVER, MetricsRegistry, OpStats
from repro.runtime.middleware import (
    CallContext,
    MetricsMiddleware,
    RetryMiddleware,
    TracingMiddleware,
    compose,
)
from repro.runtime.policy import DEFAULT_POLICY, RPC_DEADLINE, CallPolicy
from repro.runtime.service import ServiceRuntime
from repro.runtime.trace import Span, Tracer

__all__ = [
    "CACHE",
    "CLIENT",
    "SERVER",
    "CallContext",
    "CallPolicy",
    "DEFAULT_POLICY",
    "MetricsMiddleware",
    "MetricsRegistry",
    "OpStats",
    "RPC_DEADLINE",
    "RetryMiddleware",
    "ServiceRuntime",
    "Span",
    "Tracer",
    "TracingMiddleware",
    "compose",
]
