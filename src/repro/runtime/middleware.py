"""The composable middleware stack around every RPC.

A middleware is ``mw(ctx, nxt)`` — a generator function that may do work
before and after delegating to ``nxt(ctx)`` (the rest of the stack).
:func:`compose` folds a list of middlewares over a terminal (the actual
transport exchange) into a single ``invoke(ctx)`` generator.

The stock stack, outermost first:

1. :class:`MetricsMiddleware` — one OpStats observation per invocation,
   covering all retry attempts (so latency is what the caller felt);
2. :class:`TracingMiddleware` — one span per invocation;
3. :class:`RetryMiddleware` — per-attempt timeout handling and backoff
   per the context's :class:`~repro.runtime.policy.CallPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional

from repro.network.message import RpcRemoteError, RpcTimeout
from repro.runtime.metrics import CLIENT, MetricsRegistry
from repro.runtime.policy import CallPolicy
from repro.runtime.trace import Tracer

Invoker = Callable[["CallContext"], Generator]
Middleware = Callable[["CallContext", Invoker], Generator]


@dataclass
class CallContext:
    """Everything a middleware may read or annotate about one RPC."""

    sim: Any
    dst: str
    service: str
    payload: Any = None
    size: int = 0
    rtts: int = 1
    policy: CallPolicy = field(default_factory=CallPolicy)
    timeout: Optional[float] = None   # per-attempt deadline override
    attempt: int = 0                  # 1-based, set by the retry layer
    retries: int = 0                  # attempts beyond the first

    @property
    def attempt_timeout(self) -> float:
        return self.timeout if self.timeout is not None else self.policy.timeout


def compose(middlewares: List[Middleware], terminal: Invoker) -> Invoker:
    """Fold middlewares (outermost first) over the terminal invoker."""
    invoke = terminal
    for mw in reversed(middlewares):
        invoke = _bind(mw, invoke)
    return invoke


def _bind(mw: Middleware, nxt: Invoker) -> Invoker:
    def invoke(ctx: CallContext):
        result = yield from mw(ctx, nxt)
        return result

    return invoke


class RetryMiddleware:
    """Re-issue timed-out attempts per the context's policy.

    Only :class:`RpcTimeout` is retried: a remote error is a handler
    answering "no", and repeating the question does not change it.
    """

    def __call__(self, ctx: CallContext, nxt: Invoker):
        policy = ctx.policy
        while True:
            ctx.attempt += 1
            try:
                result = yield from nxt(ctx)
                return result
            except RpcTimeout:
                if ctx.attempt >= policy.attempts:
                    raise
                ctx.retries += 1
                delay = policy.delay_before_retry(ctx.attempt)
                if delay > 0:
                    yield ctx.sim.timeout(delay)


class TracingMiddleware:
    """One span per invocation (covering every retry attempt)."""

    def __init__(self, tracer: Tracer):
        self.tracer = tracer

    def __call__(self, ctx: CallContext, nxt: Invoker):
        span = self.tracer.start(f"rpc:{ctx.service}", dst=ctx.dst)
        try:
            result = yield from nxt(ctx)
        except Exception as exc:
            span.attrs["retries"] = ctx.retries
            self.tracer.finish(span, status=type(exc).__name__)
            raise
        span.attrs["retries"] = ctx.retries
        self.tracer.finish(span)
        return result


class MetricsMiddleware:
    """One OpStats observation per invocation."""

    def __init__(self, registry: MetricsRegistry, scope: str = CLIENT):
        self.registry = registry
        self.scope = scope

    def __call__(self, ctx: CallContext, nxt: Invoker):
        t0 = ctx.sim.now
        try:
            result = yield from nxt(ctx)
        except RpcTimeout:
            self.registry.stats(self.scope, ctx.service).observe(
                ctx.sim.now - t0, ok=False, timeout=True,
                retries=ctx.retries, bytes_out=ctx.size)
            raise
        except RpcRemoteError:
            self.registry.stats(self.scope, ctx.service).observe(
                ctx.sim.now - t0, ok=False,
                retries=ctx.retries, bytes_out=ctx.size)
            raise
        self.registry.stats(self.scope, ctx.service).observe(
            ctx.sim.now - t0, ok=True,
            retries=ctx.retries, bytes_out=ctx.size)
        return result
