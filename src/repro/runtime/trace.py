"""Trace spans over virtual time.

A :class:`Tracer` records :class:`Span` trees: the tracing middleware
opens a span per RPC, and any component may open spans around larger
units of work (a commit, a migration round).  Parenthood follows the
*simulated process* that is running when a span starts — the kernel
exposes :attr:`Simulator.active_process` for exactly this — so nested
``yield from`` calls inside one process chain up naturally.

Handlers execute in their own sim process, so a server-side span is a
root unless linked explicitly (pass ``parent=``).  The same holds for
sub-processes spawned via ``gather``; explicit linking is deliberate,
because an automatic cross-process parent would have to survive process
interleaving and would lie about causality more often than not.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional


class Span:
    """One timed operation; ``parent`` links it into a trace tree."""

    __slots__ = ("name", "start", "end", "parent", "status", "attrs")

    def __init__(self, name: str, start: float,
                 parent: Optional["Span"] = None, **attrs: Any):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.parent = parent
        self.status: Optional[str] = None
        self.attrs: Dict[str, Any] = attrs

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def depth(self) -> int:
        d, p = 0, self.parent
        while p is not None:
            d, p = d + 1, p.parent
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name!r} [{self.start:g}..{self.end}] {self.status}>"


class Tracer:
    """Per-deployment span recorder (bounded memory)."""

    def __init__(self, sim, max_spans: int = 4096):
        self.sim = sim
        self.finished: Deque[Span] = deque(maxlen=max_spans)
        self._stacks: Dict[int, List[Span]] = {}

    # -- the per-process span stack ------------------------------------
    def _key(self) -> int:
        return id(self.sim.active_process)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span of the running sim process."""
        stack = self._stacks.get(self._key())
        return stack[-1] if stack else None

    # -- span lifecycle ------------------------------------------------
    def start(self, name: str, parent: Optional[Span] = None,
              **attrs: Any) -> Span:
        """Open a span; parent defaults to the process's current span."""
        if parent is None:
            parent = self.current
        span = Span(name, self.sim.now, parent, **attrs)
        self._stacks.setdefault(self._key(), []).append(span)
        return span

    def finish(self, span: Span, status: str = "ok") -> Span:
        """Close a span and record it."""
        span.end = self.sim.now
        span.status = status
        key = self._key()
        stack = self._stacks.get(key)
        if stack and span in stack:
            # Pop through the span (tolerates leaked children on error).
            while stack and stack.pop() is not span:
                pass
            if not stack:
                del self._stacks[key]
        self.finished.append(span)
        return span

    # -- queries ---------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[Span]:
        return [s for s in self.finished if name is None or s.name == name]

    def roots(self) -> List[Span]:
        return [s for s in self.finished if s.parent is None]
