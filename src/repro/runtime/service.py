"""ServiceRuntime: the one façade every daemon uses to talk RPC.

One runtime wraps one :class:`~repro.network.transport.Endpoint` (one
per node) and is the only sanctioned way to issue ``call``/``send``/
``multicast`` or to register handlers — enforced by an architecture
test.  It adds, without changing wire behaviour:

* a default :class:`~repro.runtime.policy.CallPolicy` (the Figure-13
  deadline) so call sites stop re-spelling timeouts;
* the middleware stack of :mod:`repro.runtime.middleware` on the client
  side (metrics → tracing → retry → transport);
* handler instrumentation on the server side (per-service handler time
  and response bytes, recorded under scope ``"server"``);
* idempotent re-registration via ``register(..., replace=True)`` for
  daemons that restart on a surviving node.

Registry/tracer/policy are late-bound through :meth:`configure`:
deployments wire them after nodes (and their daemons) exist.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.network.transport import Endpoint, Handler, _split_result
from repro.runtime.metrics import CLIENT, SERVER, MetricsRegistry
from repro.runtime.middleware import (
    CallContext,
    MetricsMiddleware,
    RetryMiddleware,
    TracingMiddleware,
    compose,
)
from repro.runtime.policy import DEFAULT_POLICY, CallPolicy
from repro.runtime.trace import Tracer

_UNSET = object()


class ServiceRuntime:
    """Instrumented service layer over one node's endpoint."""

    def __init__(self, endpoint: Endpoint,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 policy: CallPolicy = DEFAULT_POLICY):
        self.endpoint = endpoint
        self.sim = endpoint.sim
        self.registry = registry
        self.tracer = tracer
        self.policy = policy
        self._rebuild()

    # ------------------------------------------------------------- wiring
    @property
    def hostid(self) -> str:
        return self.endpoint.hostid

    @property
    def handlers(self):
        """The endpoint's live service table (read-only use)."""
        return self.endpoint.handlers

    def configure(self, registry=_UNSET, tracer=_UNSET, policy=_UNSET) -> "ServiceRuntime":
        """Re-wire observability/policy; omitted fields keep their value."""
        if registry is not _UNSET:
            self.registry = registry
        if tracer is not _UNSET:
            self.tracer = tracer
        if policy is not _UNSET:
            self.policy = policy
        self._rebuild()
        return self

    def _rebuild(self) -> None:
        stack = []
        if self.registry is not None:
            stack.append(MetricsMiddleware(self.registry, CLIENT))
        if self.tracer is not None:
            stack.append(TracingMiddleware(self.tracer))
        stack.append(RetryMiddleware())
        self._invoke = compose(stack, self._transport)

    def _transport(self, ctx: CallContext):
        result = yield from self.endpoint.call(
            ctx.dst, ctx.service, ctx.payload, size=ctx.size,
            timeout=ctx.attempt_timeout, rtts=ctx.rtts,
        )
        return result

    # -------------------------------------------------------- client side
    def call(self, dst: str, service: str, payload: Any = None,
             size: int = 0, timeout: Optional[float] = None, rtts: int = 1,
             policy: Optional[CallPolicy] = None):
        """Generator: an RPC through the middleware stack.

        ``timeout`` overrides the per-attempt deadline only; ``policy``
        overrides the whole retry/timeout behaviour for this call.
        """
        ctx = CallContext(
            sim=self.sim, dst=dst, service=service, payload=payload,
            size=size, rtts=rtts, policy=policy or self.policy,
            timeout=timeout,
        )
        result = yield from self._invoke(ctx)
        return result

    def send(self, dst: str, service: str, payload: Any = None,
             size: int = 0) -> None:
        """Fire-and-forget one-way message (counted, never traced)."""
        if self.registry is not None:
            self.registry.stats(CLIENT, service).observe_oneway(size)
        self.endpoint.send(dst, service, payload, size=size)

    def multicast(self, group: str, service: str, payload: Any = None,
                  size: int = 0) -> None:
        """One-way message to a multicast group."""
        if self.registry is not None:
            self.registry.stats(CLIENT, service).observe_oneway(size)
        self.endpoint.multicast(group, service, payload, size=size)

    def subscribe(self, group: str) -> None:
        self.endpoint.subscribe(group)

    def unsubscribe(self, group: str) -> None:
        self.endpoint.unsubscribe(group)

    # -------------------------------------------------------- server side
    def register(self, service: str, handler: Handler,
                 replace: bool = False, instrument: bool = True) -> None:
        """Install a handler, wrapped for server-side metrics.

        ``replace=True`` makes re-registration idempotent (restarted
        daemons); the default still fails loudly on accidental collision.
        """
        if instrument:
            handler = self._instrumented(service, handler)
        self.endpoint.register(service, handler, replace=replace)

    def unregister(self, service: str) -> None:
        self.endpoint.unregister(service)

    def _instrumented(self, service: str, handler: Handler) -> Handler:
        """Wrap a handler to record scope-"server" stats at call time.

        The wrapper preserves the sync/generator duality the endpoint's
        one-way path relies on (sync handlers must stay sync), and reads
        ``self.registry`` late so deployments can attach it after the
        daemons registered their services.
        """

        def wrapped(payload: Any, src: str):
            t0 = self.sim.now
            try:
                result = handler(payload, src)
            except Exception:
                self._record_server(service, t0, None, ok=False)
                raise
            if isinstance(result, Generator):
                return self._drive(service, result, t0)
            self._record_server(service, t0, result, ok=True)
            return result

        return wrapped

    def _drive(self, service: str, gen: Generator, t0: float):
        try:
            result = yield from gen
        except Exception:
            self._record_server(service, t0, None, ok=False)
            raise
        self._record_server(service, t0, result, ok=True)
        return result

    def _record_server(self, service: str, t0: float, result: Any,
                       ok: bool) -> None:
        if self.registry is None:
            return
        nbytes = _split_result(result)[1] if ok else 0
        self.registry.stats(SERVER, service).observe(
            self.sim.now - t0, ok=ok, bytes_in=nbytes)
