"""Call policies: the timeout/retry/backoff knobs of every RPC.

The paper gives exactly one RPC deadline — Figure 13's 5 seconds, after
which "requests issued to the failed node are all timed out".  That
number lives in one place (:data:`RPC_DEADLINE`, aliased from the
transport) and flows to every component through a :class:`CallPolicy`
instead of being re-spelled per call site.

Retries default to *off* (``attempts=1``): Sorrento's protocols handle
failure above the RPC layer (probe fallback, namespace failover,
re-placement), so blanket retries would double-charge the network model.
Components that do want them opt in per call or per runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.network.transport import DEFAULT_RPC_TIMEOUT

#: The paper's Figure-13 RPC deadline (seconds).
RPC_DEADLINE = DEFAULT_RPC_TIMEOUT


@dataclass(frozen=True)
class CallPolicy:
    """How one RPC invocation behaves under delay and failure."""

    timeout: float = RPC_DEADLINE   # per-attempt deadline (seconds)
    attempts: int = 1               # total tries (1 = no retry)
    backoff: float = 0.0            # wait before the first retry
    backoff_factor: float = 2.0     # multiplier per further retry

    def __post_init__(self):
        if self.timeout <= 0:
            raise ValueError(f"non-positive timeout: {self.timeout}")
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1: {self.attempts}")
        if self.backoff < 0:
            raise ValueError(f"negative backoff: {self.backoff}")

    def delay_before_retry(self, failed_attempts: int) -> float:
        """Backoff after ``failed_attempts`` tries have failed (>= 1)."""
        return self.backoff * self.backoff_factor ** (failed_attempts - 1)

    def with_timeout(self, timeout: float) -> "CallPolicy":
        """This policy with a different per-attempt deadline."""
        return replace(self, timeout=timeout)


#: The stock policy: Figure-13 deadline, no retries.
DEFAULT_POLICY = CallPolicy()
