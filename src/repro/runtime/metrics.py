"""Per-service operation metrics, recorded by the runtime middleware.

A :class:`MetricsRegistry` holds one :class:`OpStats` per
``(scope, service)`` pair.  Scope ``"client"`` counts outbound RPCs and
one-ways as issued by a node; scope ``"server"`` counts handler
executions (virtual handler time, response bytes).  Deployments create
one registry per cluster and hand it to every node's runtime, which
makes cross-system comparisons (Sorrento vs NFS vs PVFS roundtrips per
workload op) a dictionary lookup instead of ad-hoc counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

CLIENT = "client"
SERVER = "server"

#: Scope for the client-side cache/vectoring counters (hits, misses,
#: stale evictions, vector widths) so they land in the same registry —
#: and the same ``metrics_rows`` reports — as the RPC counters they
#: saved.  Counted through ``observe_oneway`` (no latency: cache hits
#: are local).
CACHE = "cache"

#: Scope for the provider storage-engine counters (page-cache hits and
#: misses, absorbed write-backs, coalesced scheduler requests, read-ahead
#: pages) plus ``flush`` latency observations.  Local device events, so
#: everything except flushes is counted through ``observe_oneway``.
DISK = "disk"

#: Scope for cross-partition traffic under the conservative-parallel
#: kernel: one ``"p<src>->p<dst>"`` service per directed cut edge,
#: counted through ``observe_oneway`` (record count + wire bytes) by
#: ``repro.sim.parallel.Transit`` when the deployment's registry is
#: wired.  The string literal lives in that module too
#: (``PARTITION_SCOPE``) so the sim layer never imports the runtime.
PARTITION = "partition"


@dataclass
class OpStats:
    """Counters for one service name within one scope."""

    calls: int = 0          # completed RPC invocations (ok or failed)
    ok: int = 0             # invocations that returned a response
    errors: int = 0         # invocations ending in a remote error
    timeouts: int = 0       # invocations ending in RpcTimeout
    retries: int = 0        # extra attempts beyond the first, summed
    oneways: int = 0        # fire-and-forget sends (no latency recorded)
    bytes_out: int = 0      # request/one-way payload bytes
    bytes_in: int = 0       # response payload bytes (server: bytes served)
    latency_total: float = 0.0
    latency_min: float = field(default=float("inf"))
    latency_max: float = 0.0

    @property
    def latency_mean(self) -> float:
        return self.latency_total / self.calls if self.calls else 0.0

    def observe(self, latency: float, *, ok: bool, timeout: bool = False,
                retries: int = 0, bytes_out: int = 0,
                bytes_in: int = 0) -> None:
        """Fold in one finished invocation."""
        self.calls += 1
        if ok:
            self.ok += 1
        elif timeout:
            self.timeouts += 1
        else:
            self.errors += 1
        self.retries += retries
        self.bytes_out += bytes_out
        self.bytes_in += bytes_in
        self.latency_total += latency
        self.latency_min = min(self.latency_min, latency)
        self.latency_max = max(self.latency_max, latency)

    def observe_oneway(self, nbytes: int = 0) -> None:
        self.oneways += 1
        self.bytes_out += nbytes


class MetricsRegistry:
    """All OpStats of one deployment, keyed by (scope, service)."""

    def __init__(self) -> None:
        self._stats: Dict[Tuple[str, str], OpStats] = {}

    def stats(self, scope: str, service: str) -> OpStats:
        """The (created-on-demand) stats cell for a scope/service pair."""
        key = (scope, service)
        cell = self._stats.get(key)
        if cell is None:
            cell = self._stats[key] = OpStats()
        return cell

    def get(self, scope: str, service: str) -> Optional[OpStats]:
        """The stats cell if anything was ever recorded, else None."""
        return self._stats.get((scope, service))

    def items(self, scope: Optional[str] = None) -> Iterator[Tuple[Tuple[str, str], OpStats]]:
        for key, cell in sorted(self._stats.items()):
            if scope is None or key[0] == scope:
                yield key, cell

    def services(self, scope: str) -> list:
        return sorted(svc for (s, svc) in self._stats if s == scope)

    def total_calls(self, scope: str) -> int:
        return sum(c.calls for (s, _), c in self._stats.items() if s == scope)

    def clear(self) -> None:
        self._stats.clear()

    def report(self, scope: Optional[str] = None) -> str:
        """Fixed-width text summary (one line per scope/service)."""
        lines = [
            f"{'scope':<8}{'service':<20}{'calls':>7}{'ok':>7}{'to':>5}"
            f"{'err':>5}{'retry':>6}{'1way':>6}{'mean ms':>9}{'max ms':>9}"
        ]
        for (s, svc), c in self.items(scope):
            lines.append(
                f"{s:<8}{svc:<20}{c.calls:>7}{c.ok:>7}{c.timeouts:>5}"
                f"{c.errors:>5}{c.retries:>6}{c.oneways:>6}"
                f"{1e3 * c.latency_mean:>9.2f}{1e3 * c.latency_max:>9.2f}"
            )
        return "\n".join(lines)
