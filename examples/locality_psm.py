#!/usr/bin/env python3
"""Locality-driven migration demo (Figure 15 in small).

A Blast-style service scans fixed database partitions from co-located
processes.  Partitions start on the *wrong* nodes; Sorrento's
locality-driven policy detects the traffic pattern and migrates them next
to their readers, shrinking per-query I/O time — with zero configuration.

Run:  python examples/locality_psm.py
"""

from repro.experiments.common import cluster_b_like, sorrento_on
from repro.workloads import psm
from repro.workloads.replay import ReplayStats, replay

MB = 1 << 20


def main() -> None:
    dep = sorrento_on(
        cluster_b_like(n_storage=8, n_clients=1),
        n_providers=8, degree=1, seed=3,
        migration_interval=20.0, locality_min_samples=8,
    )
    hosts = sorted(dep.providers)
    sizes = psm.partition_sizes(scale=0.02)  # ~20-30 MB partitions
    # Place every partition away from its reader.
    local_map = []
    for p, parts in enumerate(psm.assignments()):
        for j, part in enumerate(parts):
            local_map.append((part, hosts[(p + 1 + j) % len(hosts)]))
    psm.populate(dep, sizes, placement="locality", local_map=local_map)

    traces = psm.make_traces(sizes, n_queries=60, scan_fraction=0.05,
                             query_gap=3.0, with_queries=True)
    stats = [ReplayStats(name=t.name) for t in traces]
    for p, (trace, st) in enumerate(zip(traces, stats)):
        client = dep.client_on(hosts[p % len(hosts)])
        dep.sim.process(replay(client, trace, mode="query", stats=st))
    dep.sim.run(until=dep.sim.now + 60 * 10 + 300)

    events = sorted((t, io) for st in stats for t, io in st.query_io_times)
    t0 = events[0][0]
    buckets = {}
    for t, io in events:
        buckets.setdefault(int((t - t0) // 60), []).append(1000 * io)
    print("minute   I/O ms/query")
    for b, vals in sorted(buckets.items()):
        bar = "#" * int(sum(vals) / len(vals) / 3)
        print(f"{b:6d}   {sum(vals) / len(vals):8.1f}  {bar}")
    moved = sum(p.stats['migrations'] for p in dep.providers.values())
    print(f"\nsegment migrations performed: {moved}")


if __name__ == "__main__":
    main()
