#!/usr/bin/env python3
"""Self-organization demo: node failure, recovery, and live expansion.

Reproduces in miniature what the paper's Figure 13 measures: kill a
provider under load, watch the system redirect I/O and restore lost
replicas; then hot-add a brand-new provider and watch it absorb data.

Run:  python examples/self_healing.py
"""

from repro.cluster import NodeSpec, small_cluster
from repro.core import SorrentoConfig, SorrentoDeployment
from repro.core.params import SorrentoParams

GB = 1 << 30
MB = 1 << 20


def replica_census(dep, segids):
    counts = {}
    for segid in segids:
        counts[segid] = sum(
            1 for p in dep.providers.values()
            if p.node.alive and p.store.latest_committed(segid) is not None
        )
    return counts


def main() -> None:
    dep = SorrentoDeployment(
        small_cluster(n_storage=5, n_compute=2, capacity_per_node=16 * GB),
        SorrentoConfig(params=SorrentoParams(default_degree=3,
                                             repair_delay=5.0), seed=7),
    )
    dep.warm_up()
    client = dep.client_on("c00")

    # Write a 16 MB file, replicated three ways.
    def write():
        fh = yield from client.open("/data", "w", create=True)
        yield from client.write(fh, 0, 16 * MB, sequential=True)
        yield from client.close(fh)
        return [r.segid for r in fh.layout.segments]

    segids = dep.run(write())
    dep.sim.run(until=dep.sim.now + 60)  # lazy replication completes
    print("replicas per segment after write:", list(replica_census(dep, segids).values()))

    # Kill a provider that holds data (never the namespace host here).
    victim = next(h for h in sorted(dep.providers)
                  if h != dep.ns_host
                  and dep.providers[h].store.committed_segments())
    print(f"crashing {victim} ...")
    dep.crash_provider(victim)
    dep.sim.run(until=dep.sim.now + 10)

    # Reads keep working off surviving replicas.
    def read():
        fh = yield from client.open("/data", "r")
        yield from client.read(fh, 0, 1 * MB)
        yield from client.close(fh)
        return True

    assert dep.run(read())
    print("reads survived the failure")

    # Re-replication restores the degree in the background.
    dep.sim.run(until=dep.sim.now + 120)
    census = replica_census(dep, segids)
    print("replicas per segment after repair:", list(census.values()))
    assert all(c >= 3 for c in census.values()), census

    # Hot-add a brand new node: no reconfiguration, it just joins.
    print("adding fresh provider 'snew' ...")
    dep.add_provider(NodeSpec(name="snew", cpus=2, cpu_ghz=1.4,
                              disks=("ultrastar-dk32ej",),
                              export_capacity=16 * GB))
    dep.sim.run(until=dep.sim.now + 30)
    member_views = {
        h: len(p.membership.live_providers())
        for h, p in dep.providers.items() if p.node.alive
    }
    print("provider membership view sizes:", member_views)

    # The crashed node comes back: its on-disk data is stale but the
    # version scheme works out what is current.
    print(f"restarting {victim} ...")
    dep.restart_provider(victim)
    dep.sim.run(until=dep.sim.now + 60)
    print("cluster healed; total providers:",
          len([p for p in dep.providers.values() if p.node.alive]))


if __name__ == "__main__":
    main()
