#!/usr/bin/env python3
"""Quickstart: boot a Sorrento volume and use the client API.

Builds a simulated 4-provider cluster, then exercises the basics:
directories, files, versioned commits, conflict detection, and the
atomic-append recipe from the paper's Figure 4.

Run:  python examples/quickstart.py
"""

from repro.cluster import small_cluster
from repro.core import SorrentoConfig, SorrentoDeployment
from repro.core.client import CommitConflict
from repro.core.params import SorrentoParams

MB = 1 << 20


def main() -> None:
    # A small cluster: 4 storage providers + 2 client nodes, each
    # provider exporting 4 GB.  Replication degree 2 by default.
    spec = small_cluster(n_storage=4, n_compute=2)
    dep = SorrentoDeployment(
        spec, SorrentoConfig(params=SorrentoParams(default_degree=2), seed=42)
    )
    dep.warm_up()  # let heartbeats build every node's membership view
    client = dep.client_on("c00")

    def session():
        # Directories live on the namespace server.
        yield from client.mkdir("/demo")

        # Writing: open-for-write gives you a private shadow copy;
        # close() commits it as the file's next version.
        fh = yield from client.open("/demo/hello.txt", "w", create=True)
        payload = b"hello, self-organizing storage!"
        yield from client.write(fh, 0, len(payload), data=payload)
        version = yield from client.close(fh)
        print(f"committed /demo/hello.txt as version {version}")

        # Reading sees only committed versions.
        fh = yield from client.open("/demo/hello.txt", "r")
        data = yield from client.read(fh, 0, fh.size)
        yield from client.close(fh)
        print(f"read back: {data!r}")

        # A bigger file: spans multiple 1 MB data segments placed by
        # the load-aware policy across providers.
        fh = yield from client.open("/demo/big.bin", "w", create=True)
        yield from client.write(fh, 0, 3 * MB, sequential=True)
        yield from client.close(fh)
        print(f"big.bin laid out over {len(fh.layout.segments)} segments")

        # Version conflicts: two writers, one winner, loser retries.
        a = yield from client.open("/demo/hello.txt", "w")
        b = yield from client.open("/demo/hello.txt", "w")
        yield from client.write(a, 0, 2, data=b"A!")
        yield from client.close(a)
        try:
            yield from client.write(b, 0, 2, data=b"B!")
            yield from client.close(b)
        except CommitConflict:
            print("second writer hit a commit conflict, as designed")
            yield from client.drop(b)

        # Atomic append (Figure 4): optimistic retry built on commits.
        for i in range(3):
            yield from client.atomic_append("/demo/log", 64)
        fh = yield from client.open("/demo/log", "r")
        print(f"log grew to {fh.size} bytes over 3 atomic appends")

        listing = yield from client.listdir("/demo")
        print(f"/demo contains: {listing}")

    dep.run(session())
    print(f"simulated time elapsed: {dep.sim.now:.2f}s")


if __name__ == "__main__":
    main()
