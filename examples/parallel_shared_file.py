#!/usr/bin/env python3
"""Parallel shared-file I/O: the BTIO pattern through the pario API.

Four "MPI ranks" write disjoint strided byte ranges of one shared file
with versioning disabled (Section 3.5's byte-range sharing primitive),
synchronize on a barrier each phase, then read back and verify sizes.

Run:  python examples/parallel_shared_file.py
"""

from repro.api import make_parallel_session
from repro.cluster import small_cluster
from repro.core import SorrentoConfig, SorrentoDeployment
from repro.core.params import SorrentoParams

KB = 1 << 10
MB = 1 << 20

N_RANKS = 4
PHASES = 5
CHUNK = 128 * KB


def main() -> None:
    dep = SorrentoDeployment(
        small_cluster(n_storage=4, n_compute=4),
        SorrentoConfig(params=SorrentoParams(), seed=13),
    )
    dep.warm_up()
    clients = [dep.client_on(f"c0{i}") for i in range(N_RANKS)]
    sessions = make_parallel_session(clients)
    path = "/solution"
    stride = N_RANKS * CHUNK

    total = PHASES * stride

    def rank0_create():
        # Pre-size the shared file (BTIO knows its solution size).
        fh = yield from sessions[0].open_shared(path, create=True,
                                                size=total)
        yield from sessions[0].close(fh)

    dep.run(rank0_create())

    done = []

    def rank(r, pio):
        fh = yield from pio.open_shared(path)
        for phase in range(PHASES):
            base = phase * stride + r * CHUNK
            # A list-write of two half-chunks (strided, like BTIO cells).
            yield from pio.list_write(fh, [
                (base, CHUNK // 2),
                (base + CHUNK // 2, CHUNK // 2),
            ])
            gen = yield from pio.sync()  # collective phase barrier
            if r == 0:
                print(f"phase {phase} complete at t={dep.sim.now:.2f}s "
                      f"(barrier generation {gen})")
        yield from pio.close(fh)
        done.append(r)

    procs = [dep.sim.process(rank(r, s)) for r, s in enumerate(sessions)]
    dep.sim.run(until=dep.sim.now + 300)
    assert all(p.triggered for p in procs), "ranks did not finish"

    def verify():
        fh = yield from clients[0].open(path, "r")
        return fh.size, len(fh.layout.segments)

    size, nsegs = dep.run(verify())
    print(f"\nall {len(done)} ranks done; file size {size / MB:.1f} MB "
          f"(expected {total / MB:.1f}) over {nsegs} segments")
    assert size == total


if __name__ == "__main__":
    main()
