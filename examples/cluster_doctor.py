#!/usr/bin/env python3
"""Operator's tour: inspect a live volume with the diagnosis toolbox.

Builds a replicated volume, loads data, then runs the admin-side
utilities: replica audits, placement topology, failure what-ifs — the
"monitoring, diagnosis and maintenance utilities" companion the paper
mentions shipping alongside the core system.

Run:  python examples/cluster_doctor.py
"""

from repro.cluster import small_cluster
from repro.core import SorrentoConfig, SorrentoDeployment
from repro.core.params import SorrentoParams
from repro.tools import (
    ClusterInspector,
    availability_after_failure,
    max_survivable_failures,
    placement_graph,
    replica_overlap_graph,
)

MB = 1 << 20


def main() -> None:
    dep = SorrentoDeployment(
        small_cluster(n_storage=5, n_compute=1, capacity_per_node=16 << 30),
        SorrentoConfig(params=SorrentoParams(default_degree=2), seed=77),
    )
    dep.warm_up()
    client = dep.client_on("c00")

    def load():
        for i in range(6):
            fh = yield from client.open(f"/f{i}", "w", create=True)
            yield from client.write(fh, 0, (i + 1) * MB, sequential=True)
            yield from client.close(fh)

    dep.run(load())
    dep.sim.run(until=dep.sim.now + 90)  # replication settles

    insp = ClusterInspector(dep)
    print("== cluster summary ==")
    print(insp.summary())

    report = insp.replica_report()
    print(f"\nreplication audit: ok={report.ok} "
          f"({report.healthy}/{report.total_segments} healthy)")
    print("orphans:", insp.orphaned_segments())
    audit = insp.location_audit()
    print(f"location tables: {len(audit['missing'])} missing, "
          f"{len(audit['ghost'])} ghost entries")

    g = placement_graph(dep)
    providers = [n for n, d in g.nodes(data=True) if d["kind"] == "provider"]
    print(f"\nplacement graph: {len(providers)} providers, "
          f"{g.number_of_nodes() - len(providers)} segments, "
          f"{g.number_of_edges()} replica placements")
    overlap = replica_overlap_graph(dep)
    heaviest = max(overlap.edges(data=True), key=lambda e: e[2]["weight"])
    print(f"most-correlated provider pair: {heaviest[0]}–{heaviest[1]} "
          f"({heaviest[2]['weight']} co-held segments)")

    victim = sorted(dep.providers)[1]
    whatif = availability_after_failure(dep, [victim])
    print(f"\nif {victim} died right now: "
          f"{len(whatif['lost_segments'])} segments lost, "
          f"{len(whatif['degraded_segments'])} degraded, "
          f"files lost: {whatif['lost_files'] or 'none'}")
    print(f"max simultaneous failures with zero data loss: "
          f"{max_survivable_failures(dep)}")


if __name__ == "__main__":
    main()
