#!/usr/bin/env python3
"""Load-aware placement demo: heavily skewed writers (Figure 14 in small).

Fifty simulated web crawlers with >10x speed differences append pages to
per-domain files whose sizes follow a heavy tail.  Compare final storage
balance across providers with and without online migration.

Run:  python examples/crawler_balancing.py
"""

import random

from repro.experiments.common import cluster_b_like, sorrento_on
from repro.workloads.crawler import crawler_proc, make_plans

GB = 1 << 30
MB = 1 << 20


def run_variant(migration: bool, seed: int = 11) -> dict:
    dep = sorrento_on(
        cluster_b_like(n_storage=8, n_clients=1, capacity=2 * GB),
        n_providers=8, degree=1, seed=seed,
        default_alpha=0.0,                       # place by storage usage
        migration_interval=(30.0 if migration else 1e12),
        heartbeat_interval=2.0,
    )
    hosts = sorted(dep.providers)
    dep.run(dep.client_on(hosts[0]).mkdir("/crawl"))
    plans = make_plans(n_crawlers=24, domains_per_crawler=4,
                       total_bytes=int(1.5 * GB), seed=seed)
    duration = 600.0
    pages = sum(sum(p.domain_pages) for p in plans)
    mean_rate = pages / (len(plans) * duration * 0.5)
    rng = random.Random(seed)
    for i, plan in enumerate(plans):
        plan.pages_per_second *= mean_rate
        client = dep.client_on(hosts[i % len(hosts)])
        dep.sim.process(crawler_proc(client, plan, duration,
                                     rng=random.Random(rng.random())))
    dep.sim.run(until=dep.sim.now + duration + 120)
    utils = dep.storage_utilizations()
    lo, hi = min(utils.values()), max(utils.values())
    return {
        "per_node_pct": {h: round(100 * u, 1) for h, u in sorted(utils.items())},
        "ratio": hi / lo if lo else float("inf"),
        "migrations": sum(p.stats["migrations"] for p in dep.providers.values()),
    }


def main() -> None:
    for migration in (False, True):
        tag = "with migration" if migration else "placement only"
        res = run_variant(migration)
        print(f"\n--- {tag} ---")
        print("storage used per node (%):", res["per_node_pct"])
        print(f"unevenness ratio: {res['ratio']:.2f}"
              f"   (migrations: {res['migrations']})")


if __name__ == "__main__":
    main()
