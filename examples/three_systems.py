#!/usr/bin/env python3
"""The paper's methodology in one script: record once, replay everywhere.

Records a mixed small/large workload on a Sorrento volume, then replays
the identical trace against NFS and PVFS deployments on the same
(simulated) hardware and prints the comparison — exactly how the paper
produced Figure 12.

Run:  python examples/three_systems.py
"""

from repro.baselines import NFSDeployment, PVFSDeployment
from repro.cluster import small_cluster
from repro.core import SorrentoConfig, SorrentoDeployment
from repro.core.params import SorrentoParams
from repro.workloads import replay
from repro.workloads.record import RecordingClient

KB = 1 << 10
MB = 1 << 20


def drive(dep, client):
    """A mixed workload: small files, then bulk reads of a big one."""

    def gen():
        for i in range(10):
            fh = yield from client.open(f"/small{i}", "w", create=True)
            yield from client.write(fh, 0, 12 * KB)
            yield from client.close(fh)
        fh = yield from client.open("/big", "w", create=True)
        for j in range(8):
            yield from client.write(fh, j * MB, 1 * MB, sequential=True)
        yield from client.close(fh)
        for j in (3, 1, 6, 0, 5):
            rfh = yield from client.open("/big", "r")
            yield from client.read(rfh, j * MB, 1 * MB)
            yield from client.close(rfh)
        for i in range(10):
            rfh = yield from client.open(f"/small{i}", "r")
            yield from client.read(rfh, 0, 12 * KB)
            yield from client.close(rfh)

    dep.run(gen())


def main() -> None:
    spec = lambda: small_cluster(5, n_compute=2, capacity_per_node=8 << 30)  # noqa: E731

    # 1. Record on Sorrento.
    sor = SorrentoDeployment(spec(), SorrentoConfig(
        params=SorrentoParams(default_degree=2), seed=33))
    sor.warm_up()
    recorder = RecordingClient(sor.client_on("c00"), name="mixed")
    t0 = sor.sim.now
    drive(sor, recorder)
    sorrento_time = sor.sim.now - t0
    trace = recorder.trace
    print(f"recorded {len(trace)} operations "
          f"({trace.bytes_written / MB:.1f} MB written, "
          f"{trace.bytes_read / MB:.1f} MB read)")

    # 2. Replay on the baselines.
    results = {"Sorrento-(5,2)": sorrento_time}
    nfs = NFSDeployment(spec(), seed=33)
    nfs.warm_up()
    stats = nfs.run(replay(nfs.client_on("c00"), trace, mode="asap"))
    assert stats.errors == 0
    results["NFS"] = stats.elapsed

    pvfs = PVFSDeployment(spec(), n_iods=4, seed=33)
    pvfs.warm_up()
    stats = pvfs.run(replay(pvfs.client_on("c00"), trace, mode="asap"))
    assert stats.errors == 0
    results["PVFS-4"] = stats.elapsed

    print("\nsame trace, three systems:")
    for name, t in sorted(results.items(), key=lambda kv: kv[1]):
        print(f"  {name:15s} {t:7.2f} s")
    print("\n(small-file-heavy traces favour NFS; add bulk volume and "
          "client counts and the ordering flips — see Figures 9-11)")


if __name__ == "__main__":
    main()
